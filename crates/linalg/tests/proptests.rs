//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use uadb_linalg::colstats::covariance;
use uadb_linalg::distance::{euclidean, pairwise};
use uadb_linalg::eigen::sym_eigen;
use uadb_linalg::gemm::{row_finiteness, GemmScratch};
use uadb_linalg::lu::LuDecomposition;
use uadb_linalg::vecops::{mean, population_variance};
use uadb_linalg::Matrix;

/// Strategy: a small matrix with bounded entries.
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

/// Strategy: a single matrix cell that may be a plain value, an exact
/// zero (exercising the zero-skip), or a NaN/±inf poison.
fn poisoned_cell() -> impl Strategy<Value = f64> {
    (0u32..14, -10.0..10.0f64).prop_map(|(sel, v)| match sel {
        0..=7 => v,
        8..=10 => 0.0,
        11 => f64::NAN,
        12 => f64::INFINITY,
        _ => f64::NEG_INFINITY,
    })
}

/// Strategy: an `(a, b)` operand pair of compatible random shapes —
/// heights straddling the pack threshold and block size, widths
/// straddling the register-strip width — where cells may be zero or
/// non-finite and whole lhs rows are sometimes forced to all zeros.
fn gemm_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..12, 1usize..10, 1usize..40).prop_flat_map(|(m, k, n)| {
        let a = prop::collection::vec(poisoned_cell(), m * k);
        let b = prop::collection::vec(poisoned_cell(), k * n);
        let zero_rows = prop::collection::vec(prop::bool::ANY, m);
        (a, b, zero_rows).prop_map(move |(mut av, bv, zr)| {
            for (i, &z) in zr.iter().enumerate() {
                if z {
                    av[i * k..(i + 1) * k].fill(0.0);
                }
            }
            (Matrix::from_vec(m, k, av).unwrap(), Matrix::from_vec(k, n, bv).unwrap())
        })
    })
}

/// The straightforward reference triple loop (i/k/j, ascending `k`,
/// zero-skip gated on rhs-row finiteness exactly as the historic naive
/// kernel) the blocked kernel must reproduce bit for bit.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let n = b.cols();
    let mut out = Matrix::zeros(a.rows(), n);
    let finite = row_finiteness(b);
    for i in 0..a.rows() {
        for (k, &a_ik) in a.row(i).iter().enumerate() {
            if a_ik == 0.0 && finite[k] {
                continue;
            }
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + a_ik * b.get(k, j));
            }
        }
    }
    out
}

/// Bitwise comparison that treats any-NaN-vs-any-NaN as equal: Rust
/// does not guarantee which NaN payload an operation produces, so
/// propagation (is it NaN at all?) is pinned exactly while payload
/// bits are not. Returns the first offending index.
fn bit_mismatch(got: &[f64], want: &[f64]) -> Option<usize> {
    if got.len() != want.len() {
        return Some(got.len().min(want.len()));
    }
    got.iter()
        .zip(want)
        .position(|(g, w)| g.to_bits() != w.to_bits() && !(g.is_nan() && w.is_nan()))
}

proptest! {
    #[test]
    fn matmul_into_is_bit_identical_to_reference((a, b) in gemm_operands()) {
        let want = reference_matmul(&a, &b);
        // Lazy scratch (mask built on first zero hit, packing decided
        // by batch height)…
        let mut out = vec![f64::NAN; a.rows() * b.cols()];
        a.matmul_into(&b, &mut GemmScratch::new(), &mut out).unwrap();
        prop_assert_eq!(bit_mismatch(&out, want.as_slice()), None);
        // …the eagerly packed/masked scratch…
        let mut scratch = GemmScratch::precomputed(&b);
        let mut out2 = vec![f64::NAN; out.len()];
        a.matmul_into(&b, &mut scratch, &mut out2).unwrap();
        prop_assert_eq!(bit_mismatch(&out2, want.as_slice()), None);
        // …and a warm reused scratch must all agree with the reference.
        let mut out3 = vec![f64::NAN; out.len()];
        a.matmul_into(&b, &mut scratch, &mut out3).unwrap();
        prop_assert_eq!(bit_mismatch(&out3, want.as_slice()), None);
        // The allocating wrapper is a thin shim over the same kernel.
        prop_assert_eq!(bit_mismatch(a.matmul(&b).unwrap().as_slice(), want.as_slice()), None);
    }

    #[test]
    fn matvec_is_bit_identical_to_single_column_matmul((a, b) in gemm_operands()) {
        let col = b.col(0);
        let want: Vec<f64> = reference_matmul(&a, &Matrix::from_vec(col.len(), 1, col.clone()).unwrap())
            .into_vec();
        let got = a.matvec(&col).unwrap();
        prop_assert_eq!(bit_mismatch(&got, &want), None);
    }

    #[test]
    fn transpose_is_involution(m in small_matrix(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in small_matrix(3, 3),
        b in small_matrix(3, 3),
        c in small_matrix(3, 3),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in small_matrix(4, 4)) {
        // Symmetrise, decompose, reconstruct.
        let sym = m.add(&m.transpose()).unwrap().scaled(0.5);
        let e = sym_eigen(&sym).unwrap();
        let n = 4;
        let mut recon = Matrix::zeros(n, n);
        for j in 0..n {
            let v = e.vectors.col(j);
            for r in 0..n {
                for c in 0..n {
                    let cur = recon.get(r, c);
                    recon.set(r, c, cur + e.values[j] * v[r] * v[c]);
                }
            }
        }
        prop_assert!(recon.max_abs_diff(&sym) < 1e-6);
    }

    #[test]
    fn eigenvalues_are_sorted_descending(m in small_matrix(5, 5)) {
        let sym = m.add(&m.transpose()).unwrap().scaled(0.5);
        let e = sym_eigen(&sym).unwrap();
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn lu_solve_inverts_matvec(m in small_matrix(4, 4), x in prop::collection::vec(-5.0..5.0f64, 4)) {
        // Make the matrix diagonally dominant so it is invertible.
        let mut a = m;
        for i in 0..4 {
            let v = a.get(i, i) + 50.0;
            a.set(i, i, v);
        }
        let b = a.matvec(&x).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let got = lu.solve(&b).unwrap();
        for (g, e) in got.iter().zip(&x) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn determinant_of_product_multiplies(a in small_matrix(3, 3), b in small_matrix(3, 3)) {
        let mut da = a;
        let mut db = b;
        for i in 0..3 {
            da.set(i, i, da.get(i, i) + 30.0);
            db.set(i, i, db.get(i, i) + 30.0);
        }
        let det_a = LuDecomposition::new(&da).unwrap().determinant();
        let det_b = LuDecomposition::new(&db).unwrap().determinant();
        let det_ab = LuDecomposition::new(&da.matmul(&db).unwrap()).unwrap().determinant();
        prop_assert!((det_ab - det_a * det_b).abs() / det_ab.abs().max(1.0) < 1e-8);
    }

    #[test]
    fn covariance_is_psd_on_diagonal(m in small_matrix(6, 3)) {
        let c = covariance(&m).unwrap();
        for i in 0..3 {
            prop_assert!(c.get(i, i) >= -1e-12);
        }
        prop_assert!(c.max_abs_diff(&c.transpose()) < 1e-12);
    }

    #[test]
    fn pairwise_symmetry_and_triangle(m in small_matrix(5, 3)) {
        let d = pairwise(&m);
        for i in 0..5 {
            prop_assert!(d.get(i, i).abs() < 1e-12);
            for j in 0..5 {
                prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-12);
                for k in 0..5 {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn euclidean_is_translation_invariant(
        a in prop::collection::vec(-5.0..5.0f64, 4),
        b in prop::collection::vec(-5.0..5.0f64, 4),
        t in -5.0..5.0f64,
    ) {
        let at: Vec<f64> = a.iter().map(|v| v + t).collect();
        let bt: Vec<f64> = b.iter().map(|v| v + t).collect();
        prop_assert!((euclidean(&a, &b) - euclidean(&at, &bt)).abs() < 1e-9);
    }

    #[test]
    fn variance_is_shift_invariant(v in prop::collection::vec(-100.0..100.0f64, 1..50), s in -50.0..50.0f64) {
        let shifted: Vec<f64> = v.iter().map(|x| x + s).collect();
        let v1 = population_variance(&v);
        let v2 = population_variance(&shifted);
        prop_assert!((v1 - v2).abs() < 1e-6 * v1.max(1.0));
    }

    #[test]
    fn mean_bounded_by_extremes(v in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
