//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use uadb_linalg::colstats::covariance;
use uadb_linalg::distance::{euclidean, pairwise};
use uadb_linalg::eigen::sym_eigen;
use uadb_linalg::lu::LuDecomposition;
use uadb_linalg::vecops::{mean, population_variance};
use uadb_linalg::Matrix;

/// Strategy: a small matrix with bounded entries.
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in small_matrix(3, 3),
        b in small_matrix(3, 3),
        c in small_matrix(3, 3),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in small_matrix(4, 4)) {
        // Symmetrise, decompose, reconstruct.
        let sym = m.add(&m.transpose()).unwrap().scaled(0.5);
        let e = sym_eigen(&sym).unwrap();
        let n = 4;
        let mut recon = Matrix::zeros(n, n);
        for j in 0..n {
            let v = e.vectors.col(j);
            for r in 0..n {
                for c in 0..n {
                    let cur = recon.get(r, c);
                    recon.set(r, c, cur + e.values[j] * v[r] * v[c]);
                }
            }
        }
        prop_assert!(recon.max_abs_diff(&sym) < 1e-6);
    }

    #[test]
    fn eigenvalues_are_sorted_descending(m in small_matrix(5, 5)) {
        let sym = m.add(&m.transpose()).unwrap().scaled(0.5);
        let e = sym_eigen(&sym).unwrap();
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn lu_solve_inverts_matvec(m in small_matrix(4, 4), x in prop::collection::vec(-5.0..5.0f64, 4)) {
        // Make the matrix diagonally dominant so it is invertible.
        let mut a = m;
        for i in 0..4 {
            let v = a.get(i, i) + 50.0;
            a.set(i, i, v);
        }
        let b = a.matvec(&x).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let got = lu.solve(&b).unwrap();
        for (g, e) in got.iter().zip(&x) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn determinant_of_product_multiplies(a in small_matrix(3, 3), b in small_matrix(3, 3)) {
        let mut da = a;
        let mut db = b;
        for i in 0..3 {
            da.set(i, i, da.get(i, i) + 30.0);
            db.set(i, i, db.get(i, i) + 30.0);
        }
        let det_a = LuDecomposition::new(&da).unwrap().determinant();
        let det_b = LuDecomposition::new(&db).unwrap().determinant();
        let det_ab = LuDecomposition::new(&da.matmul(&db).unwrap()).unwrap().determinant();
        prop_assert!((det_ab - det_a * det_b).abs() / det_ab.abs().max(1.0) < 1e-8);
    }

    #[test]
    fn covariance_is_psd_on_diagonal(m in small_matrix(6, 3)) {
        let c = covariance(&m).unwrap();
        for i in 0..3 {
            prop_assert!(c.get(i, i) >= -1e-12);
        }
        prop_assert!(c.max_abs_diff(&c.transpose()) < 1e-12);
    }

    #[test]
    fn pairwise_symmetry_and_triangle(m in small_matrix(5, 3)) {
        let d = pairwise(&m);
        for i in 0..5 {
            prop_assert!(d.get(i, i).abs() < 1e-12);
            for j in 0..5 {
                prop_assert!((d.get(i, j) - d.get(j, i)).abs() < 1e-12);
                for k in 0..5 {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn euclidean_is_translation_invariant(
        a in prop::collection::vec(-5.0..5.0f64, 4),
        b in prop::collection::vec(-5.0..5.0f64, 4),
        t in -5.0..5.0f64,
    ) {
        let at: Vec<f64> = a.iter().map(|v| v + t).collect();
        let bt: Vec<f64> = b.iter().map(|v| v + t).collect();
        prop_assert!((euclidean(&a, &b) - euclidean(&at, &bt)).abs() < 1e-9);
    }

    #[test]
    fn variance_is_shift_invariant(v in prop::collection::vec(-100.0..100.0f64, 1..50), s in -50.0..50.0f64) {
        let shifted: Vec<f64> = v.iter().map(|x| x + s).collect();
        let v1 = population_variance(&v);
        let v2 = population_variance(&shifted);
        prop_assert!((v1 - v2).abs() < 1e-6 * v1.max(1.0));
    }

    #[test]
    fn mean_bounded_by_extremes(v in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
