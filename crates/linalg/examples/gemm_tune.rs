//! Micro-benchmark for kernel tuning: times the blocked GEMM against
//! the historic naive i/k/j kernel on the serving-critical shapes.
//!
//! Run with `cargo run --release -p uadb_linalg --example gemm_tune`;
//! `UADB_GEMM_ISA=avx|avx512|portable` pins the dispatch path.

use std::time::Instant;
use uadb_linalg::gemm::{naive_matmul, GemmScratch};
use uadb_linalg::Matrix;

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn time_ns(mut f: impl FnMut(), iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn main() {
    for (m, k, n) in
        [(1usize, 16usize, 128usize), (256, 16, 128), (256, 128, 128), (8192, 128, 128)]
    {
        let a = filled(m, k, 7);
        let b = filled(k, n, 11);
        let mut out_blocked = vec![0.0; m * n];
        let mut scratch = GemmScratch::precomputed(&b);
        let iters = (200_000_000 / (m * k * n)).clamp(10, 2000);
        let t_naive = time_ns(
            || {
                std::hint::black_box(naive_matmul(&a, &b));
            },
            iters,
        );
        let t_blocked =
            time_ns(|| a.matmul_into(&b, &mut scratch, &mut out_blocked).unwrap(), iters);
        let out_naive = naive_matmul(&a, &b);
        for (x, y) in out_naive.as_slice().iter().zip(&out_blocked) {
            assert_eq!(x.to_bits(), y.to_bits(), "kernels disagree");
        }
        println!(
            "{m}x{k}x{n}: naive {:>12.0} ns  blocked {:>12.0} ns  speedup {:.2}x",
            t_naive,
            t_blocked,
            t_naive / t_blocked
        );
    }
}
