//! Cache-blocked, allocation-free GEMM kernel.
//!
//! The serving hot path is two dense matmuls per batch (the booster's
//! `input → 128 → 128 → 1` MLP), so this kernel is written for exactly
//! that regime: moderate `k`/`n`, batch-sized `m`. It blocks over rows
//! (`MC`) and columns (`NC`), and computes each output row in
//! register-tiled strips of [`NR`] columns with the `k` accumulation
//! kept **sequential per output element** — every `out[i][j]` is the
//! same ordered sum `Σ_k a[i][k]·b[k][j]` the naive i/k/j kernel
//! produces, so results are bit-identical to it (the proptest in
//! `tests/proptests.rs` pins this against a reference triple loop).
//!
//! Two data paths feed the strip micro-kernels:
//!
//! * **direct** — strips load straight from the row-major rhs with a
//!   stride of `n` (small batches, where packing cannot amortise);
//! * **packed** — the rhs is first re-laid out strip-major by
//!   [`pack_rhs`] so the `k` loop streams contiguous memory. Packing is
//!   O(k·n) and amortises over the batch rows; for a long-lived weight
//!   matrix the packed panel can be built once and reused forever.
//!
//! IEEE-754 semantics are preserved: a zero left-hand coefficient may
//! only skip its contribution when the matching `rhs` row is entirely
//! finite (`0.0 * NaN` and `0.0 * inf` are NaN). The finiteness mask is
//! owned by [`GemmScratch`] so repeated multiplies against one weight
//! matrix compute it once instead of per call.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Register-tile width: each output row is produced in strips of `NR`
/// column accumulators that live in registers for the whole `k` loop,
/// so `out` is written once instead of loaded/stored per `k` step.
pub const NR: usize = 16;
/// Row-block height: rows of `a` scored against one `k×NR` strip of `b`
/// before moving to the next strip, keeping the strip in L1.
const MC: usize = 64;
/// Column-block width (a multiple of [`NR`]): bounds the working set of
/// `b` touched before `a`'s row block is re-streamed.
const NC: usize = 256;
/// Minimum batch height for which [`Matrix::matmul_into`] packs the rhs
/// on the fly; below this the O(k·n) packing pass costs more than the
/// strided loads it saves.
const PACK_MIN_ROWS: usize = 8;

/// Reusable workspace for [`Matrix::matmul_into`]: the rhs-row
/// finiteness mask and the strip-major packed rhs panel, both computed
/// once per scratch and cached across calls.
///
/// Both artifacts are properties of the **rhs** operand. Reuse a
/// scratch only while the rhs contents are unchanged; call
/// [`GemmScratch::clear`] (or use a fresh scratch) after mutating it.
/// For a long-lived weight matrix, [`GemmScratch::precomputed`] builds
/// both eagerly so no scoring call ever re-scans the weights.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    finite: Option<Vec<bool>>,
    pack: Vec<f64>,
    packed: bool,
}

impl GemmScratch {
    /// An empty scratch; mask and packing are computed on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Eagerly computes the row-finiteness mask and packed panel of
    /// `rhs`.
    pub fn precomputed(rhs: &Matrix) -> Self {
        let mut pack = Vec::new();
        pack_rhs(rhs.rows(), rhs.cols(), rhs.as_slice(), &mut pack);
        stats::pack_built();
        Self { finite: Some(row_finiteness(rhs)), pack, packed: true }
    }

    /// Drops the cached mask and packing (required after the rhs they
    /// were computed from changes). Keeps the pack allocation.
    pub fn clear(&mut self) {
        self.finite = None;
        self.packed = false;
    }

    /// The cached packed panel, building it from `rhs` if absent.
    fn ensure_pack(&mut self, rhs: &Matrix) -> &[f64] {
        if !self.packed {
            pack_rhs(rhs.rows(), rhs.cols(), rhs.as_slice(), &mut self.pack);
            self.packed = true;
            stats::pack_built();
        } else {
            stats::pack_reused();
        }
        &self.pack
    }
}

/// Feature-gated kernel counters (`--features kernel-stats`).
///
/// Counts are bumped once per `gemm_into` call (ISA path taken) and
/// once per pack decision (panel rebuilt vs. served from a scratch) —
/// never inside the strip loops, so the instrumented kernel's inner
/// loops are byte-for-byte the uninstrumented ones. With the feature
/// off every recording function is an empty inline stub and the
/// counters compile out entirely.
pub mod stats {
    #[cfg(feature = "kernel-stats")]
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Whether the counters are compiled in.
    pub const ENABLED: bool = cfg!(feature = "kernel-stats");

    #[cfg(feature = "kernel-stats")]
    static PACKS_BUILT: AtomicU64 = AtomicU64::new(0);
    #[cfg(feature = "kernel-stats")]
    static PACKS_REUSED: AtomicU64 = AtomicU64::new(0);
    #[cfg(feature = "kernel-stats")]
    static CALLS_AVX512: AtomicU64 = AtomicU64::new(0);
    #[cfg(feature = "kernel-stats")]
    static CALLS_AVX: AtomicU64 = AtomicU64::new(0);
    #[cfg(feature = "kernel-stats")]
    static CALLS_PORTABLE: AtomicU64 = AtomicU64::new(0);

    /// Point-in-time copy of the kernel counters (all zero when the
    /// feature is disabled).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct KernelStats {
        /// Rhs panels packed (scratch builds plus `precomputed`).
        pub packs_built: u64,
        /// `matmul_into` calls served by an already-packed panel.
        pub packs_reused: u64,
        pub calls_avx512: u64,
        pub calls_avx: u64,
        pub calls_portable: u64,
    }

    #[inline(always)]
    pub(super) fn pack_built() {
        #[cfg(feature = "kernel-stats")]
        PACKS_BUILT.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    pub(super) fn pack_reused() {
        #[cfg(feature = "kernel-stats")]
        PACKS_REUSED.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    #[cfg_attr(not(feature = "kernel-stats"), allow(unused_variables))]
    pub(super) fn isa_call(isa: super::simd::Isa) {
        #[cfg(feature = "kernel-stats")]
        match isa {
            super::simd::Isa::Avx512 => CALLS_AVX512.fetch_add(1, Ordering::Relaxed),
            super::simd::Isa::Avx => CALLS_AVX.fetch_add(1, Ordering::Relaxed),
            super::simd::Isa::Portable => CALLS_PORTABLE.fetch_add(1, Ordering::Relaxed),
        };
    }

    pub fn snapshot() -> KernelStats {
        #[cfg(feature = "kernel-stats")]
        {
            KernelStats {
                packs_built: PACKS_BUILT.load(Ordering::Relaxed),
                packs_reused: PACKS_REUSED.load(Ordering::Relaxed),
                calls_avx512: CALLS_AVX512.load(Ordering::Relaxed),
                calls_avx: CALLS_AVX.load(Ordering::Relaxed),
                calls_portable: CALLS_PORTABLE.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "kernel-stats"))]
        KernelStats::default()
    }
}

/// Per-row finiteness of a matrix: `mask[r]` is true iff every element
/// of row `r` is finite (neither NaN nor ±inf).
pub fn row_finiteness(m: &Matrix) -> Vec<bool> {
    m.row_iter().map(|row| row.iter().all(|v| v.is_finite())).collect()
}

/// [`row_finiteness`] into a caller-owned buffer. `mask` is cleared and
/// refilled (grow-once: no allocation once its capacity has reached the
/// row count), so a training loop that re-derives the mask after every
/// optimiser step never reallocates it — the buffer half of the rhs-pack
/// double-buffering that keeps `apply_adam` allocation-free.
pub fn row_finiteness_into(m: &Matrix, mask: &mut Vec<bool>) {
    mask.clear();
    mask.extend(m.row_iter().map(|row| row.iter().all(|v| v.is_finite())));
}

/// The pre-refactor `Matrix::matmul` kernel, kept **verbatim** (naive
/// i/k/j triple loop, fresh output allocation, lazily-built rhs-row
/// finiteness mask gating the zero-coefficient skip) as the blocked
/// kernel's bit-identity oracle and benchmark baseline. Not part of
/// the supported API — do not "optimise" this; its value is that it
/// never changes. The proptest suite additionally keeps its own
/// independent reimplementation so the oracle is not self-referential.
#[doc(hidden)]
pub fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let n = b.cols();
    let mut out = Matrix::zeros(a.rows(), n);
    let mut rhs_row_finite: Option<Vec<bool>> = None;
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                let finite = rhs_row_finite.get_or_insert_with(|| row_finiteness(b));
                if finite[k] {
                    continue;
                }
            }
            let b_row = &b.as_slice()[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * bv;
            }
        }
    }
    out
}

/// Re-lays a row-major `k×n` rhs strip-major: for each full [`NR`]-wide
/// column strip, its `k×NR` panel is stored contiguously, so the strip
/// micro-kernel streams sequential memory instead of `n`-strided rows.
/// Ragged remainder columns (`n % NR`) are not packed; the kernels read
/// them from the original buffer.
///
/// `pack` is cleared and reused (grow-once: no allocation once it has
/// reached `k * (n - n % NR)` capacity).
pub fn pack_rhs(k: usize, n: usize, b: &[f64], pack: &mut Vec<f64>) {
    assert_eq!(b.len(), k * n, "rhs buffer length must be k*n");
    let full = n / NR;
    pack.clear();
    pack.reserve(k * full * NR);
    for s in 0..full {
        let jt = s * NR;
        for kk in 0..k {
            pack.extend_from_slice(&b[kk * n + jt..kk * n + jt + NR]);
        }
    }
}

/// Blocked matrix product `out = a · b` over raw row-major slices.
///
/// `a` is `m×k`, `b` is `k×n`, `out` is `m×n`. `rhs_row_finite(r)` must
/// report whether row `r` of `b` is entirely finite; it is only
/// consulted for zero left-hand coefficients, so a lazily-built mask
/// costs nothing on fully dense inputs. `packed_b`, when given, must be
/// the [`pack_rhs`] image of `b`; strips then stream the packed panel.
///
/// # Panics
/// If any slice length disagrees with the given dimensions.
// audit: no_alloc
#[allow(clippy::too_many_arguments)] // a GEMM is its dimensions + operands
pub fn gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    packed_b: Option<&[f64]>,
    mut rhs_row_finite: impl FnMut(usize) -> bool,
    out: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "lhs buffer length must be m*k");
    assert_eq!(b.len(), k * n, "rhs buffer length must be k*n");
    assert_eq!(out.len(), m * n, "out buffer length must be m*n");
    if let Some(p) = packed_b {
        assert_eq!(p.len(), k * (n / NR) * NR, "packed rhs length must match pack_rhs(b)");
    }
    if k == 0 {
        // Every element is an empty sum; `b` is zero-length, so the
        // strip slicing below must not run.
        out.fill(0.0);
        return;
    }
    let isa = simd::detect();
    stats::isa_call(isa);
    for jc in (0..n).step_by(NC.max(1)) {
        let jc_end = (jc + NC).min(n);
        for ic in (0..m).step_by(MC) {
            let ic_end = (ic + MC).min(m);
            // Rows with a zero coefficient must run the mask-gated
            // sparse strip; all-dense rows (the overwhelmingly common
            // case for standardised features) take a branch-free SIMD
            // strip. One prescan per block amortises over every strip.
            let mut row_has_zero = [false; MC];
            for (slot, i) in row_has_zero.iter_mut().zip(ic..ic_end) {
                *slot = a[i * k..(i + 1) * k].contains(&0.0);
            }
            // Full NR-wide strips, then the ragged remainder.
            let mut jt = jc;
            while jt + NR <= jc_end {
                // Strip source: packed panel (stride NR) or the raw
                // row-major rhs (stride n).
                let (bs, stride) = match packed_b {
                    Some(p) => (&p[(jt / NR) * k * NR..(jt / NR + 1) * k * NR], NR),
                    None => (&b[jt..], n),
                };
                for i in ic..ic_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_strip = &mut out[i * n + jt..i * n + jt + NR];
                    if row_has_zero[i - ic] {
                        strip16_sparse(a_row, bs, stride, &mut rhs_row_finite, out_strip);
                    } else {
                        strip16_dense(isa, a_row, bs, stride, out_strip);
                    }
                }
                jt += NR;
            }
            for j in jt..jc_end {
                for i in ic..ic_end {
                    let a_row = &a[i * k..(i + 1) * k];
                    let mut acc = 0.0f64;
                    for (kk, &a_ik) in a_row.iter().enumerate() {
                        if a_ik == 0.0 && rhs_row_finite(kk) {
                            continue;
                        }
                        acc += a_ik * b[kk * n + j];
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
}

/// One register-tiled output strip for a lhs row with **no** zero
/// coefficients: `out_strip[t] = Σ_k a_row[k] · bs[k*stride + t]`,
/// accumulated in ascending `k` with no branches in the loop body.
///
/// Dispatches to the widest SIMD micro-kernel the host supports; every
/// variant performs the identical sequence of per-element IEEE mul/add
/// operations (no fused multiply-add), so all of them — and the
/// portable fallback — produce bit-identical strips. With no zero
/// coefficients the zero-skip never fires, so skipping logic is absent
/// rather than replayed.
// audit: no_alloc
#[inline]
fn strip16_dense(isa: simd::Isa, a_row: &[f64], bs: &[f64], stride: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), NR);
    debug_assert!(a_row.is_empty() || (a_row.len() - 1) * stride + NR <= bs.len());
    #[cfg(target_arch = "x86_64")]
    match isa {
        // SAFETY: `detect` proved the feature; the debug asserts above
        // state the bounds contract the callers uphold.
        simd::Isa::Avx512 => return unsafe { simd::strip16_avx512(a_row, bs, stride, out) },
        // SAFETY: same contract as the AVX-512 arm, with AVX proved.
        simd::Isa::Avx => return unsafe { simd::strip16_avx(a_row, bs, stride, out) },
        simd::Isa::Portable => {}
    }
    let _ = isa;
    let mut acc = [0.0f64; NR];
    for (kk, &a_ik) in a_row.iter().enumerate() {
        let b_strip = &bs[kk * stride..kk * stride + NR];
        for (slot, &bv) in acc.iter_mut().zip(b_strip) {
            *slot += a_ik * bv;
        }
    }
    out.copy_from_slice(&acc);
}

/// The mask-gated strip for lhs rows containing zero coefficients:
/// identical accumulation order, but each zero may skip its rank-1
/// contribution when the rhs row is finite (ReLU-sparse activations
/// skip roughly half the work). Stays scalar: the skip branch defeats
/// SIMD anyway, and the closure inlines to a mask lookup.
// audit: no_alloc
fn strip16_sparse(
    a_row: &[f64],
    bs: &[f64],
    stride: usize,
    rhs_row_finite: &mut impl FnMut(usize) -> bool,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), NR);
    let mut acc = [0.0f64; NR];
    for (kk, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 && rhs_row_finite(kk) {
            continue;
        }
        let b_strip = &bs[kk * stride..kk * stride + NR];
        for (slot, &bv) in acc.iter_mut().zip(b_strip) {
            *slot += a_ik * bv;
        }
    }
    out.copy_from_slice(&acc);
}

/// Explicit-SIMD strip micro-kernels for the dense (no-zero) path.
///
/// LLVM's SLP pass does not vectorise the 16 cross-iteration reduction
/// chains of the portable strip (they compile to unrolled scalar
/// `mulsd`/`addsd`), so the hot strip is written with `std::arch`
/// intrinsics. Only unfused `mul` + `add` are used — **never** FMA,
/// which rounds once instead of twice and would break the kernel's
/// bit-identity guarantee.
mod simd {
    /// Widest instruction set available on the running host.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Isa {
        /// AVX-512F: two 8-lane accumulators per strip.
        Avx512,
        /// AVX: four 4-lane accumulators per strip.
        Avx,
        /// No SIMD dispatch; the safe fallback loop runs.
        Portable,
    }

    #[cfg(target_arch = "x86_64")]
    pub fn detect() -> Isa {
        use std::sync::OnceLock;
        static CHOICE: OnceLock<Isa> = OnceLock::new();
        *CHOICE.get_or_init(|| {
            // `UADB_GEMM_ISA` pins a path (bench A/B runs and machines
            // where a wider ISA downclocks); otherwise pick the widest
            // the host supports.
            let auto = if std::arch::is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if std::arch::is_x86_feature_detected!("avx") {
                Isa::Avx
            } else {
                Isa::Portable
            };
            match std::env::var("UADB_GEMM_ISA").as_deref() {
                Ok("avx512") if std::arch::is_x86_feature_detected!("avx512f") => Isa::Avx512,
                Ok("avx") if std::arch::is_x86_feature_detected!("avx") => Isa::Avx,
                Ok("portable") => Isa::Portable,
                Ok(other) => {
                    // A typo or an unsupported pin must not silently
                    // masquerade as the requested path — A/B numbers
                    // would be attributed to the wrong kernel.
                    eprintln!(
                        "uadb_linalg: UADB_GEMM_ISA={other:?} is unknown or unsupported \
                         on this host; using auto-detected {auto:?}"
                    );
                    auto
                }
                Err(_) => auto,
            }
        })
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub fn detect() -> Isa {
        Isa::Portable
    }

    /// # Safety
    /// AVX must be available, and `bs` must cover every strip row:
    /// `(a_row.len() - 1) * stride + 16 <= bs.len()` (upheld by the
    /// slicing in `gemm_into` for both the packed and direct layouts).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    pub unsafe fn strip16_avx(a_row: &[f64], bs: &[f64], stride: usize, out: &mut [f64]) {
        use std::arch::x86_64::*;
        debug_assert!(a_row.is_empty() || (a_row.len() - 1) * stride + super::NR <= bs.len());
        debug_assert_eq!(out.len(), super::NR);
        // SAFETY: the fn's contract (asserted above in debug) makes
        // every `bp` load and `op` store in-bounds; unaligned intrinsics
        // are used throughout, so no alignment requirement exists.
        unsafe {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            let mut bp = bs.as_ptr();
            for &a_ik in a_row {
                let av = _mm256_set1_pd(a_ik);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, _mm256_loadu_pd(bp)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, _mm256_loadu_pd(bp.add(4))));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(av, _mm256_loadu_pd(bp.add(8))));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(av, _mm256_loadu_pd(bp.add(12))));
                bp = bp.add(stride);
            }
            let op = out.as_mut_ptr();
            _mm256_storeu_pd(op, acc0);
            _mm256_storeu_pd(op.add(4), acc1);
            _mm256_storeu_pd(op.add(8), acc2);
            _mm256_storeu_pd(op.add(12), acc3);
        }
    }

    /// # Safety
    /// As [`strip16_avx`], with AVX-512F available.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn strip16_avx512(a_row: &[f64], bs: &[f64], stride: usize, out: &mut [f64]) {
        use std::arch::x86_64::*;
        debug_assert!(a_row.is_empty() || (a_row.len() - 1) * stride + super::NR <= bs.len());
        debug_assert_eq!(out.len(), super::NR);
        // SAFETY: as in `strip16_avx` — contract-bounded unaligned
        // loads/stores only.
        unsafe {
            let mut acc0 = _mm512_setzero_pd();
            let mut acc1 = _mm512_setzero_pd();
            let mut bp = bs.as_ptr();
            for &a_ik in a_row {
                let av = _mm512_set1_pd(a_ik);
                acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(av, _mm512_loadu_pd(bp)));
                acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(av, _mm512_loadu_pd(bp.add(8))));
                bp = bp.add(stride);
            }
            let op = out.as_mut_ptr();
            _mm512_storeu_pd(op, acc0);
            _mm512_storeu_pd(op.add(8), acc1);
        }
    }
}

impl Matrix {
    /// Matrix product `self · rhs` written into a caller-provided
    /// buffer — the allocation-free core of [`Matrix::matmul`].
    ///
    /// `out` must hold exactly `self.rows() * rhs.cols()` elements and
    /// is fully overwritten. `scratch` caches the rhs-row finiteness
    /// mask and (for batches of at least 8 rows) the packed rhs panel
    /// across calls; it must not be reused across *different* rhs
    /// contents (see [`GemmScratch`]).
    ///
    /// Results are bit-identical to the naive i/k/j kernel, including
    /// NaN/inf propagation through zero coefficients.
    pub fn matmul_into(
        &self,
        rhs: &Matrix,
        scratch: &mut GemmScratch,
        out: &mut [f64],
    ) -> Result<()> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.len() != self.rows() * rhs.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_into",
                lhs: (self.rows(), rhs.cols()),
                rhs: (out.len(), 1),
            });
        }
        // Packing pays once the panel is re-streamed by enough rows (or
        // was already built on a previous call with this scratch).
        let use_pack = (self.rows() >= PACK_MIN_ROWS || scratch.packed) && rhs.cols() >= NR;
        if use_pack {
            scratch.ensure_pack(rhs);
        }
        // Split borrows: the mask closure must not alias the pack.
        let GemmScratch { finite, pack, packed } = scratch;
        let packed_b = if use_pack && *packed { Some(pack.as_slice()) } else { None };
        gemm_into(
            self.rows(),
            self.cols(),
            rhs.cols(),
            self.as_slice(),
            rhs.as_slice(),
            packed_b,
            |r| finite.get_or_insert_with(|| row_finiteness(rhs))[r],
            out,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn blocked_matches_naive_across_strip_boundaries() {
        // Widths straddling the NR=16 strip edge and the NC=256
        // column-block edge (so the jc loop runs more than once, and
        // packed-strip offsets are exercised in a second block), and
        // heights straddling the MC block and PACK_MIN_ROWS edges.
        for (rows, k, cols) in [
            (1, 3, 1),
            (5, 7, 15),
            (3, 4, 16),
            (2, 9, 17),
            (8, 4, 16),
            (70, 5, 33),
            (3, 4, 300),
            (9, 6, 513),
        ] {
            let a_data: Vec<f64> =
                (0..rows * k).map(|i| ((i * 37 + 11) % 19) as f64 - 9.0).collect();
            let b_data: Vec<f64> =
                (0..k * cols).map(|i| ((i * 53 + 7) % 23) as f64 - 11.0).collect();
            let a = m(rows, k, &a_data);
            let b = m(k, cols, &b_data);
            let want = naive_matmul(&a, &b);
            let mut out = vec![f64::NAN; rows * cols];
            a.matmul_into(&b, &mut GemmScratch::new(), &mut out).unwrap();
            for (got, want) in out.iter().zip(want.as_slice()) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
            // The eagerly packed + masked scratch must agree bit for bit.
            let mut out2 = vec![f64::NAN; rows * cols];
            a.matmul_into(&b, &mut GemmScratch::precomputed(&b), &mut out2).unwrap();
            for (got, want) in out2.iter().zip(want.as_slice()) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn scratch_reuse_and_precompute_agree() {
        let a = m(2, 3, &[0.0, 1.0, -2.0, 3.0, 0.0, 0.5]);
        let b = m(3, 2, &[1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0]);
        let mut lazy = GemmScratch::new();
        let mut out1 = vec![0.0; 4];
        a.matmul_into(&b, &mut lazy, &mut out1).unwrap();
        let mut out2 = vec![0.0; 4];
        a.matmul_into(&b, &mut GemmScratch::precomputed(&b), &mut out2).unwrap();
        let mut out3 = vec![0.0; 4];
        a.matmul_into(&b, &mut lazy, &mut out3).unwrap(); // cached mask
        for ((x, y), z) in out1.iter().zip(&out2).zip(&out3) {
            assert_eq!(x.to_bits(), y.to_bits());
            assert_eq!(x.to_bits(), z.to_bits());
        }
        // The NaN in b's first row must poison products with the zero
        // coefficient in a's first row.
        assert!(out1[1].is_nan());
    }

    #[test]
    fn cleared_scratch_recomputes_after_rhs_change() {
        let a = m(1, 2, &[0.0, 1.0]);
        let mut b = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut scratch = GemmScratch::precomputed(&b);
        let mut out = vec![0.0; 2];
        a.matmul_into(&b, &mut scratch, &mut out).unwrap();
        assert_eq!(out, vec![3.0, 4.0]);
        // Poison the row the zero coefficient previously skipped.
        b.set(0, 0, f64::NAN);
        scratch.clear();
        a.matmul_into(&b, &mut scratch, &mut out).unwrap();
        assert!(out[0].is_nan(), "cleared scratch must re-scan the poisoned rhs");
    }

    /// Counters are process-global, so the test asserts deltas (other
    /// tests in the binary may bump them concurrently, but only this
    /// one runs these exact calls between its two snapshots' deltas
    /// being *at least* what it contributed).
    #[cfg(feature = "kernel-stats")]
    #[test]
    fn kernel_stats_track_pack_lifecycle() {
        let rows = PACK_MIN_ROWS.max(8);
        let a = Matrix::zeros(rows, 4);
        let b = Matrix::zeros(4, NR);
        let mut out = vec![0.0; rows * NR];

        let before = stats::snapshot();
        let mut scratch = GemmScratch::new();
        a.matmul_into(&b, &mut scratch, &mut out).unwrap(); // builds the panel
        a.matmul_into(&b, &mut scratch, &mut out).unwrap(); // reuses it
        let after = stats::snapshot();

        assert!(after.packs_built > before.packs_built);
        assert!(after.packs_reused > before.packs_reused);
        let calls = |s: stats::KernelStats| s.calls_avx512 + s.calls_avx + s.calls_portable;
        assert!(calls(after) >= calls(before) + 2, "each gemm call records its ISA path");
    }

    #[test]
    fn packed_panel_streams_full_strips() {
        // 2 full strips + 3 remainder cols.
        let k = 3;
        let n = 2 * NR + 3;
        let b: Vec<f64> = (0..k * n).map(|i| i as f64).collect();
        let mut pack = vec![999.0; 1]; // cleared and reused
        pack_rhs(k, n, &b, &mut pack);
        assert_eq!(pack.len(), k * 2 * NR);
        // Strip 0, k row 1 starts at b[n + 0].
        assert_eq!(pack[NR], b[n]);
        // Strip 1, k row 0 starts at b[NR].
        assert_eq!(pack[k * NR..k * NR + NR], b[NR..2 * NR]);
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut out = vec![0.0; 4];
        assert!(a.matmul_into(&b, &mut GemmScratch::new(), &mut out).is_err());
        let b = Matrix::zeros(3, 2);
        let mut short = vec![0.0; 3];
        assert!(matches!(
            a.matmul_into(&b, &mut GemmScratch::new(), &mut short),
            Err(LinalgError::ShapeMismatch { op: "matmul_into", .. })
        ));
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        // Widths past the strip boundary and heights on both sides of
        // the pack threshold: the empty rhs must never be strip-sliced.
        for (m_rows, n_cols) in [(3usize, 4usize), (3, 33), (9, 40)] {
            let a = Matrix::zeros(m_rows, 0);
            let b = Matrix::zeros(0, n_cols);
            let mut out = vec![f64::NAN; m_rows * n_cols];
            a.matmul_into(&b, &mut GemmScratch::new(), &mut out).unwrap();
            assert!(out.iter().all(|&v| v == 0.0), "{m_rows}x0x{n_cols}");
            let via_alloc = a.matmul(&b).unwrap();
            assert_eq!(via_alloc.shape(), (m_rows, n_cols));
            assert!(via_alloc.as_slice().iter().all(|&v| v == 0.0));
        }
    }
}
