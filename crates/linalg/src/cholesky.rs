//! Cholesky factorisation for symmetric positive-definite matrices.
//!
//! Used to sample from full-covariance Gaussians in the synthetic dataset
//! generators (`x = mu + L z`) and as a fast SPD solve in GMM.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Computes the lower-triangular `L` with `A = L Lᵀ`.
///
/// # Errors
/// [`LinalgError::NotSquare`] for rectangular input;
/// [`LinalgError::Singular`] when the matrix is not positive definite
/// within tolerance.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { op: "cholesky", shape: a.shape() });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular { op: "cholesky" });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Cholesky with diagonal jitter escalation: retries with `A + eps I`,
/// multiplying `eps` by 10 up to `max_tries` times. Covariance estimates
/// from small samples are frequently only positive *semi*-definite; the
/// jitter mirrors what sklearn's GMM does with `reg_covar`.
pub fn cholesky_jittered(a: &Matrix, mut eps: f64, max_tries: usize) -> Result<Matrix> {
    match cholesky(a) {
        Ok(l) => return Ok(l),
        Err(LinalgError::Singular { .. }) => {}
        Err(e) => return Err(e),
    }
    let n = a.rows();
    for _ in 0..max_tries {
        let mut jittered = a.clone();
        for i in 0..n {
            let v = jittered.get(i, i) + eps;
            jittered.set(i, i, v);
        }
        match cholesky(&jittered) {
            Ok(l) => return Ok(l),
            Err(LinalgError::Singular { .. }) => eps *= 10.0,
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::Singular { op: "cholesky_jittered" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorises_spd_matrix() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]).unwrap();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-10);
        // Strictly lower-triangular above the diagonal must be zero.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn known_2x2_factor() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 10.0]).unwrap();
        let l = cholesky(&a).unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(cholesky(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(cholesky(&a).is_err());
        let l = cholesky_jittered(&a, 1e-9, 12).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn jitter_gives_up_eventually() {
        // A matrix with a large negative eigenvalue cannot be rescued with
        // tiny jitter and few tries.
        let a = Matrix::from_vec(2, 2, vec![-100.0, 0.0, 0.0, -100.0]).unwrap();
        assert!(cholesky_jittered(&a, 1e-12, 2).is_err());
    }
}
