//! Euclidean distance kernels for the neighbour-based detectors.
//!
//! LOF, KNN, COF, SOD and CBLOF all reduce to (partial) nearest-neighbour
//! queries over pairwise Euclidean distances. At the suite's scale
//! (n ≤ a few thousand) a well-vectorised brute-force kernel beats tree
//! structures, so that is what ships here.

use crate::matrix::Matrix;

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Full pairwise distance matrix of the rows of `x` (symmetric, zero
/// diagonal).
pub fn pairwise(x: &Matrix) -> Matrix {
    let n = x.rows();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        let ri = x.row(i);
        for j in (i + 1)..n {
            let dist = euclidean(ri, x.row(j));
            d.set(i, j, dist);
            d.set(j, i, dist);
        }
    }
    d
}

/// Cross distance matrix: `out[i][j] = ||a_i - b_j||`.
pub fn cross(a: &Matrix, b: &Matrix) -> Matrix {
    debug_assert_eq!(a.cols(), b.cols());
    let mut d = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let ra = a.row(i);
        let row = d.row_mut(i);
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = euclidean(ra, b.row(j));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let x = Matrix::from_vec(3, 2, vec![0.0, 0.0, 3.0, 4.0, 0.0, 1.0]).unwrap();
        let d = pairwise(&x);
        for i in 0..3 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert!((d.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((d.get(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_matches_pairwise_on_self() {
        let x = Matrix::from_vec(3, 2, vec![0.0, 0.0, 3.0, 4.0, 0.0, 1.0]).unwrap();
        let c = cross(&x, &x);
        let p = pairwise(&x);
        assert!(c.max_abs_diff(&p) < 1e-12);
    }

    #[test]
    fn cross_rectangular_shape() {
        let a = Matrix::from_vec(2, 1, vec![0.0, 10.0]).unwrap();
        let b = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let c = cross(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(1, 0), 9.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let x =
            Matrix::from_vec(3, 3, vec![1.0, 0.5, -1.0, 2.0, 2.0, 2.0, -3.0, 0.0, 4.0]).unwrap();
        let d = pairwise(&x);
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-12);
                }
            }
        }
    }
}
