//! Dense linear-algebra substrate for the UADB reproduction.
//!
//! The UADB paper depends on PyOD detectors and a PyTorch MLP, both of
//! which sit on top of BLAS/LAPACK. This crate provides the minimal dense
//! kernel set those systems need, built from scratch:
//!
//! * [`Matrix`] — row-major dense `f64` matrix with cache-friendly matmul,
//! * [`gemm`] — cache-blocked, allocation-free GEMM kernel behind
//!   [`Matrix::matmul`]/[`Matrix::matmul_into`] ([`gemm::GemmScratch`]
//!   caches the rhs-row finiteness mask across calls),
//! * [`eigen::sym_eigen`] — cyclic Jacobi eigendecomposition for symmetric
//!   matrices (PCA, GMM covariances),
//! * [`lu::LuDecomposition`] — LU with partial pivoting (solve, inverse,
//!   determinant; GMM precision matrices),
//! * [`cholesky::cholesky`] — SPD factorisation (covariance sampling),
//! * [`distance`] — pairwise Euclidean distances (LOF/KNN/COF/SOD/CBLOF),
//! * [`colstats`] — column means/variances/covariance matrices.
//!
//! All routines are deterministic and allocation-conscious: hot loops
//! operate on slices with pre-allocated outputs, per the Rust perf-book
//! guidance the repo follows.

pub mod cholesky;
pub mod colstats;
pub mod distance;
pub mod eigen;
pub mod error;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod vecops;

pub use error::LinalgError;
pub use gemm::GemmScratch;
pub use matrix::Matrix;

/// Convenience result alias for fallible linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;
