//! Row-major dense `f64` matrix.
//!
//! The storage layout is a single contiguous `Vec<f64>` so that row slices
//! are cache-friendly; every hot kernel in the workspace (MLP forward
//! passes, pairwise distances, tree-ensemble scoring) iterates rows.

use crate::error::LinalgError;
use crate::Result;

/// A dense row-major matrix of `f64` values.
///
/// Rows are samples and columns are features throughout this workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Iterator over row slices. Always yields exactly [`Matrix::rows`]
    /// items — a `rows × 0` matrix yields `rows` empty slices, not zero
    /// rows (chunking the empty backing buffer would disagree with the
    /// declared shape and make e.g. `matvec` drop rows).
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        let cols = self.cols;
        (0..self.rows).map(move |r| &self.data[r * cols..(r + 1) * cols])
    }

    /// Returns a new matrix with the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Returns a new matrix with the selected columns, in the given order.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in indices.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for (c, &v) in src.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Thin allocating wrapper over [`Matrix::matmul_into`], which runs
    /// the cache-blocked kernel in [`crate::gemm`]. Per-element `k`
    /// accumulation stays sequential, so results are bit-identical to
    /// the historic naive i/k/j kernel.
    ///
    /// Follows IEEE-754 semantics: a NaN or infinity in *either* operand
    /// poisons every product element it participates in. Zero left-hand
    /// coefficients (common: ReLU activations are about half zeros) may
    /// only skip their rank-1 update when the matching `rhs` row is all
    /// finite — `0.0 * NaN` and `0.0 * inf` are NaN, so an unconditional
    /// skip would let a corrupted operand score clean. The per-row
    /// finiteness mask is built lazily on the first zero coefficient hit
    /// (dense multiplies pay nothing for it) and can be cached across
    /// calls via [`crate::gemm::GemmScratch`].
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        // Validate before allocating: a mismatched pair must cost an
        // error, not an m×n zero buffer.
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let mut scratch = crate::gemm::GemmScratch::new();
        self.matmul_into(rhs, &mut scratch, out.as_mut_slice())?;
        Ok(out)
    }

    /// Matrix-vector product `self * v` — the `n = 1` case of the
    /// blocked kernel, with `v` read as a `k×1` column.
    ///
    /// Shares `matmul`'s exact semantics (ascending-`k` accumulation
    /// from `+0.0`, zero-coefficient skip gated on `v[k]` finiteness).
    /// One observable delta from the pre-kernel implementation, which
    /// folded from `-0.0` (std's `Sum` identity): a result that is
    /// exactly zero is always `+0.0` now, where the old code could
    /// return `-0.0`. The two compare equal; only `to_bits` differs.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        crate::gemm::gemm_into(
            self.rows,
            self.cols,
            1,
            &self.data,
            v,
            None,
            |r| v[r].is_finite(),
            &mut out,
        );
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scales every element by `s`, in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_inplace(s);
        m
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// Widths must agree; only a completely empty `0 × 0` operand (the
    /// neutral element) is width-agnostic. A `0 × k` matrix still has a
    /// definite width `k` and stacking it against a different width is a
    /// shape error — previously that mismatch was silently accepted and
    /// produced a matrix whose claimed width disagreed with its buffer.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        let lhs_any = self.rows == 0 && self.cols == 0;
        let rhs_any = other.rows == 0 && other.cols == 0;
        if self.cols != other.cols && !lhs_any && !rhs_any {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = if lhs_any { other.cols } else { self.cols };
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols, data })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to `rhs` (`inf` norm of the
    /// difference); useful in tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        debug_assert_eq!(self.shape(), rhs.shape());
        self.data.iter().zip(&rhs.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn zeros_identity_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.get(1, 0), 3.0);
    }

    #[test]
    fn row_and_col_access() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
        assert_eq!(a.col(2), vec![3., 6.]);
        let rows: Vec<&[f64]> = a.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1., 2., 3.]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5., 6.]);
        assert_eq!(s.row(1), &[1., 2.]);
        let c = a.select_cols(&[1]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.col(0), vec![2., 4., 6.]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { op: "matmul", .. })));
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_coefficients() {
        // IEEE-754: 0.0 * NaN = NaN and 0.0 * inf = NaN, so a zero in the
        // left operand must NOT shortcut past a poisoned right operand.
        let a = m(1, 2, &[0.0, 1.0]);
        let mut b = m(2, 2, &[f64::NAN, f64::INFINITY, 5.0, 6.0]);
        let c = a.matmul(&b).unwrap();
        assert!(c.get(0, 0).is_nan(), "0*NaN + 1*5 must be NaN, got {}", c.get(0, 0));
        assert!(c.get(0, 1).is_nan(), "0*inf + 1*6 must be NaN, got {}", c.get(0, 1));
        // Infinity in the right operand against a non-zero coefficient
        // propagates as ±inf.
        b = m(2, 2, &[f64::INFINITY, 1.0, 5.0, 6.0]);
        let a = m(1, 2, &[2.0, 1.0]);
        assert_eq!(a.matmul(&b).unwrap().get(0, 0), f64::INFINITY);
        // And NaN/inf in the *left* operand poisons its whole output row.
        let a = m(1, 2, &[f64::NAN, 0.0]);
        let b = m(2, 1, &[1.0, 1.0]);
        assert!(a.matmul(&b).unwrap().get(0, 0).is_nan());
    }

    #[test]
    fn zero_width_matrix_keeps_its_rows() {
        let z = Matrix::zeros(3, 0);
        assert_eq!(z.rows(), 3);
        // row_iter must agree with rows(): 3 empty rows, not 0 rows.
        let rows: Vec<&[f64]> = z.row_iter().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // matvec on a rows×0 matrix is `rows` empty dot products = zeros.
        assert_eq!(z.matvec(&[]).unwrap(), vec![0.0; 3]);
        // matmul against a 0×k operand likewise keeps the row count.
        let c = z.matmul(&Matrix::zeros(0, 4)).unwrap();
        assert_eq!(c.shape(), (3, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[4., 3., 2., 1.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3., -1., 1., 3.]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2., 4., 6., 8.]);
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
        assert!(a.sub(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn vstack_appends_rows() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5., 6.]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn vstack_zero_row_operands_still_check_width() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        // A 0×2 matrix has width 2; stacking it with width 3 is an error
        // in both orders (previously accepted, corrupting the layout).
        assert!(a.vstack(&Matrix::zeros(0, 2)).is_err());
        assert!(Matrix::zeros(0, 2).vstack(&a).is_err());
        // Matching zero-row width is fine and preserves the width.
        assert_eq!(a.vstack(&Matrix::zeros(0, 3)).unwrap(), a);
        assert_eq!(Matrix::zeros(0, 3).vstack(&a).unwrap(), a);
        // The truly empty 0×0 matrix is the neutral element on either side.
        assert_eq!(a.vstack(&Matrix::zeros(0, 0)).unwrap(), a);
        let s = Matrix::zeros(0, 0).vstack(&a).unwrap();
        assert_eq!(s, a);
        assert_eq!(Matrix::zeros(0, 0).vstack(&Matrix::zeros(0, 0)).unwrap().shape(), (0, 0));
    }

    #[test]
    fn norms() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = m(1, 2, &[3., 6.]);
        assert!((a.max_abs_diff(&b) - 2.0).abs() < 1e-12);
    }
}
