//! Column-wise statistics: means, variances, covariance matrices.
//!
//! Needed by PCA (covariance eigendecomposition), GMM (component
//! covariances), OCSVM (the `gamma='scale'` heuristic) and the dataset
//! standardisation pipeline.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Column means of `x`.
pub fn col_means(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    let mut means = vec![0.0; d];
    if n == 0 {
        return means;
    }
    for row in x.row_iter() {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    means
}

/// Column population variances of `x` (divides by `n`).
pub fn col_variances(x: &Matrix) -> Vec<f64> {
    let (n, d) = x.shape();
    let mut vars = vec![0.0; d];
    if n == 0 {
        return vars;
    }
    let means = col_means(x);
    for row in x.row_iter() {
        for ((s, &v), &m) in vars.iter_mut().zip(row).zip(&means) {
            let c = v - m;
            *s += c * c;
        }
    }
    for s in &mut vars {
        *s /= n as f64;
    }
    vars
}

/// Mean of all column variances — the `X.var()` term of sklearn's
/// `gamma='scale'` for RBF kernels (computed over the flattened matrix
/// there; we follow the flattened definition exactly).
pub fn total_variance(x: &Matrix) -> f64 {
    let n = x.rows() * x.cols();
    if n == 0 {
        return 0.0;
    }
    let mean = x.as_slice().iter().sum::<f64>() / n as f64;
    x.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64
}

/// Sample covariance matrix of `x` (divides by `n - 1`; by `n` when a
/// single row is given, yielding zeros).
///
/// Returns [`LinalgError::Empty`] for an empty matrix.
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    let (n, d) = x.shape();
    if n == 0 || d == 0 {
        return Err(LinalgError::Empty { op: "covariance" });
    }
    let means = col_means(x);
    let mut cov = Matrix::zeros(d, d);
    let mut centered = vec![0.0; d];
    for row in x.row_iter() {
        for ((c, &v), &m) in centered.iter_mut().zip(row).zip(&means) {
            *c = v - m;
        }
        for i in 0..d {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let out = &mut cov.as_mut_slice()[i * d..(i + 1) * d];
            for (o, &cj) in out.iter_mut().zip(&centered) {
                *o += ci * cj;
            }
        }
    }
    let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
    cov.scale_inplace(1.0 / denom);
    Ok(cov)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]).unwrap()
    }

    #[test]
    fn means_are_per_column() {
        assert_eq!(col_means(&sample()), vec![2.5, 25.0]);
        assert_eq!(col_means(&Matrix::zeros(0, 3)), vec![0.0; 3]);
    }

    #[test]
    fn variances_are_population() {
        let v = col_variances(&sample());
        assert!((v[0] - 1.25).abs() < 1e-12);
        assert!((v[1] - 125.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_matches_hand_computation() {
        let c = covariance(&sample()).unwrap();
        // sample covariance: var(x)=5/3, cov(x,y)=50/3, var(y)=500/3
        assert!((c.get(0, 0) - 5.0 / 3.0).abs() < 1e-9);
        assert!((c.get(0, 1) - 50.0 / 3.0).abs() < 1e-9);
        assert!((c.get(1, 0) - 50.0 / 3.0).abs() < 1e-9);
        assert!((c.get(1, 1) - 500.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn covariance_is_symmetric() {
        let x = Matrix::from_vec(
            5,
            3,
            vec![0.1, 2.0, -1.0, 0.4, 1.0, 3.0, -0.5, 0.0, 1.5, 2.2, -1.0, 0.3, 1.0, 1.0, 1.0],
        )
        .unwrap();
        let c = covariance(&x).unwrap();
        assert!(c.max_abs_diff(&c.transpose()) < 1e-12);
    }

    #[test]
    fn covariance_rejects_empty() {
        assert!(covariance(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn total_variance_flattened() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // flattened variance of [1,2,3,4] = 1.25
        assert!((total_variance(&x) - 1.25).abs() < 1e-12);
        assert_eq!(total_variance(&Matrix::zeros(0, 0)), 0.0);
    }
}
