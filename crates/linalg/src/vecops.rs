//! Small vector kernels shared across the workspace.

/// Dot product of two equally-long slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`, the classic AXPY kernel.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Population variance (divides by `n`); 0.0 for slices shorter than 1.
///
/// The UADB error-correction rule (Alg. 1 line 7) uses the population
/// variance of the pseudo-label history, matching `numpy.var` defaults.
#[inline]
pub fn population_variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64
}

/// Sample standard deviation (divides by `n-1`); 0.0 if fewer than 2 items.
#[inline]
pub fn sample_std(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (a.len() - 1) as f64).sqrt()
}

/// Minimum and maximum of a slice, ignoring NaNs; `None` when empty.
pub fn min_max(a: &[f64]) -> Option<(f64, f64)> {
    let mut it = a.iter().copied().filter(|v| !v.is_nan());
    let first = it.next()?;
    let (mut lo, mut hi) = (first, first);
    for v in it {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Indices that would sort `a` ascending (NaNs last, stable).
pub fn argsort(a: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len()).collect();
    idx.sort_by(|&i, &j| a[i].partial_cmp(&a[j]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert!((norm2(&[3., 4.]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        // population variance of [1,2,3] = 2/3
        assert!((population_variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(population_variance(&[]), 0.0);
        assert_eq!(sample_std(&[5.0]), 0.0);
        assert!((sample_std(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn variance_of_two_entries_matches_paper_formula() {
        // variance([fS(x), fB(x)]) with fS=0.2, fB=0.8: mean 0.5,
        // population variance = (0.09 + 0.09)/2 = 0.09.
        assert!((population_variance(&[0.2, 0.8]) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn min_max_ignores_nan() {
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[2.0, f64::NAN, -1.0, 5.0]), Some((-1.0, 5.0)));
    }

    #[test]
    fn argsort_orders_indices() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
        assert_eq!(argsort(&[]), Vec::<usize>::new());
    }
}
