//! LU decomposition with partial pivoting: solve, inverse, determinant.
//!
//! GMM scoring needs precision matrices (inverse covariances) and
//! log-determinants; the dependency-anomaly generator needs linear solves.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Compact LU factorisation `PA = LU` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation applied to the input.
    piv: Vec<usize>,
    /// Parity of the permutation (`+1.0` or `-1.0`), for determinants.
    sign: f64,
}

impl LuDecomposition {
    /// Factorises a square matrix.
    ///
    /// # Errors
    /// [`LinalgError::NotSquare`] for rectangular input;
    /// [`LinalgError::Singular`] when a pivot underflows `1e-300`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::NotSquare { op: "lu", shape: a.shape() });
        }
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest |value| in column k at or below row k.
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular { op: "lu" });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(p, j));
                    lu.set(p, j, tmp);
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
        Ok(Self { lu, piv, sign })
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.lu.get(i, j) * xj;
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu.get(i, j) * xj;
            }
            x[i] = sum / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Matrix inverse via `n` unit-vector solves.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for (r, &v) in col.iter().enumerate() {
                inv.set(r, c, v);
            }
        }
        Ok(inv)
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu.get(i, i)).product::<f64>() * self.sign
    }

    /// Natural log of |det|; `-inf` only for singular matrices, which the
    /// constructor already rejects.
    pub fn ln_abs_determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu.get(i, i).abs().ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a3() -> Matrix {
        Matrix::from_vec(3, 3, vec![2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0]).unwrap()
    }

    #[test]
    fn solve_known_system() {
        let lu = LuDecomposition::new(&a3()).unwrap();
        // Solution of the textbook system: x = (1, 2, 2) gives b.
        let b = vec![2.0 * 1.0 + 2.0 + 2.0, 4.0 - 12.0, -2.0 + 14.0 + 4.0];
        let x = lu.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!((x[2] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = a3();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn determinant_known_value() {
        // det = 2(-12-0) -1(8-0) +1(28-12) = -24 - 8 + 16 = -16
        let lu = LuDecomposition::new(&a3()).unwrap();
        assert!((lu.determinant() + 16.0).abs() < 1e-10);
        assert!((lu.ln_abs_determinant() - 16.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_rejected() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(LuDecomposition::new(&s), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        assert!(LuDecomposition::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_checks_rhs_length() {
        let lu = LuDecomposition::new(&a3()).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn permutation_parity_in_determinant() {
        // A matrix requiring a pivot swap: [[0,1],[1,0]] has det -1.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }
}
