//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA and GMM need eigenpairs of covariance matrices. Jacobi rotation is
//! simple, numerically robust for symmetric matrices, and quadratically
//! convergent — more than sufficient for the `d ≤ 64` feature spaces this
//! workspace handles.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, `vectors.col(j)` pairs with
    /// `values[j]`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// The input is symmetrised as `(A + Aᵀ)/2` to wash out representation
/// noise. Returns eigenpairs sorted by descending eigenvalue.
///
/// # Errors
/// [`LinalgError::NotSquare`] for non-square input;
/// [`LinalgError::NoConvergence`] if the off-diagonal mass fails to vanish
/// within 100 sweeps (practically unreachable for real symmetric input).
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { op: "sym_eigen", shape: a.shape() });
    }
    if n == 0 {
        return Ok(SymEigen { values: vec![], vectors: Matrix::zeros(0, 0) });
    }

    // Work on the symmetrised copy.
    let mut s = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            s.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
        }
    }
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    let eps = 1e-12 * s.frobenius_norm().max(1.0);
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += s.get(i, j).abs();
            }
        }
        if off <= eps {
            return Ok(sorted(s, v, n));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = s.get(p, q);
                if apq.abs() <= eps * 1e-4 {
                    continue;
                }
                let app = s.get(p, p);
                let aqq = s.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let sn = t * c;
                rotate(&mut s, p, q, c, sn);
                rotate_cols(&mut v, p, q, c, sn);
            }
        }
    }
    Err(LinalgError::NoConvergence { op: "sym_eigen", iterations: MAX_SWEEPS })
}

/// Applies the two-sided Jacobi rotation `Jᵀ S J` on rows/cols `p`,`q`.
fn rotate(s: &mut Matrix, p: usize, q: usize, c: f64, sn: f64) {
    let n = s.rows();
    for k in 0..n {
        let skp = s.get(k, p);
        let skq = s.get(k, q);
        s.set(k, p, c * skp - sn * skq);
        s.set(k, q, sn * skp + c * skq);
    }
    for k in 0..n {
        let spk = s.get(p, k);
        let sqk = s.get(q, k);
        s.set(p, k, c * spk - sn * sqk);
        s.set(q, k, sn * spk + c * sqk);
    }
}

/// Applies the rotation to the eigenvector accumulator columns `p`,`q`.
fn rotate_cols(v: &mut Matrix, p: usize, q: usize, c: f64, sn: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - sn * vkq);
        v.set(k, q, sn * vkp + c * vkq);
    }
}

/// Sorts eigenpairs by descending eigenvalue.
fn sorted(s: Matrix, v: Matrix, n: usize) -> SymEigen {
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| s.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::dot;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // A = V diag(w) Vt must reproduce the input.
        let a = Matrix::from_vec(
            4,
            4,
            vec![4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.2, 0.1, 0.5, 0.2, 2.0, 0.3, 0.0, 0.1, 0.3, 1.0],
        )
        .unwrap();
        let e = sym_eigen(&a).unwrap();
        let n = 4;
        let mut recon = Matrix::zeros(n, n);
        for j in 0..n {
            let v = e.vectors.col(j);
            for r in 0..n {
                for c in 0..n {
                    let cur = recon.get(r, c);
                    recon.set(r, c, cur + e.values[j] * v[r] * v[c]);
                }
            }
        }
        assert!(recon.max_abs_diff(&a) < 1e-8);
        // Orthonormal columns.
        for i in 0..n {
            for j in 0..n {
                let d = dot(&e.vectors.col(i), &e.vectors.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "col {i} . col {j} = {d}");
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let e = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a =
            Matrix::from_vec(3, 3, vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]).unwrap();
        let e = sym_eigen(&a).unwrap();
        let trace = 6.0;
        assert!((e.values.iter().sum::<f64>() - trace).abs() < 1e-9);
    }
}
