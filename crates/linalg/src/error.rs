//! Typed errors for linear-algebra routines.

use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Human-readable operation name.
        op: &'static str,
        /// Actual shape.
        shape: (usize, usize),
    },
    /// A factorisation failed because the matrix is singular (or not SPD
    /// for Cholesky) within numerical tolerance.
    Singular {
        /// Human-readable operation name.
        op: &'static str,
    },
    /// An iterative routine failed to converge within its iteration cap.
    NoConvergence {
        /// Human-readable operation name.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a non-empty input.
    Empty {
        /// Human-readable operation name.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { op } => write!(f, "{op}: matrix is singular"),
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: failed to converge after {iterations} iterations")
            }
            LinalgError::Empty { op } => write!(f, "{op}: input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::ShapeMismatch { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::NotSquare { op: "lu", shape: (2, 3) };
        assert!(e.to_string().contains("square"));
        let e = LinalgError::Singular { op: "inverse" };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::NoConvergence { op: "jacobi", iterations: 99 };
        assert!(e.to_string().contains("99"));
        let e = LinalgError::Empty { op: "covariance" };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Singular { op: "x" }, LinalgError::Singular { op: "x" });
        assert_ne!(LinalgError::Singular { op: "x" }, LinalgError::Empty { op: "x" });
    }
}
