//! CSV import/export so the library runs on real tabular data, not just
//! the simulated suite.
//!
//! Format: numeric CSV, optional header row, optional trailing label
//! column (`0`/`1`). This matches how the ADBench `.npz` tables are
//! usually flattened for non-Python consumers.

use crate::dataset::Dataset;
use std::fmt;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use uadb_linalg::Matrix;

/// CSV loading errors.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        column: usize,
        /// Offending cell text.
        cell: String,
    },
    /// Rows have inconsistent column counts.
    Ragged {
        /// 1-based line number.
        line: usize,
        /// Expected width from the first data row.
        expected: usize,
        /// Actual width.
        got: usize,
    },
    /// The file contains no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, column, cell } => {
                write!(f, "line {line}, column {column}: cannot parse {cell:?} as a number")
            }
            CsvError::Ragged { line, expected, got } => {
                write!(f, "line {line}: expected {expected} columns, got {got}")
            }
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Whether the last CSV column holds ground-truth labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelColumn {
    /// Last column is a 0/1 label (evaluation only, as in the paper).
    Last,
    /// All columns are features; labels default to all-zero.
    None,
}

/// Reads a dataset from CSV text (any `BufRead`).
///
/// A first line containing any unparsable cell is treated as a header
/// and skipped; every later parse failure is an error.
pub fn read_csv<R: BufRead>(
    reader: R,
    name: impl Into<String>,
    labels: LabelColumn,
) -> Result<Dataset, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let mut parsed = Vec::with_capacity(cells.len());
        let mut failed: Option<usize> = None;
        for (c, cell) in cells.iter().enumerate() {
            match cell.parse::<f64>() {
                Ok(v) => parsed.push(v),
                Err(_) => {
                    failed = Some(c);
                    break;
                }
            }
        }
        if let Some(col) = failed {
            if rows.is_empty() && width.is_none() {
                // Header row: skip.
                continue;
            }
            return Err(CsvError::Parse { line: i + 1, column: col, cell: cells[col].to_string() });
        }
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(CsvError::Ragged { line: i + 1, expected: w, got: parsed.len() })
            }
            _ => {}
        }
        rows.push(parsed);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    let (features, labels): (Vec<Vec<f64>>, Vec<u8>) = match labels {
        LabelColumn::None => {
            let n = rows.len();
            (rows, vec![0u8; n])
        }
        LabelColumn::Last => rows
            .into_iter()
            .map(|mut r| {
                let l = r.pop().unwrap_or(0.0);
                (r, (l > 0.5) as u8)
            })
            .unzip(),
    };
    let x = Matrix::from_rows(&features).expect("width checked above");
    Ok(Dataset::new(name, x, labels, "External"))
}

/// Reads a dataset from a CSV file on disk.
pub fn read_csv_file(path: impl AsRef<Path>, labels: LabelColumn) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(&path)?;
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    read_csv(std::io::BufReader::new(file), name, labels)
}

/// Writes anomaly scores (one per row, aligned with the dataset) as a
/// two-column CSV `row_index,score`.
pub fn write_scores<W: Write>(writer: W, scores: &[f64]) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "row,score")?;
    for (i, s) in scores.iter().enumerate() {
        writeln!(out, "{i},{s}")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_plain_csv_with_labels() {
        let csv = "1.0,2.0,0\n3.0,4.0,1\n5.5,6.5,0\n";
        let d = read_csv(Cursor::new(csv), "t", LabelColumn::Last).unwrap();
        assert_eq!(d.n_samples(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.labels, vec![0, 1, 0]);
        assert_eq!(d.x.get(1, 1), 4.0);
    }

    #[test]
    fn header_row_is_skipped() {
        let csv = "f1,f2,label\n1,2,0\n3,4,1\n";
        let d = read_csv(Cursor::new(csv), "t", LabelColumn::Last).unwrap();
        assert_eq!(d.n_samples(), 2);
        assert_eq!(d.n_anomalies(), 1);
    }

    #[test]
    fn no_label_column_mode() {
        let csv = "1,2\n3,4\n";
        let d = read_csv(Cursor::new(csv), "t", LabelColumn::None).unwrap();
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_anomalies(), 0);
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "1,2,0\n3,4\n";
        let err = read_csv(Cursor::new(csv), "t", LabelColumn::Last).unwrap_err();
        assert!(matches!(err, CsvError::Ragged { line: 2, expected: 3, got: 2 }));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_cell_mid_file_rejected() {
        let csv = "1,2,0\nx,4,1\n";
        let err = read_csv(Cursor::new(csv), "t", LabelColumn::Last).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, column: 0, .. }));
    }

    #[test]
    fn empty_input_rejected() {
        let err = read_csv(Cursor::new("\n\n"), "t", LabelColumn::Last).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn blank_lines_and_whitespace_tolerated() {
        let csv = " 1 , 2 , 1 \n\n 3 ,4, 0\n";
        let d = read_csv(Cursor::new(csv), "t", LabelColumn::Last).unwrap();
        assert_eq!(d.n_samples(), 2);
        assert_eq!(d.labels, vec![1, 0]);
    }

    #[test]
    fn score_export_roundtrip() {
        let mut buf = Vec::new();
        write_scores(&mut buf, &[0.25, 0.75]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("row,score\n"));
        assert!(text.contains("0,0.25"));
        assert!(text.contains("1,0.75"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("uadb_io_test.csv");
        std::fs::write(&path, "a,b,y\n1,2,1\n3,4,0\n").unwrap();
        let d = read_csv_file(&path, LabelColumn::Last).unwrap();
        assert_eq!(d.name, "uadb_io_test");
        assert_eq!(d.n_samples(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
