//! The 84-dataset simulated suite, one entry per row of the paper's
//! Table III.
//!
//! Substitution note (DESIGN.md §2): the paper uses the real ADBench
//! datasets; this crate regenerates a *simulated* stand-in per roster
//! entry with the same name, anomaly percentage and category. Each
//! dataset's generator parameters (dimensionality, cluster count, anomaly
//! type mixture, difficulty) are derived deterministically from the
//! dataset name, so the suite is heterogeneous — which is precisely the
//! property the paper's "no universal winner" argument rests on — and
//! fully reproducible.

use crate::dataset::Dataset;
use crate::synth::{generate, AnomalyType, SynthConfig};

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RosterEntry {
    /// Dataset name with its ADBench index prefix (e.g. `"12_glass"`).
    pub name: &'static str,
    /// Anomaly percentage as printed in Table III.
    pub anomaly_pct: f64,
    /// Application-domain category.
    pub category: &'static str,
}

const fn e(name: &'static str, anomaly_pct: f64, category: &'static str) -> RosterEntry {
    RosterEntry { name, anomaly_pct, category }
}

/// The 84 datasets of Table III (47 native tabular + 30 CV embeddings +
/// 7 NLP embeddings).
pub const ROSTER: [RosterEntry; 84] = [
    e("1_abalone", 49.82, "Biology"),
    e("2_ALOI", 3.04, "Image"),
    e("3_annthyroid", 7.42, "Healthcare"),
    e("4_Arrhythmia", 45.78, "Healthcare"),
    e("5_breastw", 34.99, "Healthcare"),
    e("6_cardio", 9.61, "Healthcare"),
    e("7_Cardiotocography", 22.04, "Healthcare"),
    e("9_concrete", 50.00, "Physical"),
    e("10_cover", 0.96, "Botany"),
    e("11_fault", 34.67, "Physical"),
    e("12_glass", 4.21, "Forensic"),
    e("13_HeartDisease", 44.44, "Healthcare"),
    e("14_Hepatitis", 16.25, "Healthcare"),
    e("15_http", 0.39, "Web"),
    e("16_imgseg", 42.86, "Image"),
    e("17_InternetAds", 18.72, "Image"),
    e("18_Ionosphere", 35.90, "Oryctognosy"),
    e("19_landsat", 20.71, "Astronautics"),
    e("20_letter", 6.25, "Image"),
    e("21_Lymphography", 4.05, "Healthcare"),
    e("22_magic.gamma", 35.16, "Physical"),
    e("23_mammography", 2.32, "Healthcare"),
    e("24_mnist", 9.21, "Image"),
    e("25_musk", 3.17, "Chemistry"),
    e("26_optdigits", 2.88, "Image"),
    e("27_PageBlocks", 9.46, "Document"),
    e("28_Parkinson", 75.38, "Healthcare"),
    e("29_pendigits", 2.27, "Image"),
    e("30_Pima", 34.90, "Healthcare"),
    e("31_satellite", 31.64, "Astronautics"),
    e("32_satimage-2", 1.22, "Astronautics"),
    e("33_shuttle", 7.15, "Astronautics"),
    e("34_skin", 20.75, "Image"),
    e("35_smtp", 0.03, "Web"),
    e("36_SpamBase", 39.91, "Document"),
    e("37_speech", 1.65, "Linguistics"),
    e("38_Stamps", 9.12, "Document"),
    e("39_thyroid", 2.47, "Healthcare"),
    e("40_vertebral", 12.50, "Biology"),
    e("41_vowels", 3.43, "Linguistics"),
    e("42_Waveform", 2.90, "Physics"),
    e("43_WBC", 4.48, "Healthcare"),
    e("44_WDBC", 2.72, "Healthcare"),
    e("45_Wilt", 5.33, "Botany"),
    e("46_wine", 7.75, "Chemistry"),
    e("47_WPBC", 23.74, "Healthcare"),
    e("48_yeast", 34.16, "Biology"),
    e("49_CIFAR10_0", 5.00, "Image"),
    e("49_CIFAR10_1", 5.00, "Image"),
    e("49_CIFAR10_2", 5.00, "Image"),
    e("49_CIFAR10_3", 5.00, "Image"),
    e("49_CIFAR10_4", 5.00, "Image"),
    e("49_CIFAR10_5", 5.00, "Image"),
    e("49_CIFAR10_6", 5.00, "Image"),
    e("49_CIFAR10_7", 5.00, "Image"),
    e("49_CIFAR10_8", 5.00, "Image"),
    e("49_CIFAR10_9", 5.00, "Image"),
    e("50_FashionMNIST_0", 5.00, "Image"),
    e("50_FashionMNIST_1", 5.00, "Image"),
    e("50_FashionMNIST_2", 5.00, "Image"),
    e("50_FashionMNIST_3", 5.00, "Image"),
    e("50_FashionMNIST_4", 5.00, "Image"),
    e("50_FashionMNIST_5", 5.00, "Image"),
    e("50_FashionMNIST_6", 5.00, "Image"),
    e("50_FashionMNIST_7", 5.00, "Image"),
    e("50_FashionMNIST_8", 5.00, "Image"),
    e("50_FashionMNIST_9", 5.00, "Image"),
    e("51_SVHN_0", 5.00, "Image"),
    e("51_SVHN_1", 5.00, "Image"),
    e("51_SVHN_2", 5.00, "Image"),
    e("51_SVHN_3", 5.00, "Image"),
    e("51_SVHN_4", 5.00, "Image"),
    e("51_SVHN_5", 5.00, "Image"),
    e("51_SVHN_6", 5.00, "Image"),
    e("51_SVHN_7", 5.00, "Image"),
    e("51_SVHN_8", 5.00, "Image"),
    e("51_SVHN_9", 5.00, "Image"),
    e("52_agnews_0", 5.00, "NLP"),
    e("52_agnews_1", 5.00, "NLP"),
    e("52_agnews_2", 5.00, "NLP"),
    e("52_agnews_3", 5.00, "NLP"),
    e("53_amazon", 5.00, "NLP"),
    e("54_imdb", 5.00, "NLP"),
    e("55_yelp", 5.00, "NLP"),
];

/// The 12-dataset representative subset used by the quick benchmark
/// profile: spans anomaly rates from 0.39% to 75%, native and embedding
/// categories, and all four anomaly-type regimes.
pub const QUICK_SUBSET: [&str; 12] = [
    "12_glass",
    "39_thyroid",
    "27_PageBlocks",
    "25_musk",
    "15_http",
    "31_satellite",
    "19_landsat",
    "26_optdigits",
    "28_Parkinson",
    "49_CIFAR10_0",
    "52_agnews_0",
    "6_cardio",
];

/// Suite size profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Small datasets (n ∈ [240, 520]) for CI-grade runs.
    Quick,
    /// Laptop-scale datasets (n ∈ [400, 1200]) for full reproductions.
    Full,
}

impl SuiteScale {
    /// Reads `UADB_SCALE` (`quick`/`full`) from the environment,
    /// defaulting to `Quick`. Orthogonal to `UADB_SUITE`, which selects
    /// roster *coverage* (12-dataset subset vs all 84) in the harness —
    /// all headline numbers in EXPERIMENTS.md are full coverage at quick
    /// scale.
    pub fn from_env() -> Self {
        match std::env::var("UADB_SCALE").ok().as_deref() {
            Some("full") | Some("FULL") => SuiteScale::Full,
            _ => SuiteScale::Quick,
        }
    }
}

/// FNV-1a 64-bit hash — the deterministic per-name parameter source.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Looks up a roster entry by its full name.
pub fn roster_entry(name: &str) -> Option<&'static RosterEntry> {
    ROSTER.iter().find(|r| r.name == name)
}

/// Generates the simulated dataset for a roster entry.
///
/// All generator parameters are functions of `fnv1a(entry.name) ^ seed`,
/// so the same (name, seed, scale) triple always yields identical data.
pub fn generate_entry(entry: &RosterEntry, scale: SuiteScale, seed: u64) -> Dataset {
    let h = fnv1a(entry.name) ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    let (n_lo, n_hi) = match scale {
        SuiteScale::Quick => (240usize, 520usize),
        SuiteScale::Full => (400usize, 1200usize),
    };
    let n = n_lo + (h % (n_hi - n_lo) as u64) as usize;
    let is_embedding = matches!(entry.category, "Image" | "NLP");
    let d = if is_embedding {
        16 + ((h >> 8) % 33) as usize // 16..48: CV/NLP feature-extractor dims
    } else {
        4 + ((h >> 8) % 17) as usize // 4..20: native tabular dims
    };
    let n_anom = ((entry.anomaly_pct / 100.0) * n as f64).round().max(1.0) as usize;
    let n_anom = n_anom.min(n - 2); // keep at least two inliers
    let n_inliers = n - n_anom;

    // Anomaly-type mixture: two dominant types per dataset, picked and
    // weighted from the hash. Heterogeneous mixtures are what defeat any
    // single detector assumption (paper §I).
    let all = AnomalyType::ALL;
    let primary = all[((h >> 16) % 4) as usize];
    let secondary = all[((h >> 18) % 4) as usize];
    let w_primary = 0.55 + ((h >> 24) % 35) as f64 / 100.0; // 0.55..0.90
    let mix = if primary == secondary {
        vec![(primary, 1.0)]
    } else {
        vec![(primary, w_primary), (secondary, 1.0 - w_primary)]
    };

    let cfg = SynthConfig {
        n_inliers,
        n_anomalies: n_anom,
        dim: d,
        n_clusters: 1 + ((h >> 32) % 3) as usize,
        anomaly_mix: mix,
        // Difficulty calibrated so teacher AUCs land in the paper's
        // observed band (≈0.55–0.9 on ADBench): anomalies overlap the
        // inlier support instead of sitting in free space.
        local_alpha: 2.0 + ((h >> 36) % 30) as f64 / 10.0, // 2.0..5.0
        cluster_offset: 1.2 + ((h >> 42) % 16) as f64 / 10.0, // 1.2..2.8
        seed: h,
    };
    generate(entry.name, entry.category, &cfg)
}

/// Generates the full 84-dataset suite.
pub fn generate_suite(scale: SuiteScale, seed: u64) -> Vec<Dataset> {
    ROSTER.iter().map(|e| generate_entry(e, scale, seed)).collect()
}

/// Generates the 12-dataset quick subset.
pub fn generate_quick_suite(scale: SuiteScale, seed: u64) -> Vec<Dataset> {
    QUICK_SUBSET
        .iter()
        .map(|name| {
            let entry = roster_entry(name).expect("quick subset names are roster names");
            generate_entry(entry, scale, seed)
        })
        .collect()
}

/// Generates a dataset by roster name; `None` for unknown names.
pub fn generate_by_name(name: &str, scale: SuiteScale, seed: u64) -> Option<Dataset> {
    roster_entry(name).map(|e| generate_entry(e, scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_84_unique_entries() {
        assert_eq!(ROSTER.len(), 84);
        let mut names: Vec<&str> = ROSTER.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 84, "roster names must be unique");
    }

    #[test]
    fn quick_subset_names_resolve() {
        for name in QUICK_SUBSET {
            assert!(roster_entry(name).is_some(), "{name} missing from roster");
        }
    }

    #[test]
    fn generated_entry_matches_roster_stats() {
        let entry = roster_entry("12_glass").unwrap();
        let d = generate_entry(entry, SuiteScale::Quick, 0);
        assert_eq!(d.name, "12_glass");
        assert_eq!(d.category, "Forensic");
        // Anomaly percentage within rounding of Table III.
        assert!(
            (d.anomaly_pct() - entry.anomaly_pct).abs() < 1.0,
            "pct {} vs roster {}",
            d.anomaly_pct(),
            entry.anomaly_pct
        );
        assert!(d.n_samples() >= 240 && d.n_samples() <= 520);
    }

    #[test]
    fn extreme_rates_still_have_anomalies_and_inliers() {
        // smtp has 0.03% anomalies; Parkinson has 75.38%.
        for name in ["35_smtp", "28_Parkinson"] {
            let d = generate_by_name(name, SuiteScale::Quick, 1).unwrap();
            assert!(d.n_anomalies() >= 1, "{name} must keep >=1 anomaly");
            assert!(d.n_samples() - d.n_anomalies() >= 2, "{name} must keep >=2 inliers");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let e = roster_entry("39_thyroid").unwrap();
        let a = generate_entry(e, SuiteScale::Quick, 5);
        let b = generate_entry(e, SuiteScale::Quick, 5);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        let c = generate_entry(e, SuiteScale::Quick, 6);
        assert_ne!(a.x.as_slice(), c.x.as_slice());
    }

    #[test]
    fn embedding_datasets_are_higher_dimensional() {
        let img = generate_by_name("49_CIFAR10_0", SuiteScale::Quick, 0).unwrap();
        assert!(img.n_features() >= 16);
        let native = generate_by_name("12_glass", SuiteScale::Quick, 0).unwrap();
        assert!(native.n_features() <= 20);
    }

    #[test]
    fn full_scale_is_larger() {
        let e = roster_entry("6_cardio").unwrap();
        let q = generate_entry(e, SuiteScale::Quick, 0);
        let f = generate_entry(e, SuiteScale::Full, 0);
        assert!(f.n_samples() >= 400);
        assert!(f.n_samples() >= q.n_samples() || q.n_samples() <= 520);
    }

    #[test]
    fn generate_by_unknown_name_is_none() {
        assert!(generate_by_name("not_a_dataset", SuiteScale::Quick, 0).is_none());
    }

    #[test]
    fn suite_scale_env_default_is_quick() {
        std::env::remove_var("UADB_SCALE");
        assert_eq!(SuiteScale::from_env(), SuiteScale::Quick);
    }
}
