//! Synthetic anomaly generators following the ADBench taxonomy.
//!
//! The paper's Fig. 5 study and its dataset substrate both build on the
//! four anomaly types identified by ADBench (Han et al. 2022) and
//! PIDForest: **clustered**, **global**, **local** and **dependency**
//! anomalies. This module generates all four over a Gaussian-mixture
//! inlier manifold:
//!
//! * inliers come from a random GMM with full covariances (correlated
//!   features — the dependency structure),
//! * *local* anomalies reuse the inlier means with covariance scaled by
//!   `alpha`,
//! * *global* anomalies are uniform over the inflated inlier bounding box,
//! * *clustered* anomalies form tight Gaussian clusters off the manifold,
//! * *dependency* anomalies bootstrap each feature independently from the
//!   inlier marginals, preserving marginals while destroying the joint.

use crate::dataset::Dataset;
use rand::distributions::Distribution;
use rand::Rng;
use rand::SeedableRng;
use uadb_linalg::cholesky::cholesky_jittered;
use uadb_linalg::Matrix;

/// The four canonical anomaly types of the ADBench taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyType {
    /// Same cluster means as inliers, inflated covariance.
    Local,
    /// Uniform over the inflated bounding box of the inliers.
    Global,
    /// Tight Gaussian clusters away from the inlier manifold.
    Clustered,
    /// Independent per-feature bootstrap of the inlier marginals.
    Dependency,
}

impl AnomalyType {
    /// All four types, in the row order of the paper's Fig. 5.
    pub const ALL: [AnomalyType; 4] =
        [AnomalyType::Clustered, AnomalyType::Global, AnomalyType::Local, AnomalyType::Dependency];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyType::Local => "Local",
            AnomalyType::Global => "Global",
            AnomalyType::Clustered => "Clustered",
            AnomalyType::Dependency => "Dependency",
        }
    }
}

/// A Gaussian-mixture inlier model plus everything needed to spawn
/// anomalies of each type from it.
#[derive(Debug, Clone)]
pub struct GaussianMixtureModel {
    dim: usize,
    means: Vec<Vec<f64>>,
    /// Cholesky factors of each component covariance.
    factors: Vec<Matrix>,
    weights: Vec<f64>,
}

impl GaussianMixtureModel {
    /// Builds a random mixture of `k` full-covariance Gaussians in `dim`
    /// dimensions. Means spread over `[-spread, spread]`, covariances are
    /// random SPD matrices with per-axis scales in `[0.4, 1.2]` and mild
    /// cross-correlations.
    pub fn random(dim: usize, k: usize, spread: f64, rng: &mut impl Rng) -> Self {
        assert!(dim > 0 && k > 0, "dim and k must be positive");
        let mut means = Vec::with_capacity(k);
        let mut factors = Vec::with_capacity(k);
        for _ in 0..k {
            let mean: Vec<f64> = if spread > 0.0 {
                (0..dim).map(|_| rng.gen_range(-spread..spread)).collect()
            } else {
                vec![0.0; dim]
            };
            means.push(mean);
            factors.push(random_spd_factor(dim, rng));
        }
        // Dirichlet-ish weights: exponentials normalised.
        let raw: Vec<f64> = (0..k).map(|_| -(1.0 - rng.gen::<f64>()).ln() + 0.2).collect();
        let total: f64 = raw.iter().sum();
        let weights = raw.into_iter().map(|w| w / total).collect();
        Self { dim, means, factors, weights }
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of mixture components.
    pub fn n_components(&self) -> usize {
        self.means.len()
    }

    /// Samples `n` points from the mixture.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Matrix {
        let mut out = Matrix::zeros(n, self.dim);
        for r in 0..n {
            let comp = self.pick_component(rng);
            self.sample_component_into(comp, 1.0, rng, out.row_mut(r));
        }
        out
    }

    /// Samples `n` *local anomalies*: the same means with covariance
    /// scaled by `alpha > 1` (standard deviation scaled by `sqrt(alpha)`).
    pub fn sample_local(&self, n: usize, alpha: f64, rng: &mut impl Rng) -> Matrix {
        let scale = alpha.sqrt();
        let mut out = Matrix::zeros(n, self.dim);
        for r in 0..n {
            let comp = self.pick_component(rng);
            self.sample_component_into(comp, scale, rng, out.row_mut(r));
        }
        out
    }

    fn pick_component(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                return i;
            }
        }
        self.weights.len() - 1
    }

    fn sample_component_into(&self, comp: usize, scale: f64, rng: &mut impl Rng, row: &mut [f64]) {
        let normal = rand_distr_standard_normal();
        let z: Vec<f64> = (0..self.dim).map(|_| normal.sample(rng)).collect();
        // x = mu + scale * L z
        let l = &self.factors[comp];
        let mu = &self.means[comp];
        for i in 0..self.dim {
            let mut v = 0.0;
            for (j, &zj) in z.iter().enumerate().take(i + 1) {
                v += l.get(i, j) * zj;
            }
            row[i] = mu[i] + scale * v;
        }
    }
}

/// Standard normal sampler (Box-Muller free: `rand`'s ziggurat via
/// `StandardNormal` is unavailable without `rand_distr`, so we build one
/// from two uniforms).
fn rand_distr_standard_normal() -> BoxMuller {
    BoxMuller
}

/// Minimal Box-Muller standard-normal distribution.
struct BoxMuller;

impl Distribution<f64> for BoxMuller {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Random SPD Cholesky factor with controlled scales and correlations.
fn random_spd_factor(dim: usize, rng: &mut impl Rng) -> Matrix {
    // Build covariance = D^{1/2} R D^{1/2} with random correlation-ish R,
    // then take its (jittered) Cholesky factor.
    let scales: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.4..1.2)).collect();
    let mut cov = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            if i == j {
                cov.set(i, j, scales[i] * scales[i]);
            } else {
                // Mild symmetric correlation; keep |rho| <= 0.5 for SPD-ness.
                let rho = rng.gen_range(-0.35..0.35);
                let v = rho * scales[i] * scales[j];
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
    }
    // Symmetrise the off-diagonals drawn twice above.
    for i in 0..dim {
        for j in (i + 1)..dim {
            let v = 0.5 * (cov.get(i, j) + cov.get(j, i));
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    cholesky_jittered(&cov, 1e-6, 20).expect("randomised covariance must factorise")
}

/// Configuration for a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of inlier samples.
    pub n_inliers: usize,
    /// Number of anomalies.
    pub n_anomalies: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Inlier mixture components.
    pub n_clusters: usize,
    /// Mixture of anomaly types with relative weights.
    pub anomaly_mix: Vec<(AnomalyType, f64)>,
    /// Local-anomaly covariance inflation (ADBench uses alpha ≈ 5).
    pub local_alpha: f64,
    /// Clustered-anomaly displacement in units of the inlier spread.
    pub cluster_offset: f64,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            n_inliers: 450,
            n_anomalies: 50,
            dim: 2,
            n_clusters: 2,
            anomaly_mix: vec![(AnomalyType::Global, 1.0)],
            local_alpha: 5.0,
            cluster_offset: 3.0,
            seed: 0,
        }
    }
}

/// Generates a labelled synthetic dataset per the configuration.
///
/// Rows are shuffled so anomalies are not trailing; labels track the
/// shuffle.
pub fn generate(name: impl Into<String>, category: &'static str, cfg: &SynthConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let gmm = GaussianMixtureModel::random(cfg.dim, cfg.n_clusters, 3.0, &mut rng);
    let inliers = gmm.sample(cfg.n_inliers, &mut rng);

    // Partition the anomaly budget across the mixture.
    let total_w: f64 = cfg.anomaly_mix.iter().map(|(_, w)| w).sum();
    assert!(total_w > 0.0, "anomaly mix weights must sum to > 0");
    let mut counts: Vec<usize> = cfg
        .anomaly_mix
        .iter()
        .map(|(_, w)| ((w / total_w) * cfg.n_anomalies as f64).floor() as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let n_types = counts.len();
    let mut i = 0;
    while assigned < cfg.n_anomalies {
        counts[i % n_types] += 1;
        assigned += 1;
        i += 1;
    }

    let mut anomalies = Matrix::zeros(0, cfg.dim);
    for ((ty, _), &count) in cfg.anomaly_mix.iter().zip(&counts) {
        if count == 0 {
            continue;
        }
        let block = match ty {
            AnomalyType::Local => gmm.sample_local(count, cfg.local_alpha, &mut rng),
            AnomalyType::Global => sample_global(&inliers, count, &mut rng),
            AnomalyType::Clustered => {
                sample_clustered(&gmm, &inliers, count, cfg.cluster_offset, &mut rng)
            }
            AnomalyType::Dependency => sample_dependency(&inliers, count, &mut rng),
        };
        anomalies = anomalies.vstack(&block).expect("anomaly blocks share dim");
    }

    let x = inliers.vstack(&anomalies).expect("same dim");
    let mut labels = vec![0u8; cfg.n_inliers];
    labels.extend(std::iter::repeat_n(1u8, anomalies.rows()));

    // Shuffle rows deterministically.
    let mut order: Vec<usize> = (0..x.rows()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    let x = x.select_rows(&order);
    let labels: Vec<u8> = order.iter().map(|&i| labels[i]).collect();

    Dataset::new(name, x, labels, category)
}

/// Global anomalies: uniform over the inlier bounding box inflated by 20%
/// per side (ADBench samples from `Uniform(1.1·min, 1.1·max)`).
fn sample_global(inliers: &Matrix, n: usize, rng: &mut impl Rng) -> Matrix {
    let d = inliers.cols();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for row in inliers.row_iter() {
        for ((l, h), &v) in lo.iter_mut().zip(&mut hi).zip(row) {
            if v < *l {
                *l = v;
            }
            if v > *h {
                *h = v;
            }
        }
    }
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        let row = out.row_mut(r);
        for j in 0..d {
            let range = (hi[j] - lo[j]).max(1e-9);
            row[j] = rng.gen_range((lo[j] - 0.05 * range)..(hi[j] + 0.05 * range));
        }
    }
    out
}

/// Clustered anomalies: a few tight Gaussian blobs displaced from the
/// global inlier mean by `offset` times the inlier spread.
fn sample_clustered(
    gmm: &GaussianMixtureModel,
    inliers: &Matrix,
    n: usize,
    offset: f64,
    rng: &mut impl Rng,
) -> Matrix {
    let d = gmm.dim();
    let means = uadb_linalg::colstats::col_means(inliers);
    let vars = uadb_linalg::colstats::col_variances(inliers);
    let spread: f64 = (vars.iter().sum::<f64>() / d as f64).sqrt().max(1e-6);
    let n_blobs = 1 + (n > 10) as usize;
    let normal = rand_distr_standard_normal();
    let mut centers = Vec::with_capacity(n_blobs);
    for _ in 0..n_blobs {
        // Random unit direction scaled to `offset` spreads.
        let dir: Vec<f64> = (0..d).map(|_| normal.sample(rng)).collect();
        let norm = uadb_linalg::vecops::norm2(&dir).max(1e-12);
        let center: Vec<f64> =
            means.iter().zip(&dir).map(|(m, dv)| m + offset * spread * dv / norm).collect();
        centers.push(center);
    }
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        let c = &centers[r % n_blobs];
        let row = out.row_mut(r);
        for j in 0..d {
            row[j] = c[j] + 0.2 * spread * normal.sample(rng);
        }
    }
    out
}

/// Dependency anomalies: each feature drawn independently from the inlier
/// empirical marginal (bootstrap per column), destroying the joint
/// structure while keeping marginals realistic.
fn sample_dependency(inliers: &Matrix, n: usize, rng: &mut impl Rng) -> Matrix {
    let (m, d) = inliers.shape();
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        let row = out.row_mut(r);
        for (j, slot) in row.iter_mut().enumerate() {
            let pick = rng.gen_range(0..m);
            *slot = inliers.get(pick, j);
        }
    }
    out
}

/// Convenience: a 2-D dataset of one pure anomaly type, as used by the
/// paper's Fig. 5 (500 points, 10% anomalies).
///
/// Difficulty matches the paper's synthetic study: the anomalies overlap
/// or hug the inlier support, so even the best-suited detectors commit
/// a few dozen errors out of 500 (cf. the error counts in Fig. 5), which
/// is precisely the head-room the booster's correction works in.
pub fn fig5_dataset(ty: AnomalyType, seed: u64) -> Dataset {
    let cfg = SynthConfig {
        n_inliers: 450,
        n_anomalies: 50,
        dim: 2,
        n_clusters: 2,
        anomaly_mix: vec![(ty, 1.0)],
        local_alpha: 4.0,
        cluster_offset: 2.0,
        seed,
    };
    generate(format!("synthetic_{}", ty.name().to_lowercase()), "Synthetic", &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn gmm_sample_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let gmm = GaussianMixtureModel::random(3, 2, 3.0, &mut rng);
        assert_eq!(gmm.dim(), 3);
        assert_eq!(gmm.n_components(), 2);
        let x = gmm.sample(50, &mut rng);
        assert_eq!(x.shape(), (50, 3));
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn local_anomalies_have_larger_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let gmm = GaussianMixtureModel::random(2, 1, 0.0, &mut rng);
        let normal = gmm.sample(800, &mut rng);
        let local = gmm.sample_local(800, 6.0, &mut rng);
        let var_n: f64 = uadb_linalg::colstats::col_variances(&normal).iter().sum();
        let var_l: f64 = uadb_linalg::colstats::col_variances(&local).iter().sum();
        assert!(
            var_l > 3.0 * var_n,
            "local anomalies should be much more spread: {var_l} vs {var_n}"
        );
    }

    #[test]
    fn generate_respects_counts_and_shuffles() {
        let cfg = SynthConfig {
            n_inliers: 90,
            n_anomalies: 10,
            dim: 4,
            n_clusters: 2,
            anomaly_mix: vec![(AnomalyType::Global, 0.5), (AnomalyType::Clustered, 0.5)],
            ..SynthConfig::default()
        };
        let d = generate("t", "Test", &cfg);
        assert_eq!(d.n_samples(), 100);
        assert_eq!(d.n_anomalies(), 10);
        assert_eq!(d.n_features(), 4);
        // Anomalies must not all be at the tail (shuffled).
        let tail: usize = d.labels[90..].iter().map(|&l| l as usize).sum();
        assert!(tail < 10, "labels should be shuffled");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig { seed: 99, ..SynthConfig::default() };
        let a = generate("a", "Test", &cfg);
        let b = generate("b", "Test", &cfg);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        assert_eq!(a.labels, b.labels);
        let cfg2 = SynthConfig { seed: 100, ..SynthConfig::default() };
        let c = generate("c", "Test", &cfg2);
        assert_ne!(a.x.as_slice(), c.x.as_slice());
    }

    #[test]
    fn global_anomalies_reach_outside_inlier_box() {
        let d = fig5_dataset(AnomalyType::Global, 7);
        // Compute the inlier bounding box and verify some anomalies leave it.
        let mut in_lo = [f64::INFINITY; 2];
        let mut in_hi = [f64::NEG_INFINITY; 2];
        for (row, &l) in d.x.row_iter().zip(&d.labels) {
            if l == 0 {
                for j in 0..2 {
                    in_lo[j] = in_lo[j].min(row[j]);
                    in_hi[j] = in_hi[j].max(row[j]);
                }
            }
        }
        let outside = d
            .x
            .row_iter()
            .zip(&d.labels)
            .filter(|(row, &l)| l == 1 && (0..2).any(|j| row[j] < in_lo[j] || row[j] > in_hi[j]))
            .count();
        assert!(outside > 0, "some global anomalies must fall outside the box");
    }

    #[test]
    fn clustered_anomalies_are_compact_and_far() {
        let d = fig5_dataset(AnomalyType::Clustered, 3);
        let anoms: Vec<&[f64]> =
            d.x.row_iter().zip(&d.labels).filter(|(_, &l)| l == 1).map(|(r, _)| r).collect();
        let inliers: Vec<&[f64]> =
            d.x.row_iter().zip(&d.labels).filter(|(_, &l)| l == 0).map(|(r, _)| r).collect();
        let centroid = |rows: &[&[f64]]| {
            let mut c = [0.0; 2];
            for r in rows {
                c[0] += r[0];
                c[1] += r[1];
            }
            c.iter().map(|v| v / rows.len() as f64).collect::<Vec<f64>>()
        };
        let ci = centroid(&inliers);
        // Every clustered anomaly sits a multiple of the inlier spread away
        // from the inlier centroid (two blobs may straddle it, so test
        // per-point distance, not the blob centroid).
        let mean_dist: f64 =
            anoms.iter().map(|a| uadb_linalg::distance::euclidean(a, &ci)).sum::<f64>()
                / anoms.len() as f64;
        let inlier_mean_dist: f64 =
            inliers.iter().map(|a| uadb_linalg::distance::euclidean(a, &ci)).sum::<f64>()
                / inliers.len() as f64;
        assert!(
            mean_dist > 1.5 * inlier_mean_dist,
            "clustered anomalies should be displaced: {mean_dist} vs inlier {inlier_mean_dist}"
        );
    }

    #[test]
    fn dependency_anomalies_keep_marginal_range() {
        let d = fig5_dataset(AnomalyType::Dependency, 11);
        let mut in_lo = [f64::INFINITY; 2];
        let mut in_hi = [f64::NEG_INFINITY; 2];
        for (row, &l) in d.x.row_iter().zip(&d.labels) {
            if l == 0 {
                for j in 0..2 {
                    in_lo[j] = in_lo[j].min(row[j]);
                    in_hi[j] = in_hi[j].max(row[j]);
                }
            }
        }
        for (row, &l) in d.x.row_iter().zip(&d.labels) {
            if l == 1 {
                for j in 0..2 {
                    assert!(row[j] >= in_lo[j] - 1e-9 && row[j] <= in_hi[j] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn anomaly_type_names() {
        assert_eq!(AnomalyType::Local.name(), "Local");
        assert_eq!(AnomalyType::ALL.len(), 4);
    }
}
