//! Deterministic k-fold splitting.
//!
//! UADB trains 3 booster models in a 3-fold cross-validation manner
//! (paper §IV-A): each booster sees 2 of the 3 folds; inference averages
//! all 3 boosters.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/holdout split.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Row indices the model trains on.
    pub train: Vec<usize>,
    /// Row indices held out of training.
    pub holdout: Vec<usize>,
}

/// Produces `k` folds over `n` rows, shuffled with `seed`.
///
/// Every row appears in exactly one holdout; fold sizes differ by at most
/// one. `k` is clamped to `n` so tiny inputs still split cleanly; `k == 1`
/// degenerates to train == holdout == everything (no ensembling).
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    assert!(k >= 1, "k must be at least 1");
    if n == 0 {
        return vec![Fold { train: vec![], holdout: vec![] }];
    }
    let k = k.min(n);
    if k == 1 {
        let all: Vec<usize> = (0..n).collect();
        return vec![Fold { train: all.clone(), holdout: all }];
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    // Round-robin assignment keeps fold sizes within one of each other.
    let mut assignment = vec![0usize; n];
    for (pos, &row) in order.iter().enumerate() {
        assignment[row] = pos % k;
    }
    (0..k)
        .map(|f| {
            let mut train = Vec::with_capacity(n - n / k);
            let mut holdout = Vec::with_capacity(n / k + 1);
            for (row, &a) in assignment.iter().enumerate() {
                if a == f {
                    holdout.push(row);
                } else {
                    train.push(row);
                }
            }
            Fold { train, holdout }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_rows() {
        let folds = kfold(10, 3, 7);
        assert_eq!(folds.len(), 3);
        let mut seen = HashSet::new();
        for f in &folds {
            for &i in &f.holdout {
                assert!(seen.insert(i), "row {i} in two holdouts");
            }
            // train and holdout are disjoint and cover all rows
            let train: HashSet<_> = f.train.iter().collect();
            for i in &f.holdout {
                assert!(!train.contains(i));
            }
            assert_eq!(f.train.len() + f.holdout.len(), 10);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn fold_sizes_balanced() {
        let folds = kfold(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|f| f.holdout.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kfold(20, 3, 42);
        let b = kfold(20, 3, 42);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.train, fb.train);
            assert_eq!(fa.holdout, fb.holdout);
        }
        let c = kfold(20, 3, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.holdout != y.holdout));
    }

    #[test]
    fn k_clamped_to_n() {
        let folds = kfold(2, 5, 0);
        assert_eq!(folds.len(), 2);
    }

    #[test]
    fn single_fold_degenerates() {
        let folds = kfold(4, 1, 0);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].train, vec![0, 1, 2, 3]);
        assert_eq!(folds[0].holdout, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let folds = kfold(0, 3, 0);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
    }
}
