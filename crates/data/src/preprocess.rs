//! Feature scaling: min-max and z-score, fit/transform style.

use uadb_linalg::colstats::{col_means, col_variances};
use uadb_linalg::Matrix;

/// Min-max scaler fitted on one matrix and applicable to another — the
/// UADB pipeline normalises teacher scores and pseudo labels into `[0,1]`
/// with exactly this transform (Alg. 1 line 8).
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column minima and ranges.
    pub fn fit(x: &Matrix) -> Self {
        let (n, d) = x.shape();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        if n == 0 {
            return Self { mins: vec![0.0; d], ranges: vec![1.0; d] };
        }
        for row in x.row_iter() {
            for ((lo, hi), &v) in mins.iter_mut().zip(&mut maxs).zip(row) {
                if v < *lo {
                    *lo = v;
                }
                if v > *hi {
                    *hi = v;
                }
            }
        }
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 0.0 {
                    r
                } else {
                    1.0 // constant column maps to 0
                }
            })
            .collect();
        Self { mins, ranges }
    }

    /// Applies the learned transform.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &lo), &rg) in row.iter_mut().zip(&self.mins).zip(&self.ranges) {
                *v = (*v - lo) / rg;
            }
        }
        out
    }
}

/// Min-max scales a single score vector into `[0,1]`.
///
/// A constant vector maps to all zeros (matching sklearn's
/// `MinMaxScaler` behaviour of `(x - min) / 1` when the range is zero
/// after its guard — every entry becomes 0).
pub fn minmax_vec(v: &[f64]) -> Vec<f64> {
    match uadb_linalg::vecops::min_max(v) {
        None => vec![],
        Some((lo, hi)) => {
            let range = hi - lo;
            if range <= 0.0 {
                return vec![0.0; v.len()];
            }
            v.iter().map(|x| (x - lo) / range).collect()
        }
    }
}

/// Z-score standardiser with persistable fitted constants.
///
/// ADBench standardises features before fitting any detector; a deployed
/// model must replay the *training-time* means/stds on every request —
/// re-fitting on a request batch would shift each row's coordinates with
/// its batch-mates (a 1-row batch would collapse to all zeros). The
/// accessors and [`Standardizer::from_parts`] exist so `uadb-serve` can
/// write the constants into its model file and rebuild the transform at
/// load time.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns per-column means and standard deviations; constant columns
    /// get `std = 1` so they map to zero.
    pub fn fit(x: &Matrix) -> Self {
        let means = col_means(x);
        let stds = col_variances(x).iter().map(|v| if *v > 0.0 { v.sqrt() } else { 1.0 }).collect();
        Self { means, stds }
    }

    /// Rebuilds a standardiser from persisted constants.
    ///
    /// # Panics
    /// If the vectors differ in length or any std is not positive.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        assert!(stds.iter().all(|s| *s > 0.0 && s.is_finite()), "stds must be positive and finite");
        Self { means, stds }
    }

    /// Applies the learned transform to a matrix with the fitted column
    /// count.
    ///
    /// # Panics
    /// If `x` has a different number of columns than the fit data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = Vec::new();
        self.transform_rows_into(x, 0, x.rows(), &mut out);
        Matrix::from_vec(x.rows(), x.cols(), out).expect("shape preserved by transform")
    }

    /// Standardises the row range `lo..hi` of `x` into a caller-owned
    /// buffer (cleared, then filled row-major) — the allocation-free
    /// form serving workers use to score borrowed shard ranges without
    /// copying the batch. Values are bit-identical to
    /// [`Standardizer::transform`] on the same rows.
    ///
    /// # Panics
    /// If `x` has a different number of columns than the fit data, or
    /// the range is out of bounds.
    pub fn transform_rows_into(&self, x: &Matrix, lo: usize, hi: usize, out: &mut Vec<f64>) {
        assert_eq!(x.cols(), self.means.len(), "column count differs from fit data");
        assert!(lo <= hi && hi <= x.rows(), "row range {lo}..{hi} out of bounds");
        out.clear();
        out.reserve((hi - lo) * x.cols());
        for r in lo..hi {
            for ((&v, &m), &s) in x.row(r).iter().zip(&self.means).zip(&self.stds) {
                out.push((v - m) / s);
            }
        }
    }

    /// Number of columns the transform expects.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (1 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Z-score standardisation per column; constant columns become zero.
///
/// One-shot form of [`Standardizer`]: fits and transforms the same
/// matrix, discarding the constants.
pub fn zscore(x: &Matrix) -> Matrix {
    Standardizer::fit(x).transform(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_scaler_maps_to_unit_interval() {
        let x = Matrix::from_vec(3, 2, vec![0.0, 10.0, 5.0, 20.0, 10.0, 30.0]).unwrap();
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.col(0), vec![0.0, 0.5, 1.0]);
        assert_eq!(t.col(1), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn minmax_scaler_handles_constant_column() {
        let x = Matrix::from_vec(2, 1, vec![7.0, 7.0]).unwrap();
        let s = MinMaxScaler::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.col(0), vec![0.0, 0.0]);
    }

    #[test]
    fn minmax_scaler_applies_to_new_data() {
        let train = Matrix::from_vec(2, 1, vec![0.0, 10.0]).unwrap();
        let s = MinMaxScaler::fit(&train);
        let test = Matrix::from_vec(2, 1, vec![5.0, 20.0]).unwrap();
        let t = s.transform(&test);
        assert_eq!(t.col(0), vec![0.5, 2.0]); // extrapolation allowed
    }

    #[test]
    fn minmax_vec_basic_and_degenerate() {
        assert_eq!(minmax_vec(&[1.0, 3.0, 2.0]), vec![0.0, 1.0, 0.5]);
        assert_eq!(minmax_vec(&[4.0, 4.0]), vec![0.0, 0.0]);
        assert_eq!(minmax_vec(&[]), Vec::<f64>::new());
    }

    #[test]
    fn minmax_vec_preserves_order() {
        let v = vec![0.3, -2.0, 9.0, 0.0];
        let s = minmax_vec(&v);
        for i in 0..v.len() {
            for j in 0..v.len() {
                assert_eq!(v[i] < v[j], s[i] < s[j]);
            }
        }
    }

    #[test]
    fn standardizer_round_trips_through_parts() {
        let x = Matrix::from_vec(4, 2, vec![2.0, 7.0, 4.0, 7.0, 6.0, 7.0, 8.0, 7.0]).unwrap();
        let s = Standardizer::fit(&x);
        let rebuilt = Standardizer::from_parts(s.means().to_vec(), s.stds().to_vec());
        assert_eq!(rebuilt, s);
        assert_eq!(s.transform(&x).as_slice(), rebuilt.transform(&x).as_slice());
        assert_eq!(s.n_features(), 2);
        // Constant column: mean 7, std snapped to 1 -> transforms to 0.
        assert_eq!(s.stds()[1], 1.0);
        assert!(s.transform(&x).col(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn standardizer_applies_train_constants_to_single_row() {
        // The serving property: one row standardised alone must match the
        // same row inside the training batch.
        let train = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let s = Standardizer::fit(&train);
        let full = s.transform(&train);
        let single = s.transform(&Matrix::from_vec(1, 1, vec![2.0]).unwrap());
        assert_eq!(single.get(0, 0), full.get(1, 0));
    }

    #[test]
    fn transform_rows_into_matches_transform() {
        let x = Matrix::from_vec(4, 2, vec![2.0, 7.0, 4.0, 9.0, 6.0, 5.0, 8.0, 3.0]).unwrap();
        let s = Standardizer::fit(&x);
        let full = s.transform(&x);
        let mut buf = vec![99.0; 3]; // cleared and reused
        s.transform_rows_into(&x, 1, 3, &mut buf);
        assert_eq!(buf.len(), 2 * 2);
        for (got, want) in buf.iter().zip(&full.as_slice()[2..6]) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // Empty range clears the buffer.
        s.transform_rows_into(&x, 2, 2, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn standardizer_rejects_wrong_width() {
        let s = Standardizer::fit(&Matrix::filled(2, 2, 1.0));
        let _ = s.transform(&Matrix::filled(2, 3, 1.0));
    }

    #[test]
    fn zscore_standardises() {
        let x = Matrix::from_vec(4, 1, vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let z = zscore(&x);
        let col = z.col(0);
        let mean = col.iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_column_is_zero() {
        let x = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]).unwrap();
        let z = zscore(&x);
        assert!(z.col(0).iter().all(|&v| v == 0.0));
    }
}
