//! The labelled dataset container used across the workspace.

use uadb_linalg::Matrix;

/// A tabular anomaly-detection dataset.
///
/// Ground-truth labels are carried for **evaluation only** — exactly as in
/// the paper, no training stage ever reads them.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (roster entries keep the paper's `NN_name` form).
    pub name: String,
    /// Feature matrix, rows are samples.
    pub x: Matrix,
    /// Ground-truth labels: `1` = anomaly, `0` = inlier.
    pub labels: Vec<u8>,
    /// Application-domain category from Table III (e.g. `"Healthcare"`).
    pub category: &'static str,
}

impl Dataset {
    /// Creates a dataset, checking that labels align with rows.
    ///
    /// # Panics
    /// If `labels.len() != x.rows()` — constructing a misaligned dataset
    /// is a programming error, not a recoverable condition.
    pub fn new(
        name: impl Into<String>,
        x: Matrix,
        labels: Vec<u8>,
        category: &'static str,
    ) -> Self {
        assert_eq!(labels.len(), x.rows(), "label count must match sample count");
        Self { name: name.into(), x, labels, category }
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of ground-truth anomalies.
    pub fn n_anomalies(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1).count()
    }

    /// Anomaly ratio in percent, as reported in Table III.
    pub fn anomaly_pct(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        100.0 * self.n_anomalies() as f64 / self.labels.len() as f64
    }

    /// Ground-truth labels as `f64` (1.0 anomaly / 0.0 inlier), the form
    /// the metric functions consume.
    pub fn labels_f64(&self) -> Vec<f64> {
        self.labels.iter().map(|&l| l as f64).collect()
    }

    /// Returns a copy with z-score standardised features, the
    /// preprocessing ADBench applies before fitting any detector.
    pub fn standardized(&self) -> Dataset {
        let x = crate::preprocess::zscore(&self.x);
        Dataset { name: self.name.clone(), x, labels: self.labels.clone(), category: self.category }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 9.0, 9.0]).unwrap();
        Dataset::new("toy", x, vec![0, 0, 0, 1], "Test")
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.n_samples(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_anomalies(), 1);
        assert!((d.anomaly_pct() - 25.0).abs() < 1e-12);
        assert_eq!(d.labels_f64(), vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn misaligned_labels_panic() {
        let x = Matrix::zeros(3, 2);
        let _ = Dataset::new("bad", x, vec![0, 1], "Test");
    }

    #[test]
    fn standardized_has_zero_mean_unit_var() {
        let d = toy().standardized();
        let col: Vec<f64> = d.x.col(0);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-12);
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_pct_is_zero() {
        let d = Dataset::new("empty", Matrix::zeros(0, 3), vec![], "Test");
        assert_eq!(d.anomaly_pct(), 0.0);
    }
}
