//! Datasets for the UADB reproduction.
//!
//! The paper evaluates on 84 real tabular datasets from the ADBench
//! benchmark (its Table III). Those datasets are not redistributable
//! here, so this crate provides the documented substitution (DESIGN.md §2):
//! a deterministic **simulated suite** with one dataset per roster entry,
//! reproducing each entry's anomaly ratio and category, with anomalies
//! drawn from the four canonical ADBench anomaly types the paper itself
//! uses for its synthetic study (Fig. 5):
//!
//! * **local** — same cluster means, inflated covariance,
//! * **global** — uniform over an inflated bounding box,
//! * **clustered** — tight off-manifold clusters,
//! * **dependency** — marginals preserved, joint structure broken.
//!
//! Modules:
//! * [`dataset`] — the labelled `Dataset` container,
//! * [`synth`] — the four generators plus Gaussian-mixture inlier bases,
//! * [`suite`] — the 84-entry roster of Table III and suite generation,
//! * [`preprocess`] — min-max / z-score scalers,
//! * [`splits`] — deterministic k-fold splitting (UADB's 3-fold ensemble).

pub mod dataset;
pub mod io;
pub mod preprocess;
pub mod splits;
pub mod suite;
pub mod synth;

pub use dataset::Dataset;
pub use preprocess::Standardizer;
pub use suite::{RosterEntry, SuiteScale, ROSTER};
pub use synth::AnomalyType;
