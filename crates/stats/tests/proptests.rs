//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use uadb_stats::normal::{normal_cdf, normal_sf};
use uadb_stats::{quantile, wilcoxon_signed_rank, BoxplotStats};

proptest! {
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-100.0..100.0f64, 2..60)) {
        let q25 = quantile(&values, 0.25).unwrap();
        let q50 = quantile(&values, 0.50).unwrap();
        let q75 = quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
    }

    #[test]
    fn quantile_bounded_by_extremes(values in prop::collection::vec(-100.0..100.0f64, 1..60), q in 0.0..1.0f64) {
        let v = quantile(&values, q).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn boxplot_invariants(values in prop::collection::vec(-100.0..100.0f64, 4..80)) {
        let b = BoxplotStats::from_values(&values).unwrap();
        prop_assert!(b.whisker_lo <= b.q1 + 1e-12);
        prop_assert!(b.q1 <= b.median + 1e-12);
        prop_assert!(b.median <= b.q3 + 1e-12);
        prop_assert!(b.q3 <= b.whisker_hi + 1e-12);
        prop_assert!(b.n_outliers <= values.len());
    }

    #[test]
    fn wilcoxon_p_in_unit_interval(
        x in prop::collection::vec(-10.0..10.0f64, 6..40),
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.9 + 0.05).collect();
        if let Some(r) = wilcoxon_signed_rank(&x, &y) {
            prop_assert!(r.p_value > 0.0 && r.p_value <= 1.0);
            prop_assert!(r.statistic >= 0.0);
            prop_assert!(r.n_used <= x.len());
        }
    }

    #[test]
    fn wilcoxon_symmetric_in_arguments(
        x in prop::collection::vec(-10.0..10.0f64, 6..40),
        shift in 0.1..2.0f64,
    ) {
        // Swapping the paired samples must keep statistic and p identical
        // (two-sided test).
        let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| v + shift * ((i % 3) as f64 - 1.0)).collect();
        let a = wilcoxon_signed_rank(&x, &y);
        let b = wilcoxon_signed_rank(&y, &x);
        match (a, b) {
            (Some(ra), Some(rb)) => {
                prop_assert!((ra.statistic - rb.statistic).abs() < 1e-9);
                prop_assert!((ra.p_value - rb.p_value).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one direction returned None"),
        }
    }

    #[test]
    fn larger_shifts_give_smaller_p(base in prop::collection::vec(-5.0..5.0f64, 20..40)) {
        // A consistent positive shift should be at least as significant
        // as a mixed-sign perturbation of the same magnitude.
        let consistent: Vec<f64> = base.iter().map(|v| v + 1.0).collect();
        let mixed: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| if i % 2 == 0 { v + 1.0 } else { v - 1.0 })
            .collect();
        let p_consistent = wilcoxon_signed_rank(&consistent, &base).unwrap().p_value;
        let p_mixed = wilcoxon_signed_rank(&mixed, &base).unwrap().p_value;
        prop_assert!(p_consistent <= p_mixed + 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(a in -6.0..6.0f64, b in -6.0..6.0f64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!(normal_sf(lo) >= normal_sf(hi) - 1e-12);
    }
}
