//! Two-sided Wilcoxon signed-rank test.
//!
//! Matches `scipy.stats.wilcoxon(x, y, zero_method="wilcox",
//! correction=False, mode="approx")`: zero differences are dropped, ties
//! receive average ranks, and the p-value uses the normal approximation
//! with tie-corrected variance — appropriate for the paper's n = 84
//! paired samples.

use crate::normal::normal_sf;

/// Test outcome.
#[derive(Debug, Clone, Copy)]
pub struct WilcoxonResult {
    /// The statistic `min(W+, W-)`.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Pairs remaining after zero-difference removal.
    pub n_used: usize,
}

/// Runs the test on paired samples.
///
/// Returns `None` when fewer than one non-zero difference remains (the
/// test is undefined); callers print `n/a` in that case.
///
/// # Panics
/// If input lengths differ.
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> Option<WilcoxonResult> {
    assert_eq!(x.len(), y.len(), "paired samples must align");
    let diffs: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return None;
    }
    // Rank |d| with average ranks.
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| abs[a].partial_cmp(&abs[b]).unwrap());
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && abs[idx[j + 1]] == abs[idx[i]] {
            j += 1;
        }
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs.iter().zip(&ranks).filter(|(d, _)| **d > 0.0).map(|(_, r)| r).sum();
    let total = (n * (n + 1)) as f64 / 2.0;
    let w_minus = total - w_plus;
    let statistic = w_plus.min(w_minus);

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        // All differences identical in magnitude and sign pattern trivial.
        return Some(WilcoxonResult { statistic, p_value: 1.0, n_used: n });
    }
    let z = (statistic - mean) / var.sqrt();
    // statistic <= mean by construction, so z <= 0; two-sided p.
    let p = (2.0 * normal_sf(-z)).min(1.0);
    Some(WilcoxonResult { statistic, p_value: p, n_used: n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scipy_reference_case() {
        // scipy.stats.wilcoxon(d, mode="approx", correction=False):
        // d = [6, 8, 14, 16, 23, 24, 28, 29, 41, -48, 49, 56, 60, -67, 75]
        // statistic = 24.0 (W- = rank(48)+rank(67) = 10+14),
        // p ≈ 0.0409 (the exact-mode value is 0.0413).
        let x: Vec<f64> = vec![
            6.0, 8.0, 14.0, 16.0, 23.0, 24.0, 28.0, 29.0, 41.0, -48.0, 49.0, 56.0, 60.0, -67.0,
            75.0,
        ];
        let y = vec![0.0; 15];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!((r.statistic - 24.0).abs() < 1e-12);
        assert!((r.p_value - 0.04089).abs() < 1e-4, "p={}", r.p_value);
        assert_eq!(r.n_used, 15);
    }

    #[test]
    fn consistent_improvement_gives_small_p() {
        // 84 paired values where x > y everywhere by a varying margin —
        // the strongest possible one-sided evidence; p ≈ 2.9e-15 region.
        let x: Vec<f64> = (0..84).map(|i| 0.7 + 0.001 * (i % 13) as f64).collect();
        let y: Vec<f64> = (0..84).map(|i| 0.65 + 0.0005 * (i % 7) as f64).collect();
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(r.p_value < 1e-10, "p={}", r.p_value);
    }

    #[test]
    fn symmetric_differences_give_large_p() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn zero_differences_dropped() {
        let x = vec![1.0, 2.0, 3.0, 5.0];
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert_eq!(r.n_used, 1);
    }

    #[test]
    fn all_equal_returns_none() {
        let x = vec![1.0, 2.0];
        assert!(wilcoxon_signed_rank(&x, &x).is_none());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_ranks() {
        // Differences: +1, +1, -1 -> |d| all tied, ranks all 2.
        // W+ = 4, W- = 2, statistic = 2.
        let x = vec![1.0, 1.0, 0.0];
        let y = vec![0.0, 0.0, 1.0];
        let r = wilcoxon_signed_rank(&x, &y).unwrap();
        assert!((r.statistic - 2.0).abs() < 1e-12);
    }
}
