//! Standard-normal tail probabilities with tail-accurate `erfc`.
//!
//! The Wilcoxon p-values in the paper's Table IV go down to ~1e-11, so a
//! fixed-absolute-error erf approximation is not enough; this module uses
//! the Chebyshev-fitted `erfc` of Numerical Recipes (fractional error
//! < 1.2e-7 everywhere, including the far tail).

/// Complementary error function with bounded *relative* error.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes "erfcc": Chebyshev polynomial in t.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard-normal survival function `P(Z > z)`.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Standard-normal CDF `P(Z <= z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        // erfc(0) = 1, erfc(1) ≈ 0.15729920705, erfc(2) ≈ 0.00467773498
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-7);
        assert!((erfc(2.0) - 0.004677734981063127).abs() < 1e-8);
        // Symmetry: erfc(-x) = 2 - erfc(x)
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
    }

    #[test]
    fn tail_relative_accuracy() {
        // erfc(5) ≈ 1.5374597944280349e-12 — relative error must hold.
        let v = erfc(5.0);
        let reference = 1.537_459_794_428_035e-12;
        assert!((v - reference).abs() / reference < 1e-5, "got {v}");
    }

    #[test]
    fn normal_tail_values() {
        // P(Z > 1.96) ≈ 0.0249979
        assert!((normal_sf(1.96) - 0.024997895).abs() < 1e-6);
        // P(Z > 6) ≈ 9.8659e-10
        let p = normal_sf(6.0);
        assert!((p - 9.865876450377018e-10).abs() / p < 1e-4);
    }

    #[test]
    fn cdf_sf_complement() {
        // At z = 0 both terms take the same erfc branch, so the complement
        // identity holds only up to the polynomial's 1.2e-7 fractional
        // error; everywhere else the symmetry makes it exact.
        for z in [-3.0, -1.0, 0.0, 0.5, 2.5] {
            assert!((normal_cdf(z) + normal_sf(z) - 1.0).abs() < 2e-7);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
    }
}
