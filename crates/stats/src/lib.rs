//! Statistical machinery for the UADB reproduction.
//!
//! Table IV reports Wilcoxon signed-rank p-values over the 84 datasets;
//! Figs. 6 and 10 report boxplots; Fig. 9 tracks average ranks. All of
//! that lives here, built from scratch (no SciPy equivalent exists in the
//! Rust ecosystem at this fidelity).

pub mod normal;
pub mod summary;
pub mod wilcoxon;

pub use summary::{quantile, BoxplotStats};
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
