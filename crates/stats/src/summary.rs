//! Distribution summaries: quantiles and boxplot five-number statistics
//! (Figs. 6 and 10 of the paper are boxplots over the 84 datasets).

/// Linear-interpolation quantile (NumPy's default `linear` method).
///
/// `q` must be in `[0, 1]`. Returns `None` on empty input.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number summary plus mean, in Matplotlib boxplot convention
/// (whiskers at 1.5 IQR, clipped to data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotStats {
    /// Lower whisker (smallest point ≥ Q1 − 1.5·IQR).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest point ≤ Q3 + 1.5·IQR).
    pub whisker_hi: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Points outside the whiskers.
    pub n_outliers: usize,
}

impl BoxplotStats {
    /// Computes the summary; `None` on empty input.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let q1 = quantile(values, 0.25)?;
        let median = quantile(values, 0.5)?;
        let q3 = quantile(values, 0.75)?;
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers reach the most extreme point inside the fence but never
        // retreat past the box edge (Matplotlib behaviour when every point
        // beyond a quartile is an outlier).
        let whisker_lo =
            values.iter().copied().filter(|v| *v >= lo_fence).fold(f64::INFINITY, f64::min).min(q1);
        let whisker_hi = values
            .iter()
            .copied()
            .filter(|v| *v <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(q3);
        let n_outliers = values.iter().filter(|v| **v < lo_fence || **v > hi_fence).count();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Some(Self { whisker_lo, q1, median, q3, whisker_hi, mean, n_outliers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_reference_values() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        assert_eq!(quantile(&v, 0.25), Some(1.75));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn boxplot_summary_basic() {
        let v: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        let b = BoxplotStats::from_values(&v).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
        assert_eq!(b.n_outliers, 0);
        assert!((b.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut v: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        v.push(100.0);
        let b = BoxplotStats::from_values(&v).unwrap();
        assert_eq!(b.n_outliers, 1);
        assert!(b.whisker_hi <= 11.0 + 1e-12);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(BoxplotStats::from_values(&[]).is_none());
    }
}
