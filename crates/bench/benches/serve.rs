//! End-to-end serving-plane benchmark: an in-process server driven by
//! raw-TCP clients, timing full request/response roundtrips across the
//! wire-format × batch-size × shard-count grid.
//!
//! * `json_rows{R}_shards{S}` / `binary_rows{R}_shards{S}` — one
//!   keep-alive connection scoring R-row batches as JSON vs the binary
//!   `application/x-uadb-rows` payload. The binary-vs-JSON pair at
//!   8192 rows is the `bench_gate` invariant: decimal float text must
//!   never be the fast path again.
//! * `healthz_shards{S}` — a cheap endpoint hammered by 8 concurrent
//!   persistent connections, the reactor-sharding scaling case (shard
//!   counts only separate on multi-core runners).
//!
//! Environment knobs:
//! * `UADB_BENCH_SMOKE=1` — 3 samples per case (CI smoke mode);
//! * `UADB_BENCH_SHARDS=1,2` — pin the shard-count list (default:
//!   1, min(4, cores), cores, deduplicated);
//! * `UADB_BENCH_JSON=path` — where to write the machine-readable
//!   summary (default: `<workspace>/BENCH_serve.json`).

use criterion::{black_box, criterion_group, Criterion};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{IoMode, ModelRegistry, Server, ServerConfig, ServerHandle};

fn samples() -> usize {
    if std::env::var("UADB_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        3
    } else {
        30
    }
}

/// Shard counts to bench: `UADB_BENCH_SHARDS` (comma-separated) or
/// {1, min(4, cores), cores} deduplicated. Only the epoll backend
/// shards, so non-Linux hosts run the 1-shard column only.
fn shard_counts() -> Vec<usize> {
    if let Ok(list) = std::env::var("UADB_BENCH_SHARDS") {
        return list
            .split(',')
            .map(|s| s.trim().parse().expect("UADB_BENCH_SHARDS: comma-separated integers"))
            .collect();
    }
    if !cfg!(target_os = "linux") {
        return vec![1];
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, cores.min(4), cores];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// A batch of `rows` scoring rows cycled out of the fig5 dataset.
fn batch(x: &Matrix, rows: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows * x.cols());
    for r in 0..rows {
        data.extend_from_slice(x.row(r % x.rows()));
    }
    Matrix::from_vec(rows, x.cols(), data).expect("shape matches data")
}

/// Serializes a keep-alive JSON `POST /score` request for the batch.
fn json_request(batch: &Matrix) -> Vec<u8> {
    let rows: Vec<Value> = (0..batch.rows()).map(|r| json::number_array(batch.row(r))).collect();
    let body = json::to_string(&json::object([("rows", Value::Array(rows))]));
    format!(
        "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Connection: keep-alive\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Serializes the same request as the binary f64 rows payload.
fn binary_request(batch: &Matrix) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + batch.rows() * batch.cols() * 8);
    body.extend_from_slice(b"UROW");
    body.push(1); // version
    body.push(2); // dtype f64
    body.extend_from_slice(&0u16.to_le_bytes());
    body.extend_from_slice(&(batch.rows() as u32).to_le_bytes());
    body.extend_from_slice(&(batch.cols() as u32).to_le_bytes());
    for r in 0..batch.rows() {
        for v in batch.row(r) {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut wire = format!(
        "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/x-uadb-rows\r\n\
         Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    wire.extend_from_slice(&body);
    wire
}

const HEALTHZ: &[u8] =
    b"GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n\r\n";

/// One request/response roundtrip on a persistent connection; returns
/// the response body length. Panics on non-200 so a broken setup can
/// never masquerade as a fast one.
fn roundtrip(reader: &mut BufReader<TcpStream>, request: &[u8]) -> usize {
    reader.get_mut().write_all(request).expect("send request");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status line");
    assert!(
        status_line.starts_with("HTTP/1.1 200 "),
        "expected 200, got {status_line:?} (request head: {:?})",
        String::from_utf8_lossy(&request[..60.min(request.len())])
    );
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric Content-Length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    body.len()
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    stream.set_nodelay(true).ok();
    BufReader::new(stream)
}

fn spawn_server(model: &Arc<ServedModel>, shards: usize) -> ServerHandle {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("default", Arc::clone(model), PoolConfig { workers: 2, shard_rows: 1024 })
        .unwrap();
    let config = ServerConfig {
        max_connections: 64,
        max_requests_per_conn: 1_000_000,
        idle_timeout: Duration::from_secs(60),
        io_timeout: Duration::from_secs(30),
        io: IoMode::default_for_host(),
        shards,
    };
    Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap()
}

/// Concurrent connections hammering the cheap endpoint per sample.
const HEALTHZ_CONNS: usize = 8;
/// Roundtrips each connection performs per timed sample.
const HEALTHZ_REQS: usize = 16;

fn bench(c: &mut Criterion) {
    let sample_size = samples();
    let data = fig5_dataset(AnomalyType::Clustered, 42);
    let model = Arc::new(
        ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(42)).unwrap(),
    );

    let batches: Vec<(usize, Matrix)> =
        [1usize, 256, 8192].into_iter().map(|r| (r, batch(&data.x, r))).collect();

    let mut g = c.benchmark_group("serve");
    g.sample_size(sample_size);
    for shards in shard_counts() {
        let handle = spawn_server(&model, shards);
        let addr = handle.addr();

        for (rows, batch) in &batches {
            let json_wire = json_request(batch);
            let binary_wire = binary_request(batch);
            let mut conn = connect(addr);
            // Warm each path once so the timed region is steady state.
            roundtrip(&mut conn, &json_wire);
            roundtrip(&mut conn, &binary_wire);
            g.bench_function(format!("json_rows{rows}_shards{shards}"), |bch| {
                bch.iter(|| black_box(roundtrip(&mut conn, &json_wire)))
            });
            g.bench_function(format!("binary_rows{rows}_shards{shards}"), |bch| {
                bch.iter(|| black_box(roundtrip(&mut conn, &binary_wire)))
            });
        }

        // The shard-scaling case: 8 persistent connections issue 16
        // cheap roundtrips each per sample. On a multi-core runner the
        // kernel spreads them over the shards' REUSEPORT listeners.
        let mut conns: Vec<BufReader<TcpStream>> =
            (0..HEALTHZ_CONNS).map(|_| connect(addr)).collect();
        for conn in &mut conns {
            roundtrip(conn, HEALTHZ);
        }
        g.bench_function(format!("healthz_shards{shards}"), |bch| {
            bch.iter(|| {
                std::thread::scope(|s| {
                    for conn in conns.iter_mut() {
                        s.spawn(move || {
                            for _ in 0..HEALTHZ_REQS {
                                roundtrip(conn, HEALTHZ);
                            }
                        });
                    }
                });
                black_box(HEALTHZ_CONNS * HEALTHZ_REQS)
            })
        });

        drop(conns);
        handle.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);

/// JSON escape for benchmark names (they are ASCII identifiers, but be
/// strict anyway).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Custom main (instead of `criterion_main!`): runs the grid, then
/// persists every recorded timing as `BENCH_serve.json` so the serving
/// plane's perf trajectory is tracked across PRs.
fn main() {
    benches();
    let results = criterion::take_results();
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"serve\",\n  \"unix_time\": {epoch_secs},\n"));
    json.push_str(&format!("  \"smoke\": {},\n  \"results\": [\n", samples() == 3));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {:.0}, \
             \"mean_ns\": {:.0}, \"samples\": {}}}{}\n",
            esc(&r.group),
            esc(&r.name),
            r.min_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("UADB_BENCH_JSON").unwrap_or_else(|_| {
        // Bench binaries run with the package as cwd; anchor the file
        // at the workspace root regardless.
        format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"))
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
