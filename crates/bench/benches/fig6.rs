//! Fig. 6: UADB improvement on the datasets where the variance evidence
//! fails.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;
use uadb_stats::BoxplotStats;

fn bench(c: &mut Criterion) {
    let cfg = setup::experiment_config();
    experiments::fig6(&DetectorKind::ALL, &cfg);

    let mut g = c.benchmark_group("fig6");
    g.sample_size(50);
    let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 100.0).collect();
    g.bench_function("boxplot_stats", |b| b.iter(|| BoxplotStats::from_values(&values)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
