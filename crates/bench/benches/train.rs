//! Training-loop benchmarks: the legacy `forward_cached` +
//! `backward_and_step` loop against the zero-allocation `TrainScratch`
//! engine, serial and data-parallel.
//!
//! `legacy_b256` reconstructs the pre-scratch training loop verbatim
//! (per-chunk `select_rows`, per-batch grad matrix, cache cloning the
//! batch) from the still-public `forward_cached`/`backward_and_step`
//! API; the other cases run the shipping `train_regression` at 1/2/4
//! workers. Before timing anything, `main` asserts all four paths land
//! on bit-identical weights — the determinism contract the parallel
//! decomposition guarantees for any `--train-workers` value.
//!
//! Environment knobs:
//! * `UADB_BENCH_SMOKE=1` — 3 samples per case (CI smoke mode);
//! * `UADB_BENCH_JSON=path` — where to write the machine-readable
//!   summary (default: `<workspace>/BENCH_train.json`).

use criterion::{black_box, criterion_group, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use uadb_linalg::Matrix;
use uadb_nn::{train_regression, Activation, Mlp, MlpConfig, TrainConfig};

/// Deterministic pseudo-random fill (no timing entropy; xorshift64*).
fn filled_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn samples() -> usize {
    if std::env::var("UADB_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        3
    } else {
        30
    }
}

/// The §IV-A booster shape at a 32-feature dataset.
fn booster(seed: u64) -> Mlp {
    Mlp::new(&MlpConfig {
        input_dim: 32,
        hidden: vec![128, 128],
        output_dim: 1,
        activation: Activation::Sigmoid,
        seed,
    })
}

fn targets_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 13 + 5) % 97) as f64 / 96.0).collect()
}

/// The historic training loop, reconstructed from the public API: one
/// `select_rows` allocation per chunk, a fresh grad matrix per batch,
/// and the allocating `forward_cached` path. Same shuffle stream as
/// `train_regression`, so weights stay comparable bit-for-bit.
fn legacy_train_regression(mlp: &mut Mlp, x: &Matrix, targets: &[f64], cfg: &TrainConfig) {
    let n = x.rows();
    let batch = cfg.batch_size.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let cache = mlp.forward_cached(&xb);
            let b = chunk.len() as f64;
            let mut grad = Matrix::zeros(chunk.len(), 1);
            for (row, (&idx, g)) in chunk.iter().zip(grad.as_mut_slice().iter_mut()).enumerate() {
                let o = cache.output().get(row, 0);
                *g = 2.0 * (o - targets[idx]) / b;
            }
            mlp.backward_and_step(&cache, &grad, &cfg.adam);
        }
    }
}

fn weight_bits(mlp: &Mlp) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in mlp.layers() {
        bits.extend(l.weights().as_slice().iter().map(|v| v.to_bits()));
        bits.extend(l.bias().iter().map(|v| v.to_bits()));
    }
    bits
}

/// Refuses to time anything if the scratch/parallel paths do not land
/// on exactly the legacy loop's weights (ragged 300/64 split included).
fn assert_bit_identity() {
    let x = filled_matrix(300, 32, 23);
    let t = targets_for(300);
    let cfg = TrainConfig { batch_size: 64, epochs: 2, shuffle_seed: 9, ..TrainConfig::default() };
    let mut reference = booster(3);
    legacy_train_regression(&mut reference, &x, &t, &cfg);
    let want = weight_bits(&reference);
    for workers in [1usize, 2, 4] {
        let mut mlp = booster(3);
        let cfg = TrainConfig { workers, ..cfg.clone() };
        train_regression(&mut mlp, &x, &t, &cfg);
        assert_eq!(weight_bits(&mlp), want, "workers={workers} diverged from the legacy loop");
    }
    println!("bit-identity: legacy == scratch == parallel(2) == parallel(4)");
}

fn bench(c: &mut Criterion) {
    let sample_size = samples();

    // One epoch over 1024 rows at the paper's batch 256 per sample; each
    // case trains its own persistent network so Adam state and the
    // scratch/pack reuse stay warm across samples (the steady state the
    // zero-allocation claim is about).
    let n = 1024usize;
    let x = filled_matrix(n, 32, 41);
    let t = targets_for(n);
    let base =
        TrainConfig { batch_size: 256, epochs: 1, shuffle_seed: 17, ..TrainConfig::default() };

    let mut g = c.benchmark_group("train");
    g.sample_size(sample_size);

    let mut legacy_mlp = booster(7);
    let legacy_cfg = base.clone();
    g.bench_function("legacy_b256", |bch| {
        bch.iter(|| {
            legacy_train_regression(&mut legacy_mlp, &x, &t, &legacy_cfg);
            black_box(legacy_mlp.layer(0).bias()[0])
        })
    });

    for workers in [1usize, 2, 4] {
        let mut mlp = booster(7);
        let cfg = TrainConfig { workers, ..base.clone() };
        let name = if workers == 1 {
            "scratch_b256".to_string()
        } else {
            format!("parallel{workers}_b256")
        };
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(train_regression(&mut mlp, &x, &t, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

/// JSON escape for benchmark names (they are ASCII identifiers, but be
/// strict anyway).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Custom main: proves the determinism contract, runs the groups, then
/// persists every recorded timing as `BENCH_train.json` so the training
/// perf trajectory is tracked across PRs.
fn main() {
    assert_bit_identity();
    benches();
    let results = criterion::take_results();
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"train\",\n  \"unix_time\": {epoch_secs},\n"));
    json.push_str(&format!("  \"smoke\": {},\n  \"results\": [\n", samples() == 3));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {:.0}, \
             \"mean_ns\": {:.0}, \"samples\": {}}}{}\n",
            esc(&r.group),
            esc(&r.name),
            r.min_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("UADB_BENCH_JSON").unwrap_or_else(|_| {
        // Bench binaries run with the package as cwd; anchor the file
        // at the workspace root regardless.
        format!("{}/../../BENCH_train.json", env!("CARGO_MANIFEST_DIR"))
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
