//! Fig. 10: teacher vs booster boxplots per model (RQ3 ablation reading).

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    // Fig. 10 shares its data with Table IV; recompute on 6 models to
    // keep this bench independent yet affordable (the bin does all 14).
    let kinds = [
        DetectorKind::IForest,
        DetectorKind::Hbos,
        DetectorKind::Lof,
        DetectorKind::Knn,
        DetectorKind::Ecod,
        DetectorKind::DeepSvdd,
    ];
    let results = uadb::experiment::run_matrix(&kinds, &datasets, &cfg);
    experiments::fig10(&results, &kinds);

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let d = datasets[0].standardized();
    g.bench_function("teacher_fit_score_ecod", |b| {
        b.iter(|| DetectorKind::Ecod.build(0).fit_score(&d.x).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
