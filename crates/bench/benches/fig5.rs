//! Fig. 5: the synthetic study — error correction on the four anomaly
//! types.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_metrics::{count_errors, threshold_by_contamination};

fn bench(c: &mut Criterion) {
    let cfg = setup::experiment_config().booster;
    experiments::fig5(&cfg);

    let mut g = c.benchmark_group("fig5");
    g.sample_size(30);
    let d = fig5_dataset(AnomalyType::Global, 0).standardized();
    let labels = d.labels_f64();
    let scores: Vec<f64> = (0..d.n_samples()).map(|i| i as f64 / d.n_samples() as f64).collect();
    g.bench_function("error_counting", |b| {
        b.iter(|| {
            let thr = threshold_by_contamination(&scores, 0.1);
            count_errors(&labels, &scores, thr)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
