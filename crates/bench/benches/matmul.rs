//! Hot-path micro-benchmarks: dense `Matrix::matmul` and the MLP
//! forward pass built on it.
//!
//! The serving engine's per-request cost is dominated by these kernels
//! (every score is standardise → matmul chain → sigmoid), so this bench
//! is the regression gate for any `uadb_linalg` change — it was added
//! alongside the removal of `matmul`'s IEEE-violating zero-skip to show
//! the dense path does not pay for that fix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use uadb_linalg::Matrix;
use uadb_nn::{Activation, Mlp, MlpConfig};

/// Deterministic pseudo-random fill (no `rand` dependency; xorshift64*).
fn filled_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Map to (-1, 1); keeps magnitudes in the MLP's working range.
        (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(30);
    // (1, 16, 128) is the serving hot case: a single-row request
    // through the first MLP layer.
    for (m, k, n) in [(1usize, 16usize, 128usize), (256, 16, 128), (256, 128, 128), (1024, 64, 64)]
    {
        let a = filled_matrix(m, k, 7);
        let b = filled_matrix(k, n, 11);
        g.bench_function(format!("dense_{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("forward");
    g.sample_size(30);
    let x = filled_matrix(512, 16, 13);
    for depth in [1usize, 4] {
        let mlp = Mlp::new(&MlpConfig {
            input_dim: 16,
            hidden: vec![128; depth],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        g.bench_function(format!("mlp_depth_{depth}_512x16"), |bch| {
            bch.iter(|| black_box(mlp.forward(&x)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
