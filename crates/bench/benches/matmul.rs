//! Hot-path micro-benchmarks: dense `Matrix::matmul` against the
//! pre-refactor naive kernel, and the MLP forward pass (allocating vs
//! scratch-based) built on it.
//!
//! The serving engine's per-request cost is dominated by these kernels
//! (every score is standardise → matmul chain → sigmoid), so this bench
//! is the regression gate for any `uadb_linalg` change. The `naive_*`
//! cases run the historic i/k/j triple loop verbatim, so one run shows
//! the blocked kernel's speedup directly; `forward_pass/*` covers the
//! end-to-end booster forward at serving batch shapes (1 row, 256
//! rows, 8k rows) for both the allocating `Mlp::forward` and the
//! zero-allocation `Mlp::forward_scored` paths.
//!
//! Environment knobs:
//! * `UADB_BENCH_SMOKE=1` — 3 samples per case (CI smoke mode);
//! * `UADB_BENCH_JSON=path` — where to write the machine-readable
//!   summary (default: `<workspace>/BENCH_matmul.json`).

use criterion::{black_box, criterion_group, Criterion};
use uadb_linalg::gemm::{naive_matmul, GemmScratch};
use uadb_linalg::Matrix;
use uadb_nn::{Activation, ForwardScratch, Mlp, MlpConfig};

/// Deterministic pseudo-random fill (no `rand` dependency; xorshift64*).
fn filled_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Map to (-1, 1); keeps magnitudes in the MLP's working range.
        (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn samples() -> usize {
    if std::env::var("UADB_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        3
    } else {
        30
    }
}

fn bench(c: &mut Criterion) {
    let sample_size = samples();

    let mut g = c.benchmark_group("matmul");
    g.sample_size(sample_size);
    // (1, 16, 128) is the serving hot case: a single-row request
    // through the first MLP layer. (256, 128, 128) is the acceptance
    // case: one shard through a hidden layer.
    for (m, k, n) in [(1usize, 16usize, 128usize), (256, 16, 128), (256, 128, 128), (1024, 64, 64)]
    {
        let a = filled_matrix(m, k, 7);
        let b = filled_matrix(k, n, 11);
        g.bench_function(format!("naive_{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(naive_matmul(&a, &b)))
        });
        g.bench_function(format!("dense_{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(a.matmul(&b).unwrap()))
        });
        // The steady-state serving form: cached mask + packed panel +
        // caller-owned output, no per-call allocation at all.
        let mut scratch = GemmScratch::precomputed(&b);
        let mut out = vec![0.0; m * n];
        g.bench_function(format!("dense_into_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                a.matmul_into(&b, &mut scratch, &mut out).unwrap();
                black_box(out.as_slice().len())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("forward");
    g.sample_size(sample_size);
    let x = filled_matrix(512, 16, 13);
    for depth in [1usize, 4] {
        let mlp = Mlp::new(&MlpConfig {
            input_dim: 16,
            hidden: vec![128; depth],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        g.bench_function(format!("mlp_depth_{depth}_512x16"), |bch| {
            bch.iter(|| black_box(mlp.forward(&x)))
        });
    }
    g.finish();

    // End-to-end booster forward (§IV-A architecture: input → 128 →
    // 128 → 1) at serving batch shapes, allocating vs scratch paths.
    let mut g = c.benchmark_group("forward_pass");
    g.sample_size(sample_size);
    let booster = Mlp::new(&MlpConfig {
        input_dim: 32,
        hidden: vec![128, 128],
        output_dim: 1,
        activation: Activation::Sigmoid,
        seed: 1,
    });
    for rows in [1usize, 256, 8192] {
        let x = filled_matrix(rows, 32, 17);
        g.bench_function(format!("alloc_{rows}x32"), |bch| {
            bch.iter(|| black_box(booster.forward(&x)))
        });
        let mut scratch = ForwardScratch::default();
        // Warm the scratch so the timed region is the steady state.
        let _ = booster.forward_scored(&x, &mut scratch);
        g.bench_function(format!("scratch_{rows}x32"), |bch| {
            bch.iter(|| black_box(booster.forward_scored(&x, &mut scratch).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

/// JSON escape for benchmark names (they are ASCII identifiers, but be
/// strict anyway).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Custom main (instead of `criterion_main!`): runs the groups, then
/// persists every recorded timing as `BENCH_matmul.json` so the perf
/// trajectory is tracked across PRs.
fn main() {
    benches();
    let results = criterion::take_results();
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"matmul\",\n  \"unix_time\": {epoch_secs},\n"));
    json.push_str(&format!("  \"smoke\": {},\n  \"results\": [\n", samples() == 3));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {:.0}, \
             \"mean_ns\": {:.0}, \"samples\": {}}}{}\n",
            esc(&r.group),
            esc(&r.name),
            r.min_ns,
            r.mean_ns,
            r.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("UADB_BENCH_JSON").unwrap_or_else(|_| {
        // Bench binaries run with the package as cwd; anchor the file
        // at the workspace root regardless.
        format!("{}/../../BENCH_matmul.json", env!("CARGO_MANIFEST_DIR"))
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
