//! Table VI: booster-scheme ablation (Origin / Naive / Discrepancy /
//! Self / Discrepancy* / UADB) across all 14 models.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::BoosterScheme;
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    experiments::table6(&DetectorKind::ALL, &datasets, &cfg);

    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    let d = datasets[0].standardized();
    let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
    g.bench_function("self_booster_run", |b| {
        b.iter(|| BoosterScheme::SelfBooster.run(&d.x, &teacher, &cfg.booster).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
