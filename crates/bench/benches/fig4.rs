//! Fig. 4: per-case error-correction trajectories (UADB vs static
//! student).

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::trajectory::assign_cases;
use uadb_bench::{experiments, setup};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let cfg = setup::experiment_config().booster;
    experiments::fig4(&cfg);

    let mut g = c.benchmark_group("fig4");
    g.sample_size(30);
    let d = fig5_dataset(AnomalyType::Clustered, 0).standardized();
    let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
    g.bench_function("case_assignment", |b| b.iter(|| assign_cases(&d, &teacher)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
