//! Table III: dataset roster regeneration + suite-generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_data::suite::{generate_by_name, SuiteScale};

fn bench(c: &mut Criterion) {
    experiments::table3();
    let mut g = c.benchmark_group("table3");
    g.sample_size(20);
    g.bench_function("generate_one_dataset", |b| {
        b.iter(|| generate_by_name("12_glass", SuiteScale::Quick, setup::seed()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
