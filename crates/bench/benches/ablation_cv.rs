//! Ablation of UADB's own design choices (DESIGN.md §5): CV ensemble
//! size, warm-start vs per-step reinitialisation, and the dispersion
//! scale of the correction term.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::booster::CorrectionScale;
use uadb::experiment::{run_matrix, summarize_model, Metric};
use uadb::UadbConfig;
use uadb_bench::report::{f4, f4s, Table};
use uadb_bench::setup;
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let kinds = [DetectorKind::IForest, DetectorKind::Hbos, DetectorKind::Lof];
    let variants: [(&str, UadbConfig); 5] = [
        ("default (3-fold, warm, std)", UadbConfig::with_seed(setup::seed())),
        (
            "single booster (no CV)",
            UadbConfig { cv_folds: 1, ..UadbConfig::with_seed(setup::seed()) },
        ),
        (
            "fresh members per step",
            UadbConfig { warm_start: false, ..UadbConfig::with_seed(setup::seed()) },
        ),
        (
            "raw-variance correction",
            UadbConfig {
                correction: CorrectionScale::Variance,
                ..UadbConfig::with_seed(setup::seed())
            },
        ),
        ("5 UADB steps", UadbConfig { t_steps: 5, ..UadbConfig::with_seed(setup::seed()) }),
    ];
    let mut t = Table::new(vec!["Variant", "avg teacher AUC", "avg booster AUC", "improvement"]);
    for (name, bcfg) in &variants {
        let cfg =
            uadb::experiment::ExperimentConfig { booster: bcfg.clone(), n_runs: 1, n_threads: 0 };
        let results = run_matrix(&kinds, &datasets, &cfg);
        let mut orig = 0.0;
        let mut improv = 0.0;
        for k in kinds {
            let s = summarize_model(&results, k.name(), Metric::AucRoc);
            orig += s.original;
            improv += s.improvement;
        }
        orig /= kinds.len() as f64;
        improv /= kinds.len() as f64;
        t.row(vec![name.to_string(), f4(orig), f4(orig + improv), f4s(improv)]);
    }
    t.print("Ablation: UADB design choices (IForest/HBOS/LOF average)");

    let mut g = c.benchmark_group("ablation_cv");
    g.sample_size(10);
    let d = datasets[0].standardized();
    let teacher = DetectorKind::Hbos.build(0).fit_score(&d.x).unwrap();
    for (label, folds) in [("cv1", 1usize), ("cv3", 3usize)] {
        let cfg = UadbConfig { cv_folds: folds, t_steps: 3, ..UadbConfig::default() };
        g.bench_function(format!("uadb_fit_{label}"), |b| {
            b.iter(|| uadb::Uadb::new(cfg.clone()).fit(&d.x, &teacher).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
