//! Fig. 8: sensitivity to booster MLP depth.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_nn::{Activation, Mlp, MlpConfig};

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    // Depth sweep is 4 full matrices; restrict to 4 representative models
    // so the bench stays laptop-sized (the bin runs all 14).
    let kinds = [DetectorKind::IForest, DetectorKind::Hbos, DetectorKind::Lof, DetectorKind::Knn];
    experiments::fig8(&kinds, &datasets, &cfg);

    let mut g = c.benchmark_group("fig8");
    g.sample_size(20);
    let x = Matrix::filled(256, 16, 0.5);
    for depth in [1usize, 4] {
        let mlp = Mlp::new(&MlpConfig {
            input_dim: 16,
            hidden: vec![128; depth],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        g.bench_function(format!("forward_depth_{depth}"), |b| b.iter(|| mlp.forward(&x)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
