//! Table V: per-iteration booster performance for IForest/HBOS/LOF/KNN
//! on their most-improved datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::{Uadb, UadbConfig};
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    experiments::table5(&datasets, &cfg);

    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    let d = datasets[0].standardized();
    let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
    let fast = UadbConfig { t_steps: 2, ..cfg.booster.clone() };
    g.bench_function("two_uadb_iterations", |b| {
        b.iter(|| Uadb::new(fast.clone()).fit(&d.x, &teacher).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
