//! Table IV: the main result — UADB improvement over all 14 source UAD
//! models, plus a per-cell kernel timing.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::experiment::run_pair;
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    let _results = experiments::table4(&DetectorKind::ALL, &datasets, &cfg);

    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    let small = &datasets[0];
    g.bench_function("hbos_plus_uadb_cell", |b| {
        b.iter(|| run_pair(DetectorKind::Hbos, small, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
