//! Fig. 1: inlier vs anomaly variance on the four example datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb::variance_probe::probe;
use uadb_bench::{experiments, setup};
use uadb_data::suite::{generate_by_name, SuiteScale};
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let cfg = setup::probe_config();
    experiments::fig1(&cfg);

    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let d = generate_by_name("12_glass", SuiteScale::Quick, 0).unwrap().standardized();
    let teacher = DetectorKind::IForest.build(0).fit_score(&d.x).unwrap();
    g.bench_function("variance_probe", |b| b.iter(|| probe(&d, &teacher, &cfg).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
