//! Fig. 9: per-case ranking development under a LOF teacher, T = 20.

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_metrics::auc::average_ranks;

fn bench(c: &mut Criterion) {
    let cfg = setup::experiment_config().booster;
    experiments::fig9(&cfg);

    let mut g = c.benchmark_group("fig9");
    g.sample_size(30);
    let scores: Vec<f64> = (0..2000).map(|i| ((i * 61) % 997) as f64).collect();
    g.bench_function("average_ranks_2000", |b| b.iter(|| average_ranks(&scores)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
