//! Micro-benchmarks of all 14 source UAD models: fit + score throughput
//! on one suite dataset (the practical cost behind the paper's "no
//! universal winner" argument — assumption families differ hugely in
//! compute, too).

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::setup;
use uadb_detectors::DetectorKind;

fn bench(c: &mut Criterion) {
    let d = uadb_data::suite::generate_by_name(
        "12_glass",
        uadb_data::suite::SuiteScale::Quick,
        setup::seed(),
    )
    .unwrap()
    .standardized();
    let mut g = c.benchmark_group("detectors_fit_score");
    g.sample_size(10);
    for kind in DetectorKind::ALL {
        g.bench_function(kind.name(), |b| b.iter(|| kind.build(0).fit_score(&d.x).unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
