//! Fig. 7: sensitivity to the number of UADB training iterations
//! (T sweep to 20; the paper saturates at ≈10).

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_detectors::DetectorKind;
use uadb_metrics::roc_auc;

fn bench(c: &mut Criterion) {
    let datasets = setup::datasets();
    let cfg = setup::experiment_config();
    experiments::fig7(&DetectorKind::ALL, &datasets, &cfg, 20);

    let mut g = c.benchmark_group("fig7");
    g.sample_size(30);
    let labels: Vec<f64> = (0..2000).map(|i| (i % 10 == 0) as u8 as f64).collect();
    let scores: Vec<f64> = (0..2000).map(|i| ((i * 31) % 997) as f64 / 997.0).collect();
    g.bench_function("roc_auc_2000", |b| b.iter(|| roc_auc(&labels, &scores)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
