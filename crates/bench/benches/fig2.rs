//! Fig. 2: relative variance gap across all 84 datasets (the 71/84
//! claim).

use criterion::{criterion_group, criterion_main, Criterion};
use uadb_bench::{experiments, setup};
use uadb_linalg::vecops::population_variance;

fn bench(c: &mut Criterion) {
    let cfg = setup::probe_config();
    let evidence = experiments::fig2(&cfg);

    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    let flat: Vec<f64> = evidence.iter().flat_map(|e| e.per_instance.iter().copied()).collect();
    g.bench_function("variance_aggregation", |b| b.iter(|| population_variance(&flat)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
