//! Plain-text table rendering for the experiment harness.
//!
//! Output goes to stdout in aligned columns so `cargo bench`/bin logs are
//! directly comparable to the paper's tables.

use std::io::Write;

/// A simple aligned-column table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..n {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table with a title banner.
    pub fn print(&self, title: &str) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "\n=== {title} ===");
        let _ = write!(lock, "{}", self.render());
        let _ = lock.flush();
    }
}

/// Formats a float with 4 decimal places (the paper's precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a signed improvement with 4 decimals.
pub fn f4s(v: f64) -> String {
    format!("{v:+.4}")
}

/// Formats a p-value in scientific notation like the paper ("1.89e-2").
pub fn pval(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:.2e}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer-name", "2.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.7028), "0.7028");
        assert_eq!(f4s(0.0117), "+0.0117");
        assert_eq!(f4s(-0.0117), "-0.0117");
        assert_eq!(pval(Some(0.0189)), "1.89e-2");
        assert_eq!(pval(None), "n/a");
    }
}
