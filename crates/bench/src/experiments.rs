//! One function per table/figure of the paper; each computes the
//! experiment and prints the corresponding rows (DESIGN.md §4 maps the
//! paper artefacts to these functions).

use crate::report::{f4, f4s, pval, Table};
use crate::setup;
use uadb::experiment::{
    run_matrix, run_scheme_matrix, summarize_model, ExperimentConfig, Metric, PairResult,
};
use uadb::trajectory;
use uadb::variance_probe::{probe, VarianceEvidence};
use uadb::{BoosterScheme, Uadb, UadbConfig};
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_data::Dataset;
use uadb_detectors::DetectorKind;
use uadb_metrics::{count_errors_top_k, error_correction_rate, roc_auc};
use uadb_stats::BoxplotStats;

/// Table III: the dataset roster with generated shapes.
pub fn table3() {
    let datasets = setup::all_datasets();
    let mut t = Table::new(vec!["Dataset", "n", "d", "% Anomaly", "Category"]);
    for d in &datasets {
        t.row(vec![
            d.name.clone(),
            d.n_samples().to_string(),
            d.n_features().to_string(),
            format!("{:.2}", d.anomaly_pct()),
            d.category.to_string(),
        ]);
    }
    t.print("Table III: data description of the 84 simulated datasets");
}

/// Table IV: the main result — per-model teacher average, UADB
/// improvement, effects count and Wilcoxon p, for both metrics.
/// Returns the raw pair results so callers (Fig. 10) can reuse them.
pub fn table4(
    kinds: &[DetectorKind],
    datasets: &[Dataset],
    cfg: &ExperimentConfig,
) -> Vec<PairResult> {
    let results = run_matrix(kinds, datasets, cfg);
    for (metric, name) in [(Metric::AucRoc, "AUCROC"), (Metric::Ap, "AP")] {
        let mut t = Table::new(vec![
            "Model",
            "Original",
            "Improvement",
            "Improvement (%)",
            "Effects",
            "P-value",
        ]);
        for k in kinds {
            let s = summarize_model(&results, k.name(), metric);
            t.row(vec![
                s.model.to_string(),
                f4(s.original),
                f4s(s.improvement),
                format!("{:+.2}", s.improvement_pct),
                format!("{}/{}", s.effects, s.n_datasets),
                pval(s.p_value),
            ]);
        }
        t.print(&format!("Table IV ({name}): UADB improvement over the source UAD models"));
    }
    results
}

/// Table V: per-iteration booster performance for 4 representative
/// teachers on their 5 most-improved datasets.
pub fn table5(datasets: &[Dataset], cfg: &ExperimentConfig) {
    let kinds = [DetectorKind::IForest, DetectorKind::Hbos, DetectorKind::Lof, DetectorKind::Knn];
    let results = run_matrix(&kinds, datasets, cfg);
    for (metric, mname) in [(Metric::AucRoc, "AUCROC"), (Metric::Ap, "AP")] {
        for k in kinds {
            let mut rows: Vec<&PairResult> =
                results.iter().filter(|r| r.model == k.name()).collect();
            fn value(r: &PairResult, metric: Metric) -> (f64, &Vec<f64>) {
                match metric {
                    Metric::AucRoc => (r.teacher_auc, &r.iter_auc),
                    Metric::Ap => (r.teacher_ap, &r.iter_ap),
                }
            }
            rows.sort_by(|a, b| {
                let ia = value(a, metric).1.last().unwrap() - value(a, metric).0;
                let ib = value(b, metric).1.last().unwrap() - value(b, metric).0;
                ib.partial_cmp(&ia).unwrap()
            });
            let mut t = Table::new(vec![
                "Datasets",
                "Teacher",
                "iter 2",
                "iter 4",
                "iter 6",
                "iter 8",
                "iter 10",
                "Improvement",
            ]);
            for r in rows.iter().take(5) {
                let (teacher, iters) = value(r, metric);
                let at = |i: usize| iters.get(i - 1).copied().unwrap_or(f64::NAN);
                let last = iters.last().copied().unwrap_or(teacher);
                t.row(vec![
                    r.dataset.clone(),
                    f4(teacher),
                    f4(at(2)),
                    f4(at(4)),
                    f4(at(6)),
                    f4(at(8)),
                    f4(at(10)),
                    f4s(last - teacher),
                ]);
            }
            t.print(&format!("Table V: {} and its UADB booster, {mname}", k.name()));
        }
    }
}

/// Table VI: the booster-scheme ablation over all models.
pub fn table6(kinds: &[DetectorKind], datasets: &[Dataset], cfg: &ExperimentConfig) {
    let results = run_scheme_matrix(kinds, datasets, &BoosterScheme::ALL, cfg);
    for (metric, mname) in [("auc", "AUCROC"), ("ap", "AP")] {
        let mut headers: Vec<String> = vec!["Scheme".to_string()];
        headers.extend(kinds.iter().map(|k| k.name().to_string()));
        headers.push("Average".to_string());
        let mut t = Table::new(headers);
        for scheme in BoosterScheme::ALL {
            let mut row = vec![scheme.name().to_string()];
            let mut total = 0.0;
            for k in kinds {
                let vals: Vec<f64> = results
                    .iter()
                    .filter(|r| r.model == k.name() && r.scheme == scheme.name())
                    .map(|r| if metric == "auc" { r.auc } else { r.ap })
                    .collect();
                let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
                total += mean;
                row.push(f4(mean));
            }
            row.push(f4(total / kinds.len() as f64));
            t.row(row);
        }
        t.print(&format!("Table VI: booster training strategies, {mname}"));
    }
}

/// Fig. 1: per-instance variance of inliers vs anomalies under IForest +
/// naive imitation learner, on the paper's four example datasets.
pub fn fig1(cfg: &UadbConfig) -> Vec<VarianceEvidence> {
    let names = ["12_glass", "25_musk", "27_PageBlocks", "39_thyroid"];
    let scale = uadb_data::suite::SuiteScale::from_env();
    let mut t = Table::new(vec![
        "Dataset",
        "mean var (normal)",
        "mean var (anomaly)",
        "anomaly q3",
        "anomalies higher?",
    ]);
    let mut out = Vec::new();
    for name in names {
        let d = uadb_data::suite::generate_by_name(name, scale, setup::seed())
            .expect("roster name")
            .standardized();
        let teacher = DetectorKind::IForest.build(cfg.seed).fit_score(&d.x).unwrap();
        let ev = probe(&d, &teacher, cfg).unwrap();
        let anom_vars: Vec<f64> = ev
            .per_instance
            .iter()
            .zip(&d.labels)
            .filter(|(_, &l)| l == 1)
            .map(|(&v, _)| v)
            .collect();
        let q3 = BoxplotStats::from_values(&anom_vars).map(|b| b.q3).unwrap_or(0.0);
        t.row(vec![
            name.to_string(),
            format!("{:.5}", ev.mean_normal),
            format!("{:.5}", ev.mean_abnormal),
            format!("{q3:.5}"),
            if ev.anomalies_have_higher_variance() { "yes" } else { "no" }.to_string(),
        ]);
        out.push(ev);
    }
    t.print("Fig. 1: sample variance of normal vs abnormal instances (IForest + MLP imitator)");
    out
}

/// Fig. 2: relative variance difference on all 84 datasets. Returns the
/// evidence per dataset (reused by Fig. 6).
pub fn fig2(cfg: &UadbConfig) -> Vec<VarianceEvidence> {
    let datasets = setup::all_datasets();
    let evidence: Vec<VarianceEvidence> = datasets
        .iter()
        .map(|d| {
            let std_d = d.standardized();
            let teacher = DetectorKind::IForest.build(cfg.seed).fit_score(&std_d.x).unwrap();
            probe(&std_d, &teacher, cfg).unwrap()
        })
        .collect();
    let holds = evidence.iter().filter(|e| e.anomalies_have_higher_variance()).count();
    let strong = evidence.iter().filter(|e| e.relative_difference() < -0.05).count();
    let mut sorted: Vec<&VarianceEvidence> = evidence.iter().collect();
    sorted.sort_by(|a, b| a.relative_difference().partial_cmp(&b.relative_difference()).unwrap());
    let mut t = Table::new(vec!["Dataset", "Variance decrease (rel.)"]);
    for e in &sorted {
        t.row(vec![e.dataset.clone(), format!("{:+.3}", e.relative_difference())]);
    }
    t.print("Fig. 2: relative average variance difference (negative = anomalies higher)");
    println!(
        "anomalies have higher variance on {holds}/{} datasets (paper: 71/84); \
         relative gap > 5% on {strong}/{} (paper: 60/84)",
        evidence.len(),
        evidence.len()
    );
    evidence
}

/// Fig. 4: per-case booster score trajectories, UADB vs a static student.
pub fn fig4(cfg: &UadbConfig) {
    let d = fig5_dataset(AnomalyType::Clustered, setup::seed() ^ 0xf164).standardized();
    let teacher = DetectorKind::IForest.build(cfg.seed).fit_score(&d.x).unwrap();
    let (traj, _) = trajectory::trace(&d, &teacher, cfg).unwrap();
    let mut t = Table::new(vec!["iter", "TN", "TP", "FP", "FN", "AUCROC"]);
    for (i, (scores, auc)) in traj.mean_scores.iter().zip(&traj.auc_per_iter).enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            f4(scores[0]),
            f4(scores[1]),
            f4(scores[2]),
            f4(scores[3]),
            f4(*auc),
        ]);
    }
    t.print("Fig. 4: UADB error correction — mean booster score per case per iteration");
    // Static student (no correction): the booster mimics the teacher, so
    // per-case means stay at the teacher's levels.
    let naive = BoosterScheme::Naive.run(&d.x, &teacher, cfg).unwrap();
    let cases = trajectory::assign_cases(&d, &teacher);
    let labels = d.labels_f64();
    let mut means = [0.0f64; 4];
    let mut counts = [0usize; 4];
    for (&s, &c) in naive.iter().zip(&cases) {
        let i = trajectory::Case::ALL.iter().position(|&a| a == c).unwrap();
        means[i] += s;
        counts[i] += 1;
    }
    for (m, c) in means.iter_mut().zip(counts) {
        if c > 0 {
            *m /= c as f64;
        }
    }
    println!(
        "static student (no correction): TN={} TP={} FP={} FN={} AUCROC={}",
        f4(means[0]),
        f4(means[1]),
        f4(means[2]),
        f4(means[3]),
        f4(roc_auc(&labels, &naive)),
    );
}

/// Fig. 5: the synthetic study — error counts of teacher vs booster on
/// the four anomaly types. Returns the average correction rate.
pub fn fig5(cfg: &UadbConfig) -> f64 {
    // (anomaly type, the two models the paper pairs with it)
    let pairs: [(AnomalyType, [DetectorKind; 2]); 4] = [
        (AnomalyType::Clustered, [DetectorKind::IForest, DetectorKind::Hbos]),
        (AnomalyType::Global, [DetectorKind::IForest, DetectorKind::Hbos]),
        (AnomalyType::Local, [DetectorKind::IForest, DetectorKind::Lof]),
        (AnomalyType::Dependency, [DetectorKind::IForest, DetectorKind::Knn]),
    ];
    let mut t = Table::new(vec![
        "Anomaly type",
        "Model",
        "Teacher errors",
        "Booster errors",
        "Correction rate",
        "Teacher AUC",
        "Booster AUC",
    ]);
    let mut rates = Vec::with_capacity(8);
    for (ty, models) in pairs {
        let d = fig5_dataset(ty, setup::seed() ^ 0x515).standardized();
        let labels = d.labels_f64();
        let budget = d.n_anomalies();
        for kind in models {
            let teacher = kind.build(cfg.seed).fit_score(&d.x).unwrap();
            let teacher_errors = count_errors_top_k(&labels, &teacher, budget).errors();
            let model = Uadb::new(cfg.clone()).fit(&d.x, &teacher).unwrap();
            let boosted = model.scores();
            let booster_errors = count_errors_top_k(&labels, boosted, budget).errors();
            let rate = error_correction_rate(teacher_errors, booster_errors);
            rates.push(rate);
            t.row(vec![
                ty.name().to_string(),
                kind.name().to_string(),
                teacher_errors.to_string(),
                booster_errors.to_string(),
                format!("{:.2}%", 100.0 * rate),
                f4(roc_auc(&labels, &teacher)),
                f4(roc_auc(&labels, boosted)),
            ]);
        }
    }
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    t.print("Fig. 5: synthetic anomaly types — teacher vs booster errors");
    println!(
        "average correction rate {:.2}% over 8 model-anomaly pairs (paper: 38.94%, max 86.36%)",
        100.0 * avg
    );
    avg
}

/// Fig. 6: UADB improvement restricted to the datasets where the variance
/// evidence fails (anomalies do NOT have higher variance).
pub fn fig6(kinds: &[DetectorKind], cfg: &ExperimentConfig) {
    let evidence = {
        let datasets = setup::all_datasets();
        datasets
            .iter()
            .map(|d| {
                let std_d = d.standardized();
                let teacher =
                    DetectorKind::IForest.build(cfg.booster.seed).fit_score(&std_d.x).unwrap();
                probe(&std_d, &teacher, &cfg.booster).unwrap()
            })
            .collect::<Vec<_>>()
    };
    let failing: Vec<String> = evidence
        .iter()
        .filter(|e| !e.anomalies_have_higher_variance())
        .map(|e| e.dataset.clone())
        .collect();
    println!(
        "\nFig. 6 universe: {} datasets where anomalies do NOT have higher variance",
        failing.len()
    );
    let datasets: Vec<Dataset> =
        setup::all_datasets().into_iter().filter(|d| failing.contains(&d.name)).collect();
    if datasets.is_empty() {
        println!("(no failing datasets at this seed — evidence holds everywhere)");
        return;
    }
    let results = run_matrix(kinds, &datasets, cfg);
    let mut t = Table::new(vec!["Model", "median improv.", "q1", "q3", "improved on"]);
    for k in kinds {
        let improvements: Vec<f64> =
            results.iter().filter(|r| r.model == k.name()).map(|r| r.auc_improvement()).collect();
        let b = BoxplotStats::from_values(&improvements).expect("non-empty");
        let wins = improvements.iter().filter(|v| **v > 0.0).count();
        t.row(vec![
            k.name().to_string(),
            f4s(b.median),
            f4s(b.q1),
            f4s(b.q3),
            format!("{}/{}", wins, improvements.len()),
        ]);
    }
    t.print("Fig. 6: UADB improvement (AUCROC) on variance-evidence-failing datasets");
}

/// Fig. 7: sensitivity to the number of UADB training iterations.
pub fn fig7(kinds: &[DetectorKind], datasets: &[Dataset], cfg: &ExperimentConfig, t_max: usize) {
    let mut sweep_cfg = cfg.clone();
    sweep_cfg.booster.t_steps = t_max;
    let results = run_matrix(kinds, datasets, &sweep_cfg);
    let mut t =
        Table::new(vec!["Model", "iter 0", "iter 4", "iter 8", "iter 12", "iter 16", "iter 20"]);
    for k in kinds {
        let rows: Vec<&PairResult> = results.iter().filter(|r| r.model == k.name()).collect();
        let mean_at = |i: usize| -> f64 {
            rows.iter()
                .map(|r| if i == 0 { r.teacher_auc } else { r.iter_auc[(i - 1).min(t_max - 1)] })
                .sum::<f64>()
                / rows.len().max(1) as f64
        };
        t.row(vec![
            k.name().to_string(),
            f4(mean_at(0)),
            f4(mean_at(4)),
            f4(mean_at(8)),
            f4(mean_at(12)),
            f4(mean_at(16)),
            f4(mean_at(20)),
        ]);
    }
    t.print("Fig. 7: average AUCROC vs UADB training iterations (iter 0 = teacher)");
}

/// Fig. 8: sensitivity to booster MLP depth (number of 128-wide hidden
/// layers).
pub fn fig8(kinds: &[DetectorKind], datasets: &[Dataset], cfg: &ExperimentConfig) {
    let mut t = Table::new(vec!["Model", "1 layer", "2 layers", "3 layers", "4 layers"]);
    let mut per_model: Vec<Vec<String>> =
        kinds.iter().map(|k| vec![k.name().to_string()]).collect();
    for depth in 1..=4usize {
        let mut depth_cfg = cfg.clone();
        depth_cfg.booster.hidden = vec![128; depth];
        let results = run_matrix(kinds, datasets, &depth_cfg);
        for (ki, k) in kinds.iter().enumerate() {
            let s = summarize_model(&results, k.name(), Metric::AucRoc);
            per_model[ki].push(f4(s.original + s.improvement));
        }
    }
    for row in per_model {
        t.row(row);
    }
    t.print("Fig. 8: average booster AUCROC vs MLP depth");
}

/// Fig. 9: ranking development of TP/TN/FP/FN under a LOF teacher with
/// T = 20 on the paper's three example datasets.
pub fn fig9(cfg: &UadbConfig) {
    let mut long_cfg = cfg.clone();
    long_cfg.t_steps = 20;
    let scale = uadb_data::suite::SuiteScale::from_env();
    for name in ["19_landsat", "26_optdigits", "31_satellite"] {
        let d = uadb_data::suite::generate_by_name(name, scale, setup::seed())
            .expect("roster name")
            .standardized();
        let teacher = DetectorKind::Lof.build(cfg.seed).fit_score(&d.x).unwrap();
        let (traj, _) = trajectory::trace(&d, &teacher, &long_cfg).unwrap();
        let mut t = Table::new(vec!["iter", "rank TP", "rank TN", "rank FP", "rank FN", "AUCROC"]);
        for (i, (ranks, auc)) in traj.mean_ranks.iter().zip(&traj.auc_per_iter).enumerate() {
            if (i + 1) % 2 == 0 || i == 0 {
                t.row(vec![
                    (i + 1).to_string(),
                    format!("{:.1}", ranks[1]),
                    format!("{:.1}", ranks[0]),
                    format!("{:.1}", ranks[2]),
                    format!("{:.1}", ranks[3]),
                    f4(*auc),
                ]);
            }
        }
        t.print(&format!("Fig. 9: {name} — mean ranking per case (LOF teacher, T=20)"));
    }
}

/// Fig. 10: five-number summaries of teacher vs booster scores per model
/// (the boxplot ablation of RQ3). Reuses Table IV pair results.
pub fn fig10(results: &[PairResult], kinds: &[DetectorKind]) {
    for (metric, name) in [(Metric::AucRoc, "AUCROC"), (Metric::Ap, "AP")] {
        let mut t = Table::new(vec![
            "Model",
            "teacher median",
            "teacher q1..q3",
            "booster median",
            "booster q1..q3",
        ]);
        for k in kinds {
            let (teacher, booster): (Vec<f64>, Vec<f64>) = results
                .iter()
                .filter(|r| r.model == k.name())
                .map(|r| match metric {
                    Metric::AucRoc => (r.teacher_auc, r.booster_auc),
                    Metric::Ap => (r.teacher_ap, r.booster_ap),
                })
                .unzip();
            let bt = BoxplotStats::from_values(&teacher).expect("non-empty");
            let bb = BoxplotStats::from_values(&booster).expect("non-empty");
            t.row(vec![
                k.name().to_string(),
                f4(bt.median),
                format!("{}..{}", f4(bt.q1), f4(bt.q3)),
                f4(bb.median),
                format!("{}..{}", f4(bb.q1), f4(bb.q3)),
            ]);
        }
        t.print(&format!("Fig. 10: teacher vs UADB booster distribution per model ({name})"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig { booster: UadbConfig::fast_for_tests(0), n_runs: 1, n_threads: 2 }
    }

    #[test]
    fn fig5_produces_rates_in_range() {
        let avg = fig5(&UadbConfig::fast_for_tests(0));
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn table4_and_fig10_pipeline() {
        let datasets = vec![fig5_dataset(AnomalyType::Global, 1)];
        let kinds = [DetectorKind::Hbos];
        let results = table4(&kinds, &datasets, &tiny_cfg());
        assert_eq!(results.len(), 1);
        fig10(&results, &kinds);
    }

    #[test]
    fn fig1_reports_four_datasets() {
        let ev = fig1(&UadbConfig::fast_for_tests(0));
        assert_eq!(ev.len(), 4);
    }
}
