//! Regeneration of Fig. 8 (MLP depth sensitivity, all 14 models).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    uadb_bench::experiments::fig8(&DetectorKind::ALL, &datasets, &cfg);
}
