//! Full-suite regeneration of Table III.
fn main() {
    uadb_bench::setup::prefer_full_suite();
    uadb_bench::experiments::table3();
}
