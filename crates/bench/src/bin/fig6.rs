//! Regeneration of Fig. 6 (improvement where the variance evidence fails).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    uadb_bench::experiments::fig6(&DetectorKind::ALL, &uadb_bench::setup::experiment_config());
}
