//! Regeneration of Fig. 4 (per-case correction trajectories).
fn main() {
    uadb_bench::setup::prefer_full_suite();
    uadb_bench::experiments::fig4(&uadb_bench::setup::experiment_config().booster);
}
