//! Regeneration of Fig. 10 (teacher vs booster boxplots, all 14 models).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    let results = uadb::experiment::run_matrix(&DetectorKind::ALL, &datasets, &cfg);
    uadb_bench::experiments::fig10(&results, &DetectorKind::ALL);
}
