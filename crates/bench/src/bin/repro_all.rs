//! Runs every table and figure in sequence — the one-shot full
//! reproduction (several minutes on the full suite).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    let probe_cfg = uadb_bench::setup::probe_config();
    uadb_bench::experiments::table3();
    let _ = uadb_bench::experiments::fig1(&probe_cfg);
    let _ = uadb_bench::experiments::fig2(&probe_cfg);
    uadb_bench::experiments::fig4(&cfg.booster);
    let _ = uadb_bench::experiments::fig5(&cfg.booster);
    let results = uadb_bench::experiments::table4(&DetectorKind::ALL, &datasets, &cfg);
    uadb_bench::experiments::fig10(&results, &DetectorKind::ALL);
    uadb_bench::experiments::table5(&datasets, &cfg);
    uadb_bench::experiments::table6(&DetectorKind::ALL, &datasets, &cfg);
    uadb_bench::experiments::fig6(&DetectorKind::ALL, &cfg);
    uadb_bench::experiments::fig7(&DetectorKind::ALL, &datasets, &cfg, 20);
    uadb_bench::experiments::fig8(&DetectorKind::ALL, &datasets, &cfg);
    uadb_bench::experiments::fig9(&cfg.booster);
}
