//! Full-suite regeneration of Table IV (14 models × 84 datasets).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    let _ = uadb_bench::experiments::table4(&DetectorKind::ALL, &datasets, &cfg);
}
