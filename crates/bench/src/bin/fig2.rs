//! Regeneration of Fig. 2 (variance gap on all 84 datasets).
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let _ = uadb_bench::experiments::fig2(&uadb_bench::setup::probe_config());
}
