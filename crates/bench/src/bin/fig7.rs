//! Regeneration of Fig. 7 (iteration sensitivity, T = 20).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    uadb_bench::experiments::fig7(&DetectorKind::ALL, &datasets, &cfg, 20);
}
