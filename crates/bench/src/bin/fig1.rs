//! Regeneration of Fig. 1 (variance evidence, 4 example datasets).
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let _ = uadb_bench::experiments::fig1(&uadb_bench::setup::probe_config());
}
