//! Regeneration of Fig. 9 (ranking development under LOF, T = 20).
fn main() {
    uadb_bench::setup::prefer_full_suite();
    uadb_bench::experiments::fig9(&uadb_bench::setup::experiment_config().booster);
}
