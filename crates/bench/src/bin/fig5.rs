//! Regeneration of Fig. 5 (synthetic anomaly-type study).
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let _ = uadb_bench::experiments::fig5(&uadb_bench::setup::experiment_config().booster);
}
