//! Regression gate over the bench harness JSON emissions
//! (`BENCH_matmul.json`, `BENCH_serve.json`).
//!
//! Two layers of checks, designed so CI can run the hot-path bench with
//! telemetry instrumentation compiled in (`--features kernel-stats`) and
//! fail if the instrumentation — or any other change — costs real speed:
//!
//! 1. **Machine-independent invariants** (always on): within a single
//!    run, the blocked `dense_into` kernel must still beat the naive
//!    kernel at batch sizes ≥ 256, and the scratch-buffer forward pass
//!    must not lose to the allocating one at the 8192-row batch; on the
//!    serving plane, the binary `application/x-uadb-rows` request must
//!    beat the equivalent JSON request at the 8192-row batch. These
//!    hold on any hardware, so they gate even when the baseline was
//!    produced on a different machine. Invariants whose cases are
//!    absent from the candidate file are skipped, so one binary gates
//!    both bench suites.
//! 2. **Baseline comparison** (`--baseline <path>`): every case present
//!    in both files must satisfy `candidate.min_ns <= baseline.min_ns *
//!    tolerance`. The tolerance (`--tolerance`, default 3.0) absorbs
//!    cross-machine and smoke-mode noise while still catching
//!    order-of-magnitude regressions (a lock or allocation sneaking into
//!    the hot path).
//!
//! 3. **Reference comparison** (`--reference <path>`): a small set of
//!    pinned cases (currently the binary-scoring 8192-row batches) must
//!    stay within 5% of the checked-in reference emission — the gate
//!    that the drift-sketch instrumentation on the scoring hot path is
//!    actually free. Unlike `--baseline`, a missing file or case is a
//!    SKIP, not a failure, so the gate degrades gracefully on machines
//!    without the reference.
//!
//! Usage: `bench_gate --candidate BENCH_matmul.json
//!         [--baseline baseline.json] [--tolerance 3.0]
//!         [--reference BENCH_serve.json]`

use std::collections::BTreeMap;
use std::process::exit;

/// Extracts `name -> min_ns` from the bench harness's own JSON emission.
///
/// The file is produced by `crates/bench/benches/matmul.rs` with one
/// result object per line, so a line-oriented scan is exact for this
/// format (this is not a general JSON parser and does not need to be).
fn parse_results(path: &str) -> BTreeMap<String, f64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            exit(2);
        }
    };
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else { continue };
        let Some(min_ns) = field_num(line, "\"min_ns\": ") else { continue };
        out.insert(name.to_string(), min_ns);
    }
    if out.is_empty() {
        eprintln!("bench_gate: no results parsed from {path}");
        exit(2);
    }
    out
}

/// `parse_results` that tolerates a missing/empty file: the reference
/// gate is advisory on machines that never produced the emission.
fn try_parse_results(path: &str) -> Option<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else { continue };
        let Some(min_ns) = field_num(line, "\"min_ns\": ") else { continue };
        out.insert(name.to_string(), min_ns);
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end =
        rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `(fast case, slow case, allowed fast/slow ratio)` — `fast` must take
/// at most `ratio` of `slow`'s time within the same run.
const INVARIANTS: &[(&str, &str, f64)] = &[
    ("dense_into_256x16x128", "naive_256x16x128", 1.0),
    ("dense_into_256x128x128", "naive_256x128x128", 1.0),
    ("dense_into_1024x64x64", "naive_1024x64x64", 1.0),
    ("scratch_8192x32", "alloc_8192x32", 1.1),
    // Serving plane (BENCH_serve.json): at the 8192-row batch the binary
    // wire format must beat JSON regardless of shard count — parsing
    // decimal float text must never be the fast path again.
    ("binary_rows8192_shards1", "json_rows8192_shards1", 1.0),
    ("binary_rows8192_shards2", "json_rows8192_shards2", 1.0),
    ("binary_rows8192_shards4", "json_rows8192_shards4", 1.0),
    // Training plane (BENCH_train.json): the zero-allocation scratch
    // engine must never lose to the reconstructed legacy loop at the
    // paper's batch 256, and fanning out to 2 workers must cost at most
    // noise over the legacy loop even on a single-core box (on
    // multi-core hardware it is expected to be well under 1.0).
    ("scratch_b256", "legacy_b256", 1.05),
    ("parallel2_b256", "legacy_b256", 1.15),
];

/// `(case, allowed candidate/reference ratio)` — pinned cases gated
/// against the checked-in reference emission (`--reference`). The
/// binary-scoring path carries the drift-sketch instrumentation, so a
/// sketch record that allocates or locks shows up here first.
const REFERENCE_INVARIANTS: &[(&str, f64)] = &[
    ("binary_rows8192_shards1", 1.05),
    ("binary_rows8192_shards2", 1.05),
    ("binary_rows8192_shards4", 1.05),
];

fn main() {
    let mut candidate_path = String::from("BENCH_matmul.json");
    let mut baseline_path: Option<String> = None;
    let mut reference_path: Option<String> = None;
    let mut tolerance = 3.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bench_gate: {what} expects a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--candidate" => candidate_path = take("--candidate"),
            "--baseline" => baseline_path = Some(take("--baseline")),
            "--reference" => reference_path = Some(take("--reference")),
            "--tolerance" => {
                tolerance = take("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("bench_gate: --tolerance expects a number");
                    exit(2);
                })
            }
            other => {
                eprintln!("bench_gate: unknown argument {other}");
                exit(2);
            }
        }
    }

    let candidate = parse_results(&candidate_path);
    let mut failures = 0usize;

    println!("bench_gate: {} cases in {candidate_path}", candidate.len());
    for &(fast, slow, ratio) in INVARIANTS {
        let (Some(&f), Some(&s)) = (candidate.get(fast), candidate.get(slow)) else {
            println!("  SKIP invariant {fast} vs {slow}: case missing");
            continue;
        };
        let ok = f <= s * ratio;
        println!(
            "  {} {fast} ({f:.0} ns) <= {ratio} x {slow} ({s:.0} ns)",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }

    if let Some(path) = baseline_path {
        let baseline = parse_results(&path);
        println!("bench_gate: comparing against {path} (tolerance {tolerance}x)");
        for (name, &b) in &baseline {
            let Some(&c) = candidate.get(name) else {
                println!("  FAIL {name}: present in baseline, missing from candidate");
                failures += 1;
                continue;
            };
            let ok = c <= b * tolerance;
            println!(
                "  {} {name}: {c:.0} ns vs baseline {b:.0} ns ({:.2}x)",
                if ok { "ok  " } else { "FAIL" },
                c / b.max(1.0)
            );
            if !ok {
                failures += 1;
            }
        }
    }

    if let Some(path) = reference_path {
        match try_parse_results(&path) {
            None => println!("bench_gate: SKIP reference gate ({path} missing or empty)"),
            Some(reference) => {
                println!("bench_gate: reference gate against {path}");
                for &(name, ratio) in REFERENCE_INVARIANTS {
                    let (Some(&c), Some(&r)) = (candidate.get(name), reference.get(name)) else {
                        println!("  SKIP reference {name}: case missing");
                        continue;
                    };
                    let ok = c <= r * ratio;
                    println!(
                        "  {} {name}: {c:.0} ns <= {ratio} x reference {r:.0} ns ({:.2}x)",
                        if ok { "ok  " } else { "FAIL" },
                        c / r.max(1.0)
                    );
                    if !ok {
                        failures += 1;
                    }
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} check(s) failed");
        exit(1);
    }
    println!("bench_gate: all checks passed");
}
