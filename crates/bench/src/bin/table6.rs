//! Full-suite regeneration of Table VI (6 schemes × 14 models).
use uadb_detectors::DetectorKind;
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    uadb_bench::experiments::table6(&DetectorKind::ALL, &datasets, &cfg);
}
