//! Full-suite regeneration of Table V.
fn main() {
    uadb_bench::setup::prefer_full_suite();
    let datasets = uadb_bench::setup::datasets();
    let cfg = uadb_bench::setup::experiment_config();
    uadb_bench::experiments::table5(&datasets, &cfg);
}
