//! Environment-driven experiment setup shared by benches and bins.

use uadb::experiment::ExperimentConfig;
use uadb::UadbConfig;
use uadb_data::suite::{generate_quick_suite, generate_suite, SuiteScale};
use uadb_data::Dataset;

/// Master seed from `UADB_SEED` (default 0).
pub fn seed() -> u64 {
    std::env::var("UADB_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// `true` when `UADB_SUITE=full`.
pub fn full_suite() -> bool {
    matches!(std::env::var("UADB_SUITE").ok().as_deref(), Some("full") | Some("FULL"))
}

/// The evaluation datasets: the 12-dataset quick subset by default, all
/// 84 roster entries with `UADB_SUITE=full`.
pub fn datasets() -> Vec<Dataset> {
    let scale = SuiteScale::from_env();
    if full_suite() {
        generate_suite(scale, seed())
    } else {
        generate_quick_suite(scale, seed())
    }
}

/// The full 84-entry suite regardless of `UADB_SUITE` (Fig. 2 needs all
/// datasets to reproduce the "71/84" claim).
pub fn all_datasets() -> Vec<Dataset> {
    generate_suite(SuiteScale::from_env(), seed())
}

/// Paper-default experiment configuration with env-driven runs/seed.
pub fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        booster: UadbConfig::with_seed(seed()),
        n_runs: ExperimentConfig::runs_from_env(),
        n_threads: 0,
    }
}

/// Configuration for the Fig. 1/2 variance probes: the paper's imitation
/// learner is a *single* static distillation pass, not an iterative
/// booster, so one well-trained step suffices.
pub fn probe_config() -> UadbConfig {
    UadbConfig { t_steps: 1, epochs_per_step: 50, ..UadbConfig::with_seed(seed()) }
}

/// Full-run binaries default to the complete 84-dataset suite; set
/// `UADB_SUITE=quick` explicitly to shrink them.
pub fn prefer_full_suite() {
    if std::env::var("UADB_SUITE").is_err() {
        std::env::set_var("UADB_SUITE", "full");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve() {
        std::env::remove_var("UADB_SUITE");
        std::env::remove_var("UADB_RUNS");
        std::env::remove_var("UADB_SEED");
        assert_eq!(seed(), 0);
        assert!(!full_suite());
        let cfg = experiment_config();
        assert_eq!(cfg.n_runs, 1);
        assert_eq!(cfg.booster.t_steps, 10);
        let ds = datasets();
        assert_eq!(ds.len(), 12);
    }
}
