//! Benchmark harness regenerating every table and figure of the UADB
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! Each Criterion bench target under `benches/` and each full-run binary
//! under `src/bin/` calls into the experiment functions here, prints the
//! paper-style rows, and (for benches) times a representative kernel.
//!
//! Environment knobs:
//! * `UADB_SUITE` — `quick` (12-dataset subset, default for benches) or
//!   `full` (all 84 roster entries, default for the bins);
//! * `UADB_SCALE` — dataset sizes: `quick` (n ∈ [240, 520], default) or
//!   `full` (n ∈ [400, 1200]);
//! * `UADB_RUNS`  — independent seeds averaged per cell (default 1; the
//!   paper uses 10);
//! * `UADB_SEED`  — master seed (default 0).

pub mod experiments;
pub mod report;
pub mod setup;
