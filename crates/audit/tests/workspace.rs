//! The analyzer's own CI gate, inverted: the real workspace must audit
//! clean, and the run must have genuinely exercised the checks — a
//! walker bug that silently skipped every file would otherwise "pass".

use std::path::Path;
use uadb_audit::AuditConfig;

#[test]
fn workspace_audits_clean_and_nonvacuously() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (diags, stats) = uadb_audit::run(&AuditConfig::new(root)).unwrap();
    assert_eq!(
        diags,
        vec![],
        "the workspace must audit clean; fix the finding or bless/annotate it"
    );
    // Floors, not exact counts: the workspace grows, but the audit must
    // never quietly stop seeing it.
    assert!(stats.files_scanned >= 100, "only scanned {} files", stats.files_scanned);
    assert!(stats.unsafe_sites >= 10, "only saw {} unsafe sites", stats.unsafe_sites);
    assert!(stats.atomic_sites >= 60, "only saw {} atomic sites", stats.atomic_sites);
    assert!(stats.annotated_fns >= 8, "only saw {} annotated fns", stats.annotated_fns);
    assert!(stats.metric_families >= 20, "only saw {} metric families", stats.metric_families);
}
