//! Integration tests over the seeded fixture trees: the violations
//! fixture must produce exactly the expected diagnostics (spans and
//! all), and the clean fixture must produce none. Exactness matters in
//! both directions — a drifted span means the analyzer is attributing
//! findings to the wrong code, and an extra diagnostic on the clean
//! tree means a false positive that would block an innocent PR.

use std::path::{Path, PathBuf};
use uadb_audit::diagnostics::Check;
use uadb_audit::AuditConfig;

fn fixture_config(name: &str) -> AuditConfig {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let mut cfg = AuditConfig::new(&root);
    cfg.inventory = root.join("tests/inventory.rs");
    cfg
}

#[test]
fn violations_fixture_produces_exact_spans() {
    let (diags, stats) = uadb_audit::run(&fixture_config("violations")).unwrap();
    let got: Vec<(Check, &str, u32, u32)> =
        diags.iter().map(|d| (d.check, d.file.as_str(), d.line, d.col)).collect();
    let want = vec![
        (Check::Metrics, "README.md", 3, 4),
        (Check::Atomics, "audit/atomics.toml", 14, 1),
        (Check::Safety, "src/lib.rs", 5, 5),
        (Check::Atomics, "src/lib.rs", 13, 16),
        (Check::Atomics, "src/lib.rs", 14, 12),
        (Check::NoAlloc, "src/lib.rs", 19, 9),
        (Check::NoPanic, "src/lib.rs", 24, 6),
        (Check::NoPanic, "src/lib.rs", 24, 31),
        (Check::Pragma, "src/lib.rs", 27, 1),
        (Check::Metrics, "src/lib.rs", 29, 23),
    ];
    assert_eq!(got, want, "full diagnostics:\n{:#?}", diags);

    // Message spot-checks: each finding says what is wrong, not just
    // where.
    let msg = |check: Check, line: u32| {
        &diags
            .iter()
            .find(|d| d.check == check && d.line == line && d.file == "src/lib.rs")
            .unwrap()
            .message
    };
    assert!(msg(Check::Safety, 5).contains("unsafe block"));
    assert!(msg(Check::Atomics, 13).contains("unblessed"));
    assert!(msg(Check::Atomics, 13).contains("store(Ordering::Release)"));
    assert!(msg(Check::Atomics, 14).contains("table says 2, source has 1"));
    assert!(msg(Check::NoAlloc, 19).contains(".push(…)"));
    assert!(msg(Check::NoAlloc, 19).contains("hot_alloc"));
    assert!(msg(Check::NoPanic, 24).contains("indexing by integer literal"));
    assert!(msg(Check::Pragma, 27).contains("reason"));
    assert!(msg(Check::Metrics, 29).contains("missing from the README"));

    // The stale bless entry is attributed to the table, not to code.
    let stale = diags.iter().find(|d| d.file == "audit/atomics.toml").unwrap();
    assert!(stale.message.contains("stale"), "{stale}");

    assert_eq!(stats.unsafe_sites, 2);
    assert_eq!(stats.atomic_sites, 3);
    assert_eq!(stats.annotated_fns, 2);
    assert_eq!(stats.metric_families, 1);
}

#[test]
fn clean_fixture_is_silent() {
    let (diags, stats) = uadb_audit::run(&fixture_config("clean")).unwrap();
    assert_eq!(diags, vec![], "clean fixture must produce no diagnostics");
    assert_eq!(stats.unsafe_sites, 1);
    assert_eq!(stats.atomic_sites, 2);
    assert_eq!(stats.annotated_fns, 1);
    assert_eq!(stats.metric_families, 1);
}

#[test]
fn json_report_carries_counts_and_spans() {
    let (diags, _) = uadb_audit::run(&fixture_config("violations")).unwrap();
    let json = uadb_audit::diagnostics::render_json(&diags);
    assert!(json.contains("\"total\": 10"), "{json}");
    assert!(json.contains("\"atomics\": 3"));
    assert!(json.contains("\"no_panic\": 2"));
    assert!(json.contains("\"file\": \"src/lib.rs\""));
    assert!(json.contains("\"line\": 5"));
}
