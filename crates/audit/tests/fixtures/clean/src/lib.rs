//! Fully compliant fixture: the analyzer must stay silent here.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn deref(p: *const u32) -> u32 {
    // SAFETY: fixture pointer is always valid.
    unsafe { *p }
}

pub fn counters(a: &AtomicU64) -> u64 {
    a.fetch_add(1, Ordering::Relaxed);
    a.load(Ordering::Relaxed)
}

// audit: no_alloc
pub fn hot(out: &mut Vec<f64>, n: usize) {
    // audit: allow(alloc, fixture demonstrates a reviewed escape)
    out.resize(n, 0.0);
}

pub fn registers(r: &Registry) {
    let _ = r.counter("uadb_ok_total", "help", &[]);
}
