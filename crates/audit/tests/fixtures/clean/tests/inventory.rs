// audit: metrics-inventory begin
const INVENTORY: &[&str] = &["uadb_ok_total"];
// audit: metrics-inventory end
