// audit: metrics-inventory begin
const INVENTORY: &[&str] = &["uadb_real_total"];
// audit: metrics-inventory end
