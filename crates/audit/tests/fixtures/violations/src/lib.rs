//! Seeded violations for the audit integration tests. Never compiled.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn no_safety(p: *const u32) -> u32 {
    unsafe { *p }
}

// SAFETY: the fixture's one compliant site.
pub unsafe fn with_safety() {}

pub fn atomics(a: &AtomicU64) -> u64 {
    a.fetch_add(1, Ordering::Relaxed);
    a.store(0, Ordering::Release);
    a.load(Ordering::Relaxed)
}

// audit: no_alloc
fn hot_alloc(out: &mut Vec<u32>) {
    out.push(1);
}

// audit: no_panic
fn hot_panic(v: &[u32]) -> u32 {
    v[0] + v.first().copied().unwrap()
}

// audit: allow(alloc)
pub fn registers(r: &Registry) {
    let _ = r.counter("uadb_real_total", "help", &[]);
}
