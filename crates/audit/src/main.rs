//! CLI for the workspace audit. Exit status: 0 clean, 1 diagnostics,
//! 2 usage error.
//!
//! ```text
//! uadb-audit [--root DIR] [--atomics FILE] [--readme FILE]
//!            [--inventory FILE] [--json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use uadb_audit::{diagnostics, AuditConfig};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut atomics = None;
    let mut readme = None;
    let mut inventory = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_flag = |slot: &mut Option<PathBuf>, name: &str| -> Result<(), String> {
            match args.next() {
                Some(v) => {
                    *slot = Some(PathBuf::from(v));
                    Ok(())
                }
                None => Err(format!("{name} requires a path argument")),
            }
        };
        let r = match arg.as_str() {
            "--root" => {
                let mut slot = None;
                let r = path_flag(&mut slot, "--root");
                if let Some(p) = slot {
                    root = p;
                }
                r
            }
            "--atomics" => path_flag(&mut atomics, "--atomics"),
            "--readme" => path_flag(&mut readme, "--readme"),
            "--inventory" => path_flag(&mut inventory, "--inventory"),
            "--json" => {
                json = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!(
                    "uadb-audit: static analysis gates for the UADB workspace\n\n\
                     USAGE: uadb-audit [--root DIR] [--atomics FILE] [--readme FILE]\n\
                            [--inventory FILE] [--json]\n\n\
                     Checks: safety, atomics, no_alloc, no_panic, metrics (+ pragma\n\
                     hygiene). Exits 1 if any diagnostic is produced."
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument `{other}` (see --help)")),
        };
        if let Err(msg) = r {
            eprintln!("uadb-audit: {msg}");
            return ExitCode::from(2);
        }
    }

    let mut cfg = AuditConfig::new(root);
    if let Some(p) = atomics {
        cfg.atomics = p;
    }
    if let Some(p) = readme {
        cfg.readme = p;
    }
    if let Some(p) = inventory {
        cfg.inventory = p;
    }

    let (diags, stats) = match uadb_audit::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("uadb-audit: cannot audit {}: {e}", cfg.root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", diagnostics::render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        println!(
            "uadb-audit: {} file(s), {} unsafe site(s), {} atomic site(s), \
             {} annotated fn(s), {} metric families — {}",
            stats.files_scanned,
            stats.unsafe_sites,
            stats.atomic_sites,
            stats.annotated_fns,
            stats.metric_families,
            if diags.is_empty() {
                "clean".to_string()
            } else {
                format!("{} diagnostic(s)", diags.len())
            }
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
