//! The blessed-atomics table (`audit/atomics.toml`) and its parser.
//!
//! The table is TOML by convention, but the parser is a hand-rolled
//! subset (the build is offline; no `toml` crate): `[[bless]]` array
//! tables whose entries are `key = "string"` or `key = integer` pairs,
//! with `#` comments and blank lines. Anything else is a hard error —
//! a bless entry that silently failed to parse would un-bless nothing
//! and bless nothing, the worst possible failure mode for an audit
//! input.

/// One blessed (file, op, ordering) row with its expected use count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlessEntry {
    /// `/`-separated path relative to the audited root.
    pub file: String,
    /// The receiving call: `load`, `store`, `fetch_add`,
    /// `compare_exchange`, … The orderings of a `compare_exchange(…,
    /// success, failure)` both count under the one op.
    pub op: String,
    /// `Relaxed` | `Acquire` | `Release` | `AcqRel` | `SeqCst`.
    pub ordering: String,
    /// Exactly how many `Ordering::<ordering>` tokens appear inside
    /// `op(…)` calls in `file`. A new atomic in a blessed file shows up
    /// as a count mismatch, so it still cannot land unreviewed.
    pub count: u32,
    /// Line of the entry's `[[bless]]` header in the table file.
    pub line: u32,
}

#[derive(Debug)]
pub struct BlessTable {
    pub entries: Vec<BlessEntry>,
}

#[derive(Debug, Clone)]
pub struct BlessParseError {
    pub line: u32,
    pub message: String,
}

impl BlessTable {
    pub fn parse(src: &str) -> Result<Self, BlessParseError> {
        let mut entries: Vec<BlessEntry> = Vec::new();
        let mut current: Option<(BlessEntry, [bool; 4])> = None;
        for (i, raw) in src.lines().enumerate() {
            let lineno = (i + 1) as u32;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[bless]]" {
                finish(&mut current, &mut entries)?;
                current = Some((
                    BlessEntry {
                        file: String::new(),
                        op: String::new(),
                        ordering: String::new(),
                        count: 0,
                        line: lineno,
                    },
                    [false; 4],
                ));
                continue;
            }
            if line.starts_with('[') {
                return Err(BlessParseError {
                    line: lineno,
                    message: format!("unexpected table header `{line}` (only [[bless]] entries)"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BlessParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some((entry, seen)) = current.as_mut() else {
                return Err(BlessParseError {
                    line: lineno,
                    message: "key outside a [[bless]] entry".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "file" | "op" | "ordering" => {
                    let s = parse_string(value).ok_or_else(|| BlessParseError {
                        line: lineno,
                        message: format!("`{key}` must be a double-quoted string"),
                    })?;
                    let slot = match key {
                        "file" => {
                            seen[0] = true;
                            &mut entry.file
                        }
                        "op" => {
                            seen[1] = true;
                            &mut entry.op
                        }
                        _ => {
                            seen[2] = true;
                            &mut entry.ordering
                        }
                    };
                    *slot = s;
                }
                "count" => {
                    entry.count = value.parse().map_err(|_| BlessParseError {
                        line: lineno,
                        message: format!("`count` must be a non-negative integer, got `{value}`"),
                    })?;
                    seen[3] = true;
                }
                other => {
                    return Err(BlessParseError {
                        line: lineno,
                        message: format!("unknown key `{other}` (file/op/ordering/count)"),
                    });
                }
            }
        }
        finish(&mut current, &mut entries)?;
        // Duplicate (file, op, ordering) rows would make counts
        // ambiguous; reject them outright.
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                if a.file == b.file && a.op == b.op && a.ordering == b.ordering {
                    return Err(BlessParseError {
                        line: b.line,
                        message: format!(
                            "duplicate bless entry for ({}, {}, {})",
                            b.file, b.op, b.ordering
                        ),
                    });
                }
            }
        }
        Ok(Self { entries })
    }
}

fn finish(
    current: &mut Option<(BlessEntry, [bool; 4])>,
    entries: &mut Vec<BlessEntry>,
) -> Result<(), BlessParseError> {
    if let Some((entry, seen)) = current.take() {
        let names = ["file", "op", "ordering", "count"];
        for (i, &got) in seen.iter().enumerate() {
            if !got {
                return Err(BlessParseError {
                    line: entry.line,
                    message: format!("[[bless]] entry is missing `{}`", names[i]),
                });
            }
        }
        entries.push(entry);
    }
    Ok(())
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    // The subset forbids escapes: paths and ordering names never need
    // them, and silently mis-unescaping would corrupt the key.
    if inner.contains('\\') || inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let src = "\
# blessed atomics
[[bless]]
file = \"crates/telemetry/src/metrics.rs\"  # counters
op = \"fetch_add\"
ordering = \"Relaxed\"
count = 4

[[bless]]
file = \"crates/serve/src/pool.rs\"
op = \"fetch_sub\"
ordering = \"AcqRel\"
count = 1
";
        let t = BlessTable::parse(src).unwrap();
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].op, "fetch_add");
        assert_eq!(t.entries[0].count, 4);
        assert_eq!(t.entries[1].ordering, "AcqRel");
        assert_eq!(t.entries[1].line, 8);
    }

    #[test]
    fn rejects_malformed() {
        for (src, frag) in [
            ("[[bless]]\nfile = \"a\"\nop = \"load\"\nordering = \"Relaxed\"", "missing `count`"),
            ("file = \"a\"", "outside"),
            ("[[bless]]\nbogus = 1", "unknown key"),
            ("[[bless]]\nfile = unquoted", "double-quoted"),
            ("[bless]", "unexpected table header"),
            ("[[bless]]\ncount = -1", "non-negative"),
        ] {
            let err = BlessTable::parse(src).unwrap_err();
            assert!(err.message.contains(frag), "{src:?} → {err:?}");
        }
    }

    #[test]
    fn rejects_duplicates() {
        let one = "[[bless]]\nfile = \"a\"\nop = \"load\"\nordering = \"Relaxed\"\ncount = 1\n";
        let err = BlessTable::parse(&format!("{one}{one}")).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }
}
