//! The five project invariants, one module each. `safety` and
//! `hotpath` are per-file; `atomics` and `metrics` collect per-file
//! sites that [`crate::run`] aggregates against the blessed table /
//! the README and inventory-test views.

pub mod atomics;
pub mod hotpath;
pub mod metrics;
pub mod safety;
