//! Check 2: every atomic-ordering use site matches the blessed table.
//!
//! The lock-free core (telemetry counters, the reactor, the pool
//! completion path) is exactly the code where a quietly weakened or
//! strengthened ordering is invisible in review. So orderings are not
//! linted heuristically — they are *enumerated*: each `Ordering::X`
//! token inside an `op(…)` call must correspond to a checked-in
//! `[[bless]]` entry in `audit/atomics.toml`, and the per-(file, op,
//! ordering) **count** must match, so a new atomic in an
//! already-blessed file still fails until a human re-blesses it.

use crate::bless::BlessTable;
use crate::diagnostics::{Check, Diagnostic};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::X` token and the call it appears in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Name of the innermost enclosing call (`load`, `fetch_add`,
    /// `compare_exchange`, …), or `"<none>"` outside any call.
    pub op: String,
    pub ordering: String,
    pub line: u32,
    pub col: u32,
}

/// Keywords that look like callees when followed by `(` but aren't.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "match" | "for" | "return" | "in" | "move" | "loop" | "else" | "fn"
    )
}

/// Collects every ordering use site in a file. Includes `#[cfg(test)]`
/// code deliberately: test-only atomics coordinate real threads and
/// deserve the same review.
pub fn collect(file: &SourceFile) -> Vec<AtomicSite> {
    if file.allows(Check::Atomics) {
        return Vec::new();
    }
    let mut sites = Vec::new();
    // Stack of enclosing `(` frames, each with the callee name if the
    // paren was a call.
    let mut stack: Vec<Option<String>> = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        match &tok.kind {
            TokKind::Punct(b'(') => {
                let callee = file
                    .prev_code(i)
                    .and_then(|p| file.tokens[p].kind.ident())
                    .filter(|s| !is_keyword(s))
                    .map(str::to_string);
                stack.push(callee);
            }
            TokKind::Punct(b')') => {
                stack.pop();
            }
            TokKind::Ident(s) if s == "Ordering" => {
                // Ordering :: <X>
                let Some(c1) = file.next_code(i + 1) else { continue };
                if !file.tokens[c1].kind.is_punct(b':') {
                    continue;
                }
                let Some(c2) = file.next_code(c1 + 1) else { continue };
                if !file.tokens[c2].kind.is_punct(b':') {
                    continue;
                }
                let Some(o) = file.next_code(c2 + 1) else { continue };
                let Some(ord) = file.tokens[o].kind.ident() else { continue };
                if !ORDERINGS.contains(&ord) {
                    continue;
                }
                let op = stack
                    .iter()
                    .rev()
                    .find_map(|f| f.clone())
                    .unwrap_or_else(|| "<none>".to_string());
                sites.push(AtomicSite {
                    op,
                    ordering: ord.to_string(),
                    line: tok.line,
                    col: tok.col,
                });
            }
            _ => {}
        }
    }
    sites
}

/// Compares every file's observed sites against the blessed table.
/// `all_sites` maps display path → sites; files with zero sites may be
/// omitted.
pub fn compare(
    table: &BlessTable,
    table_path: &str,
    all_sites: &BTreeMap<String, Vec<AtomicSite>>,
    out: &mut Vec<Diagnostic>,
) {
    // Observed (file, op, ordering) → (count, first site).
    let mut observed: BTreeMap<(String, String, String), (u32, u32, u32)> = BTreeMap::new();
    for (file, sites) in all_sites {
        for s in sites {
            let e = observed
                .entry((file.clone(), s.op.clone(), s.ordering.clone()))
                .or_insert((0, s.line, s.col));
            e.0 += 1;
        }
    }
    for ((file, op, ordering), (count, line, col)) in &observed {
        match table
            .entries
            .iter()
            .find(|e| &e.file == file && &e.op == op && &e.ordering == ordering)
        {
            None => out.push(Diagnostic::new(
                Check::Atomics,
                file.clone(),
                *line,
                *col,
                format!(
                    "unblessed atomic ordering: {op}(Ordering::{ordering}) ×{count} — \
                     review and add a [[bless]] entry to {table_path}"
                ),
            )),
            Some(e) if e.count != *count => out.push(Diagnostic::new(
                Check::Atomics,
                file.clone(),
                *line,
                *col,
                format!(
                    "blessed count mismatch for {op}(Ordering::{ordering}): \
                     table says {}, source has {count} — re-review and update {table_path}",
                    e.count
                ),
            )),
            Some(_) => {}
        }
    }
    for e in &table.entries {
        let key = (e.file.clone(), e.op.clone(), e.ordering.clone());
        if !observed.contains_key(&key) {
            out.push(Diagnostic::new(
                Check::Atomics,
                table_path.to_string(),
                e.line,
                1,
                format!(
                    "stale bless entry: no {}(Ordering::{}) sites found in {}",
                    e.op, e.ordering, e.file
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<AtomicSite> {
        collect(&SourceFile::new("t.rs".into(), src))
    }

    #[test]
    fn sites_get_their_enclosing_op() {
        let src = "\
fn f(a: &AtomicU64) -> u64 {
    a.fetch_add(1, Ordering::Relaxed);
    a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();
    a.load(Ordering::SeqCst)
}
";
        let got = sites(src);
        let ops: Vec<(&str, &str)> =
            got.iter().map(|s| (s.op.as_str(), s.ordering.as_str())).collect();
        assert_eq!(
            ops,
            vec![
                ("fetch_add", "Relaxed"),
                ("compare_exchange", "AcqRel"),
                ("compare_exchange", "Acquire"),
                ("load", "SeqCst"),
            ]
        );
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn keyword_parens_are_not_calls() {
        let got = sites("fn f() { if (x) { a.store(1, Ordering::Release); } }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].op, "store");
    }

    #[test]
    fn compare_flags_unblessed_mismatch_and_stale() {
        let table = BlessTable::parse(
            "[[bless]]\nfile = \"a.rs\"\nop = \"load\"\nordering = \"Relaxed\"\ncount = 2\n\
             [[bless]]\nfile = \"gone.rs\"\nop = \"store\"\nordering = \"Release\"\ncount = 1\n",
        )
        .unwrap();
        let mut all = BTreeMap::new();
        all.insert(
            "a.rs".to_string(),
            vec![
                AtomicSite { op: "load".into(), ordering: "Relaxed".into(), line: 3, col: 10 },
                AtomicSite { op: "fetch_add".into(), ordering: "Relaxed".into(), line: 5, col: 1 },
            ],
        );
        let mut out = Vec::new();
        compare(&table, "audit/atomics.toml", &all, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out
            .iter()
            .any(|d| d.message.contains("unblessed") && d.message.contains("fetch_add")));
        assert!(out.iter().any(|d| d.message.contains("count mismatch")
            && d.message.contains("table says 2, source has 1")));
        assert!(out.iter().any(|d| d.message.contains("stale") && d.file == "audit/atomics.toml"));
    }

    #[test]
    fn allow_file_suppresses_collection() {
        let got =
            sites("// audit: allow-file(atomics, shim)\nfn f() { a.load(Ordering::SeqCst); }");
        assert!(got.is_empty());
    }
}
