//! Checks 3 & 4: hot-path allocation and panic freedom.
//!
//! Functions annotated `// audit: no_alloc` / `// audit: no_panic`
//! promise lexical properties of their bodies:
//!
//! * **no_alloc** — no allocating constructor paths (`Vec::new`,
//!   `Box::new`, …), no allocating methods (`.push(…)`, `.clone()`,
//!   `.to_vec()`, …), no `vec!`/`format!` macros.
//! * **no_panic** — no `.unwrap()`/`.expect(…)`, no panicking macros
//!   (`panic!`, `assert!`, … — `debug_assert*` is exempt: it is
//!   compiled out of the release hot path), no indexing by integer
//!   literal (`x[0]` — use `get`/pattern matching or carry a proof).
//!
//! Both lints are lexical, so false positives are possible by design;
//! each has a per-site escape: `// audit: allow(alloc, <reason>)` /
//! `// audit: allow(panic, <reason>)` covering the pragma's line and
//! the next source line. The reason string is mandatory and lands in
//! review diffs, which is the point.

use crate::diagnostics::{Check, Diagnostic};
use crate::lexer::TokKind;
use crate::pragma::allow_lines;
use crate::source::SourceFile;

/// `Type::method` constructor paths that allocate.
const ALLOC_PATHS: [(&str, &str); 10] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("VecDeque", "new"),
];

/// `.method(` calls that (may) allocate.
const ALLOC_METHODS: [&str; 13] = [
    "push",
    "push_str",
    "extend",
    "insert",
    "reserve",
    "reserve_exact",
    "resize",
    "append",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
];

const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

const PANIC_MACROS: [&str; 7] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Runs both hot-path lints over a file's annotated functions.
/// Returns the number of annotated functions examined.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) -> usize {
    let alloc_ok = allow_lines(&file.pragmas, Check::NoAlloc);
    let panic_ok = allow_lines(&file.pragmas, Check::NoPanic);
    let file_alloc = file.allows(Check::NoAlloc);
    let file_panic = file.allows(Check::NoPanic);
    for f in &file.annotated_fns {
        let no_alloc = f.no_alloc && !file_alloc;
        let no_panic = f.no_panic && !file_panic;
        if !no_alloc && !no_panic {
            continue;
        }
        let (open, close) = f.body;
        let mut i = open;
        while i < close {
            let tok = &file.tokens[i];
            if tok.kind.is_comment() {
                i += 1;
                continue;
            }
            if no_alloc && !alloc_ok.contains(&tok.line) {
                if let Some(msg) = alloc_violation(file, i, close) {
                    out.push(Diagnostic::new(
                        Check::NoAlloc,
                        file.path.clone(),
                        tok.line,
                        tok.col,
                        format!("{msg} in `// audit: no_alloc` fn `{}`", f.name),
                    ));
                }
            }
            if no_panic && !panic_ok.contains(&tok.line) {
                if let Some(msg) = panic_violation(file, i, close) {
                    out.push(Diagnostic::new(
                        Check::NoPanic,
                        file.path.clone(),
                        tok.line,
                        tok.col,
                        format!("{msg} in `// audit: no_panic` fn `{}`", f.name),
                    ));
                }
            }
            i += 1;
        }
    }
    file.annotated_fns.len()
}

/// Is the token at `i` a `.method(` call with `method` in `set`?
fn method_call(file: &SourceFile, i: usize, end: usize, set: &[&str]) -> Option<String> {
    let name = file.tokens[i].kind.ident()?;
    if !set.contains(&name) {
        return None;
    }
    let prev = file.prev_code(i)?;
    if !file.tokens[prev].kind.is_punct(b'.') {
        return None;
    }
    let next = file.next_code(i + 1)?;
    if next >= end || !file.tokens[next].kind.is_punct(b'(') {
        return None;
    }
    Some(name.to_string())
}

/// Is the token at `i` a bare `name!` macro invocation with `name` in
/// `set`? (A preceding `.` or `::` would mean something else.)
fn macro_call(file: &SourceFile, i: usize, end: usize, set: &[&str]) -> Option<String> {
    let name = file.tokens[i].kind.ident()?;
    if !set.contains(&name) {
        return None;
    }
    let next = file.next_code(i + 1)?;
    if next >= end || !file.tokens[next].kind.is_punct(b'!') {
        return None;
    }
    if let Some(prev) = file.prev_code(i) {
        if file.tokens[prev].kind.is_punct(b'.') || file.tokens[prev].kind.is_punct(b':') {
            return None;
        }
    }
    Some(name.to_string())
}

fn alloc_violation(file: &SourceFile, i: usize, end: usize) -> Option<String> {
    let tok = &file.tokens[i];
    if let Some(m) = method_call(file, i, end, &ALLOC_METHODS) {
        return Some(format!("allocating call `.{m}(…)`"));
    }
    if let Some(m) = macro_call(file, i, end, &ALLOC_MACROS) {
        return Some(format!("allocating macro `{m}!`"));
    }
    // Type::ctor( paths.
    if let Some(ty) = tok.kind.ident() {
        if ALLOC_PATHS.iter().any(|(t, _)| *t == ty) {
            let c1 = file.next_code(i + 1)?;
            let c2 = file.next_code(c1 + 1)?;
            let m = file.next_code(c2 + 1)?;
            let p = file.next_code(m + 1)?;
            if p < end
                && file.tokens[c1].kind.is_punct(b':')
                && file.tokens[c2].kind.is_punct(b':')
                && file.tokens[p].kind.is_punct(b'(')
            {
                if let Some(method) = file.tokens[m].kind.ident() {
                    if ALLOC_PATHS.contains(&(ty, method)) {
                        return Some(format!("allocating constructor `{ty}::{method}(…)`"));
                    }
                }
            }
        }
    }
    None
}

fn panic_violation(file: &SourceFile, i: usize, end: usize) -> Option<String> {
    if let Some(m) = method_call(file, i, end, &PANIC_METHODS) {
        return Some(format!("panicking call `.{m}(…)`"));
    }
    if let Some(m) = macro_call(file, i, end, &PANIC_MACROS) {
        return Some(format!("panicking macro `{m}!`"));
    }
    // expr [ <int-literal> ]
    let tok = &file.tokens[i];
    if tok.kind.is_punct(b'[') {
        let prev = file.prev_code(i)?;
        let expr_end = match &file.tokens[prev].kind {
            TokKind::Ident(s) => !is_non_expr_keyword(s),
            TokKind::Punct(b')') | TokKind::Punct(b']') => true,
            _ => false,
        };
        if expr_end {
            let lit = file.next_code(i + 1)?;
            let close = file.next_code(lit + 1)?;
            if close < end
                && matches!(file.tokens[lit].kind, TokKind::Int(_))
                && file.tokens[close].kind.is_punct(b']')
            {
                return Some("indexing by integer literal".to_string());
            }
        }
    }
    None
}

/// Keywords that can precede `[` without it being an index expression.
fn is_non_expr_keyword(s: &str) -> bool {
    matches!(s, "return" | "in" | "mut" | "const" | "static" | "let" | "ref" | "as" | "dyn")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("t.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn clean_hot_fn_passes() {
        let src = "\
// audit: no_alloc
// audit: no_panic
fn hot(xs: &[f32], acc: &mut f32) {
    for x in xs {
        *acc += x;
    }
    debug_assert!(acc.is_finite());
    let _ = xs.get(0);
    let _ = xs.first().unwrap_or(&0.0);
}
";
        assert_eq!(diags(src), vec![]);
    }

    #[test]
    fn alloc_sites_flagged() {
        let src = "\
// audit: no_alloc
fn hot(v: &mut Vec<u32>) {
    v.push(1);
    let s = format!(\"x\");
    let b = Vec::with_capacity(4);
}
";
        let d = diags(src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d[0].message.contains(".push(…)"));
        assert_eq!(d[0].line, 3);
        assert!(d[1].message.contains("format!"));
        assert!(d[2].message.contains("Vec::with_capacity"));
    }

    #[test]
    fn panic_sites_flagged() {
        let src = "\
// audit: no_panic
fn hot(v: &[u32], m: Option<u32>) -> u32 {
    let a = m.unwrap();
    let b = v[0];
    assert!(a > 0);
    a + b
}
";
        let d = diags(src);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d[0].message.contains(".unwrap(…)"));
        assert!(d[1].message.contains("indexing by integer literal"));
        assert_eq!(d[1].line, 4);
        assert!(d[2].message.contains("assert!"));
    }

    #[test]
    fn variable_index_and_types_not_flagged() {
        let src = "\
// audit: no_panic
fn hot(v: &[u32], i: usize, w: &[u8; 4]) -> u32 {
    v[i] + u32::from(w.len() as u8)
}
";
        assert_eq!(diags(src), vec![]);
    }

    #[test]
    fn allow_escape_covers_next_line() {
        let src = "\
// audit: no_alloc
fn hot(out: &mut Vec<f32>, n: usize) {
    // audit: allow(alloc, resize to request size once per call)
    out.resize(n, 0.0);
    out.push(1.0);
}
";
        let d = diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".push(…)"));
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn unannotated_fns_ignored() {
        assert_eq!(diags("fn free() { let v = vec![1]; v[0]; }"), vec![]);
    }
}
