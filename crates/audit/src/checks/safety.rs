//! Check 1: every `unsafe` block, function, impl, or trait carries a
//! written safety rationale.
//!
//! Accepted evidence, matching the workspace's existing conventions:
//!
//! * a comment containing `SAFETY:` on the same line as the `unsafe`
//!   keyword, or on a contiguous run of comment/attribute-only lines
//!   directly above it;
//! * for `unsafe fn` declarations additionally a `# Safety` section in
//!   the doc comment block above the item.
//!
//! The attachment rule is deliberately strict — an intervening blank
//! or code line breaks it — because a SAFETY comment that has drifted
//! away from its unsafe block is a rationale nobody can audit.

use crate::diagnostics::{Check, Diagnostic};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// What an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Block,
    Fn,
    Impl,
    Trait,
    ExternBlock,
}

impl Site {
    fn describe(self) -> &'static str {
        match self {
            Site::Block => "unsafe block",
            Site::Fn => "unsafe fn",
            Site::Impl => "unsafe impl",
            Site::Trait => "unsafe trait",
            Site::ExternBlock => "unsafe extern block",
        }
    }
}

/// Per-line view: comment tokens and whether any code token exists.
struct LineInfo {
    comments: Vec<(String, bool)>, // (text, is_doc)
    has_code: bool,
    starts_attr: bool,
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) -> usize {
    if file.allows(Check::Safety) {
        return 0;
    }
    let mut lines: BTreeMap<u32, LineInfo> = BTreeMap::new();
    for tok in &file.tokens {
        let info = lines.entry(tok.line).or_insert(LineInfo {
            comments: Vec::new(),
            has_code: false,
            starts_attr: false,
        });
        match &tok.kind {
            TokKind::LineComment { text, doc } | TokKind::BlockComment { text, doc } => {
                info.comments.push((text.clone(), *doc));
            }
            kind => {
                if !info.has_code && kind.is_punct(b'#') {
                    info.starts_attr = true;
                }
                info.has_code = true;
            }
        }
    }

    let mut sites = 0usize;
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind.ident() != Some("unsafe") {
            continue;
        }
        let Some(next) = file.next_code(i + 1) else { continue };
        let site = match &file.tokens[next].kind {
            TokKind::Punct(b'{') => Site::Block,
            TokKind::Ident(s) if s == "fn" => {
                // `unsafe fn(…)` as a *type* needs no rationale; a
                // declaration has a name first.
                match file.next_code(next + 1) {
                    Some(n2) if file.tokens[n2].kind.is_punct(b'(') => continue,
                    _ => Site::Fn,
                }
            }
            TokKind::Ident(s) if s == "impl" => Site::Impl,
            TokKind::Ident(s) if s == "trait" => Site::Trait,
            TokKind::Ident(s) if s == "extern" => Site::ExternBlock,
            // `r#unsafe`-style oddities or qualifiers we don't model.
            _ => continue,
        };
        sites += 1;
        if has_rationale(&lines, tok.line, site) {
            continue;
        }
        out.push(Diagnostic::new(
            Check::Safety,
            file.path.clone(),
            tok.line,
            tok.col,
            format!(
                "{} without an attached `// SAFETY:` comment{}",
                site.describe(),
                if site == Site::Fn { " (or a `# Safety` doc section)" } else { "" }
            ),
        ));
    }
    sites
}

fn has_rationale(lines: &BTreeMap<u32, LineInfo>, line: u32, site: Site) -> bool {
    let accept = |text: &str, doc: bool| -> bool {
        text.contains("SAFETY:") || (site == Site::Fn && doc && text.contains("# Safety"))
    };
    // Same line (leading or trailing comment).
    if let Some(info) = lines.get(&line) {
        if info.comments.iter().any(|(t, d)| accept(t, *d)) {
            return true;
        }
    }
    // Contiguous comment/attribute-only lines directly above.
    let mut l = line;
    while l > 1 {
        l -= 1;
        match lines.get(&l) {
            None => return false, // blank line breaks attachment
            Some(info) if info.has_code && !info.starts_attr => return false,
            Some(info) => {
                if info.comments.iter().any(|(t, d)| accept(t, *d)) {
                    return true;
                }
                // attribute or plain comment line: keep walking up
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("t.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn annotated_sites_pass() {
        let src = r#"
fn f() {
    // SAFETY: the fd is owned.
    let x = unsafe { close(fd) };
    let y = unsafe { dup(fd) }; // SAFETY: trailing form is fine too
}

/// Does things.
///
/// # Safety
/// Caller must uphold the contract.
#[target_feature(enable = "avx")]
pub unsafe fn kernel() {}

// SAFETY: no shared state.
unsafe impl Send for X {}
"#;
        assert_eq!(diags(src), vec![]);
    }

    #[test]
    fn missing_rationales_flagged_with_spans() {
        let src = "fn f() {\n    let x = unsafe { deref(p) };\n}\n\npub unsafe fn k() {}\n";
        let d = diags(src);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].line, d[0].col), (2, 13));
        assert!(d[0].message.contains("unsafe block"));
        assert_eq!(d[1].line, 5);
        assert!(d[1].message.contains("unsafe fn"));
    }

    #[test]
    fn blank_or_code_line_breaks_attachment() {
        let src = "// SAFETY: stale, drifted away\n\nfn f() { unsafe { x() } }\n";
        assert_eq!(diags(src).len(), 1);
        let src2 = "// SAFETY: for the first\nlet a = unsafe { x() };\nlet b = unsafe { y() };\n";
        assert_eq!(diags(src2).len(), 1);
    }

    #[test]
    fn fn_pointer_type_is_exempt() {
        assert_eq!(diags("type H = unsafe fn(i32) -> i32;\n"), vec![]);
    }

    #[test]
    fn file_allow_suppresses() {
        let src = "// audit: allow-file(safety, vetted by hand)\nfn f() { unsafe { x() } }\n";
        assert_eq!(diags(src), vec![]);
    }
}
