//! Check 5: metric-name consistency.
//!
//! Three views of the metric inventory must agree exactly:
//!
//! 1. **Code** — every family registered on the serve registry
//!    (`registry.counter("uadb_…")`, `gauge`, `float_gauge`,
//!    `histogram`) plus every family rendered via a hardcoded
//!    `"# TYPE uadb_… "` exposition string, collected from production
//!    sources (`src/` trees, `#[cfg(test)]` modules excluded).
//! 2. **README** — the names listed between
//!    `<!-- audit:metrics:begin -->` and `<!-- audit:metrics:end -->`.
//! 3. **Inventory test** — the string literals between
//!    `// audit: metrics-inventory begin` / `end` markers in the
//!    exposition-inventory golden test.
//!
//! A metric renamed in code without updating the operator docs, or a
//! dashboard-facing name dropped from the exposition, fails the audit
//! with the exact site of the disagreement.

use crate::diagnostics::{Check, Diagnostic};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

const REGISTER_METHODS: [&str; 4] = ["counter", "gauge", "float_gauge", "histogram"];
const TYPE_PREFIX: &str = "# TYPE ";
const README_BEGIN: &str = "<!-- audit:metrics:begin -->";
const README_END: &str = "<!-- audit:metrics:end -->";

/// Name → first site, for stable diagnostics.
pub type Names = BTreeMap<String, (String, u32, u32)>;

fn is_metric_name(s: &str) -> bool {
    s.starts_with("uadb_")
        && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Collects registered / rendered family names from one production
/// source file into `names`.
pub fn collect_code(file: &SourceFile, names: &mut Names) {
    if file.allows(Check::Metrics) {
        return;
    }
    let mut add = |name: &str, line: u32, col: u32| {
        names.entry(name.to_string()).or_insert_with(|| (file.path.clone(), line, col));
    };
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_cfg_test(i) {
            continue;
        }
        match &tok.kind {
            // . <method> ( "uadb_…"
            TokKind::Ident(m) if REGISTER_METHODS.contains(&m.as_str()) => {
                let Some(prev) = file.prev_code(i) else { continue };
                if !file.tokens[prev].kind.is_punct(b'.') {
                    continue;
                }
                let Some(paren) = file.next_code(i + 1) else { continue };
                if !file.tokens[paren].kind.is_punct(b'(') {
                    continue;
                }
                let Some(arg) = file.next_code(paren + 1) else { continue };
                if let TokKind::Str(s) = &file.tokens[arg].kind {
                    if is_metric_name(s) {
                        add(s, file.tokens[arg].line, file.tokens[arg].col);
                    }
                }
            }
            // Hardcoded exposition sections: "# TYPE uadb_x counter\n".
            TokKind::Str(s) if s.contains(TYPE_PREFIX) => {
                for (off, _) in s.match_indices(TYPE_PREFIX) {
                    let rest = &s[off + TYPE_PREFIX.len()..];
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if is_metric_name(&name) {
                        add(&name, tok.line, tok.col);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Extracts the marker-bracketed inventory from the exposition test.
pub fn collect_inventory(file: &SourceFile) -> Result<Names, Diagnostic> {
    use crate::pragma::Pragma;
    let mut begin = None;
    let mut end = None;
    for p in &file.pragmas {
        match p.pragma {
            Pragma::InventoryBegin if begin.is_none() => begin = Some(p.line),
            Pragma::InventoryEnd if end.is_none() => end = Some(p.line),
            _ => {}
        }
    }
    let (Some(b), Some(e)) = (begin, end) else {
        return Err(Diagnostic::new(
            Check::Metrics,
            file.path.clone(),
            1,
            1,
            "inventory test is missing `// audit: metrics-inventory begin`/`end` markers",
        ));
    };
    if e <= b {
        return Err(Diagnostic::new(
            Check::Metrics,
            file.path.clone(),
            e,
            1,
            "`metrics-inventory end` marker precedes `begin`",
        ));
    }
    let mut names = Names::new();
    for tok in &file.tokens {
        if tok.line <= b || tok.line >= e {
            continue;
        }
        if let TokKind::Str(s) = &tok.kind {
            if is_metric_name(s) {
                names.entry(s.clone()).or_insert((file.path.clone(), tok.line, tok.col));
            }
        }
    }
    Ok(names)
}

/// Extracts backtick-quoted names from the README's marked region.
pub fn collect_readme(path: &str, src: &str) -> Result<Names, Diagnostic> {
    let mut names = Names::new();
    let mut inside = false;
    let mut saw_begin = false;
    let mut saw_end = false;
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        if line.contains(README_BEGIN) {
            inside = true;
            saw_begin = true;
            continue;
        }
        if line.contains(README_END) {
            inside = false;
            saw_end = true;
            continue;
        }
        if !inside {
            continue;
        }
        // `uadb_…` occurrences, backtick-delimited.
        let mut rest = line;
        let mut col_base = 0u32;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let candidate = &after[..close];
            if is_metric_name(candidate) {
                names.entry(candidate.to_string()).or_insert((
                    path.to_string(),
                    lineno,
                    col_base + open as u32 + 2,
                ));
            }
            col_base += (open + 1 + close + 1) as u32;
            rest = &after[close + 1..];
        }
    }
    if !saw_begin || !saw_end {
        return Err(Diagnostic::new(
            Check::Metrics,
            path.to_string(),
            1,
            1,
            format!("README is missing the `{README_BEGIN}` / `{README_END}` markers"),
        ));
    }
    Ok(names)
}

/// Pairwise set comparison; every disagreement gets a diagnostic at
/// the most actionable site.
pub fn compare(code: &Names, readme: &Names, inventory: &Names, out: &mut Vec<Diagnostic>) {
    let views: [(&Names, &str); 2] = [(readme, "README inventory"), (inventory, "inventory test")];
    for (name, (file, line, col)) in code {
        for (view, what) in views {
            if !view.contains_key(name) {
                let (vf, vl, _) =
                    view.values().next().cloned().unwrap_or((file.clone(), *line, *col));
                out.push(Diagnostic::new(
                    Check::Metrics,
                    file.clone(),
                    *line,
                    *col,
                    format!("metric `{name}` is in code but missing from the {what} ({vf}:{vl})"),
                ));
            }
        }
    }
    for (view, what) in views {
        for (name, (file, line, col)) in view {
            if !code.contains_key(name) {
                out.push(Diagnostic::new(
                    Check::Metrics,
                    file.clone(),
                    *line,
                    *col,
                    format!("{what} lists `{name}`, which no production code registers or renders"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: &[&str]) -> Names {
        n.iter().map(|s| (s.to_string(), ("x".to_string(), 1, 1))).collect()
    }

    #[test]
    fn code_collection_registrations_and_type_strings() {
        let src = r##"
fn build(registry: &Registry) {
    let c = registry.counter("uadb_requests_total", "help");
    let h = registry.histogram("uadb_latency_seconds", "help", &BOUNDS);
    out.push_str("# TYPE uadb_gemm_calls_total counter\n");
}
#[cfg(test)]
mod tests {
    fn t(r: &Registry) { r.counter("uadb_test_only_total", "x"); }
}
"##;
        let f = SourceFile::new("telemetry.rs".into(), src);
        let mut got = Names::new();
        collect_code(&f, &mut got);
        let keys: Vec<&str> = got.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec!["uadb_gemm_calls_total", "uadb_latency_seconds", "uadb_requests_total"]
        );
        assert_eq!(got["uadb_requests_total"].1, 3);
    }

    #[test]
    fn inventory_markers_and_strings() {
        let src = "\
// audit: metrics-inventory begin
const INVENTORY: &[&str] = &[
    \"uadb_requests_total\",
    \"uadb_latency_seconds\",
];
// audit: metrics-inventory end
const OTHER: &str = \"uadb_not_in_inventory\";
";
        let f = SourceFile::new("inv.rs".into(), src);
        let got = collect_inventory(&f).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.contains_key("uadb_requests_total"));

        let bare = SourceFile::new("inv.rs".into(), "const X: u8 = 0;");
        let err = collect_inventory(&bare).unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn readme_markers_and_backticks() {
        let src = "\
# metrics
<!-- audit:metrics:begin -->
| `uadb_requests_total` | counter | per-request |
| `uadb_latency_seconds` | histogram | with `backend` label |
<!-- audit:metrics:end -->
stray `uadb_outside_total` is ignored
";
        let got = collect_readme("README.md", src).unwrap();
        let keys: Vec<&str> = got.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["uadb_latency_seconds", "uadb_requests_total"]);
        assert_eq!(got["uadb_requests_total"].1, 3);

        let err = collect_readme("README.md", "no markers").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn compare_flags_all_disagreements() {
        let code = names(&["uadb_a", "uadb_b"]);
        let readme = names(&["uadb_a", "uadb_stale"]);
        let inv = names(&["uadb_a", "uadb_b"]);
        let mut out = Vec::new();
        compare(&code, &readme, &inv, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(
            |d| d.message.contains("`uadb_b`") && d.message.contains("missing from the README")
        ));
        assert!(out.iter().any(|d| d.message.contains("`uadb_stale`")));
    }

    #[test]
    fn agreement_is_silent() {
        let all = names(&["uadb_a"]);
        let mut out = Vec::new();
        compare(&all, &all, &all, &mut out);
        assert!(out.is_empty());
    }
}
