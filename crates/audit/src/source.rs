//! Per-file source model shared by the checks: the token stream, its
//! pragmas, per-line structure, `#[cfg(test)]` regions, and the
//! bodies of `// audit:`-annotated functions.

use crate::diagnostics::Check;
use crate::lexer::{lex, TokKind, Token};
use crate::pragma::{parse_pragmas, Pragma, PragmaError, SitedPragma};

/// One lexed source file plus everything the checks ask about it.
pub struct SourceFile {
    /// `/`-separated path relative to the audited root.
    pub path: String,
    pub tokens: Vec<Token>,
    pub pragmas: Vec<SitedPragma>,
    pub pragma_errors: Vec<PragmaError>,
    /// Checks suppressed for the whole file via `allow-file`.
    pub file_allows: Vec<Check>,
    /// Token-index ranges (`start..end`, exclusive) lying inside
    /// `#[cfg(test)] mod … { … }` bodies.
    pub cfg_test_regions: Vec<(usize, usize)>,
    /// Bodies of `// audit: no_alloc` / `no_panic` functions.
    pub annotated_fns: Vec<AnnotatedFn>,
    /// Misplaced annotations (pragma not followed by a `fn` with a
    /// body) — reported rather than silently dropped.
    pub dangling: Vec<(Pragma, u32, u32)>,
}

/// A function body subject to hot-path lint(s).
#[derive(Debug)]
pub struct AnnotatedFn {
    pub name: String,
    pub no_alloc: bool,
    pub no_panic: bool,
    /// Token-index range of the body, *including* the braces.
    pub body: (usize, usize),
    pub line: u32,
}

impl SourceFile {
    pub fn new(path: String, src: &str) -> Self {
        let tokens = lex(src);
        let (pragmas, pragma_errors) = parse_pragmas(&tokens);
        let file_allows = crate::pragma::file_allows(&pragmas);
        let cfg_test_regions = find_cfg_test_regions(&tokens);
        let (annotated_fns, dangling) = find_annotated_fns(&tokens);
        Self {
            path,
            tokens,
            pragmas,
            pragma_errors,
            file_allows,
            cfg_test_regions,
            annotated_fns,
            dangling,
        }
    }

    pub fn allows(&self, check: Check) -> bool {
        self.file_allows.contains(&check)
    }

    pub fn in_cfg_test(&self, tok_idx: usize) -> bool {
        self.cfg_test_regions.iter().any(|&(s, e)| tok_idx >= s && tok_idx < e)
    }

    /// Index of the next non-comment token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.tokens.get(i) {
            if !t.kind.is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-comment token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        self.tokens[..i].iter().rposition(|t| !t.kind.is_comment())
    }
}

/// Finds `#[cfg(test)]` followed by `mod <name> {` and returns the
/// token range of each such body. (A `#[cfg(test)]` on an individual
/// item is not a region; the convention in this workspace is test
/// modules, which is what metric-name collection must skip.)
fn find_cfg_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].kind.is_comment()).collect();
    let at = |ci: usize| -> Option<&TokKind> { code.get(ci).map(|&i| &tokens[i].kind) };
    for w in 0..code.len() {
        // # [ cfg ( test ) ] mod <ident> {
        let pat_ok = at(w).is_some_and(|k| k.is_punct(b'#'))
            && at(w + 1).is_some_and(|k| k.is_punct(b'['))
            && at(w + 2).and_then(|k| k.ident()) == Some("cfg")
            && at(w + 3).is_some_and(|k| k.is_punct(b'('))
            && at(w + 4).and_then(|k| k.ident()) == Some("test")
            && at(w + 5).is_some_and(|k| k.is_punct(b')'))
            && at(w + 6).is_some_and(|k| k.is_punct(b']'))
            && at(w + 7).and_then(|k| k.ident()) == Some("mod")
            && at(w + 9).is_some_and(|k| k.is_punct(b'{'));
        if !pat_ok {
            continue;
        }
        let open = code[w + 9];
        if let Some(close) = match_brace(tokens, open) {
            regions.push((open, close + 1));
        }
    }
    regions
}

/// Given the index of a `{` token, returns the index of its matching
/// `}` (None if the file ends first).
pub fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Tokens that may legitimately sit between an annotation pragma and
/// its `fn`: visibility and qualifiers (attributes are skipped whole
/// before this is consulted).
fn is_fn_prelude(kind: &TokKind) -> bool {
    match kind {
        TokKind::Ident(s) => {
            matches!(s.as_str(), "pub" | "crate" | "in" | "const" | "async" | "unsafe" | "extern")
        }
        TokKind::Str(_) => true,             // extern "C"
        TokKind::Punct(b'(' | b')') => true, // pub(crate)
        _ => kind.is_comment(),
    }
}

fn self_next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while let Some(t) = tokens.get(i) {
        if !t.kind.is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn find_annotated_fns(tokens: &[Token]) -> (Vec<AnnotatedFn>, Vec<(Pragma, u32, u32)>) {
    let mut fns: Vec<AnnotatedFn> = Vec::new();
    let mut dangling = Vec::new();
    let mut pending: Vec<(Pragma, u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        if let TokKind::LineComment { text, doc: false } = &tok.kind {
            let t = text.trim_start();
            if let Some(rest) = t.strip_prefix("audit:") {
                match rest.trim() {
                    "no_alloc" => pending.push((Pragma::NoAlloc, tok.line, tok.col)),
                    "no_panic" => pending.push((Pragma::NoPanic, tok.line, tok.col)),
                    _ => {}
                }
            }
            i += 1;
            continue;
        }
        if pending.is_empty() {
            i += 1;
            continue;
        }
        if tok.kind.is_punct(b'#') {
            // Skip a whole attribute: its argument tokens are arbitrary
            // and must not be mistaken for the annotated item.
            if let Some(open) = self_next_code(tokens, i + 1) {
                if tokens[open].kind.is_punct(b'[') {
                    let mut depth = 0i64;
                    let mut j = open;
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            TokKind::Punct(b'[') => depth += 1,
                            TokKind::Punct(b']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
        }
        if tok.kind.ident() == Some("fn") {
            // Name, then body: the first `{` with all signature
            // brackets closed. A `;` first means a bodyless signature.
            let name = tokens[i + 1..]
                .iter()
                .find_map(|t| t.kind.ident())
                .unwrap_or("<anonymous>")
                .to_string();
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut body = None;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokKind::Punct(b'(' | b'[') => depth += 1,
                    TokKind::Punct(b')' | b']') => depth -= 1,
                    TokKind::Punct(b'{') if depth == 0 => {
                        body = match_brace(tokens, j).map(|close| (j, close + 1));
                        break;
                    }
                    TokKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            match body {
                Some(body) => fns.push(AnnotatedFn {
                    name,
                    no_alloc: pending.iter().any(|(p, ..)| *p == Pragma::NoAlloc),
                    no_panic: pending.iter().any(|(p, ..)| *p == Pragma::NoPanic),
                    body,
                    line: tok.line,
                }),
                None => dangling.append(&mut pending),
            }
            pending.clear();
            i = j + 1;
            continue;
        }
        if !is_fn_prelude(&tok.kind) {
            // The annotation was attached to something that is not a
            // function — surface it instead of silently ignoring.
            dangling.append(&mut pending);
        }
        i += 1;
    }
    dangling.extend(pending);
    (fns, dangling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_found() {
        let src = "\
fn a() {}
#[cfg(test)]
mod tests {
    fn b() {}
}
fn c() {}
";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.cfg_test_regions.len(), 1);
        let b_idx = f.tokens.iter().position(|t| t.kind.ident() == Some("b")).unwrap();
        let c_idx = f.tokens.iter().position(|t| t.kind.ident() == Some("c")).unwrap();
        assert!(f.in_cfg_test(b_idx));
        assert!(!f.in_cfg_test(c_idx));
    }

    #[test]
    fn annotated_fn_bodies() {
        let src = "\
// audit: no_alloc
// audit: no_panic
#[inline]
pub fn hot(x: &[u8; 4]) -> u8 {
    x[0]
}

// audit: no_alloc
struct NotAFn;
";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.annotated_fns.len(), 1);
        let a = &f.annotated_fns[0];
        assert_eq!(a.name, "hot");
        assert!(a.no_alloc && a.no_panic);
        assert_eq!(f.dangling.len(), 1);
    }

    #[test]
    fn fn_with_where_and_nested_braces() {
        let src = "\
// audit: no_panic
fn generic<T: Clone>(v: Vec<T>) -> usize
where
    T: Send,
{
    let inner = { v.len() };
    inner
}
";
        let f = SourceFile::new("x.rs".into(), src);
        assert_eq!(f.annotated_fns.len(), 1);
        let (open, close) = f.annotated_fns[0].body;
        assert!(f.tokens[open].kind.is_punct(b'{'));
        assert_eq!(close, f.tokens.len());
    }
}
