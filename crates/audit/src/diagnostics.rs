//! Diagnostic records and their human/JSON renderings.

use std::fmt;
use std::path::Path;

/// Which invariant a diagnostic belongs to. The names double as the
/// file-level pragma keys (`// audit: allow-file(atomics, reason)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// Every `unsafe` block/fn/impl carries a SAFETY rationale.
    Safety,
    /// Every atomic-ordering use site matches the blessed table.
    Atomics,
    /// `// audit: no_alloc` functions do not allocate.
    NoAlloc,
    /// `// audit: no_panic` functions cannot panic via
    /// unwrap/expect/literal indexing.
    NoPanic,
    /// Registered metric names, the README inventory, and the
    /// exposition-inventory test agree exactly.
    Metrics,
    /// The audit's own configuration surface: malformed `// audit:`
    /// comments and annotations attached to nothing. Always fatal — a
    /// typo'd pragma that silently did nothing would defeat the check
    /// it was meant to configure.
    Pragma,
}

impl Check {
    pub fn name(self) -> &'static str {
        match self {
            Check::Safety => "safety",
            Check::Atomics => "atomics",
            Check::NoAlloc => "no_alloc",
            Check::NoPanic => "no_panic",
            Check::Metrics => "metrics",
            Check::Pragma => "pragma",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "safety" => Check::Safety,
            "atomics" => Check::Atomics,
            "no_alloc" => Check::NoAlloc,
            "no_panic" => Check::NoPanic,
            "metrics" => Check::Metrics,
            _ => return None,
        })
    }

    pub fn all() -> [Check; 6] {
        [
            Check::Safety,
            Check::Atomics,
            Check::NoAlloc,
            Check::NoPanic,
            Check::Metrics,
            Check::Pragma,
        ]
    }
}

/// One finding: a file:line:col span plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub check: Check,
    /// Path relative to the audited root, `/`-separated.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        check: Check,
        file: impl Into<String>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Self {
        Self { check, file: file.into(), line, col, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.check.name(),
            self.message
        )
    }
}

/// Normalises a path for diagnostics: relative to `root` when possible,
/// always `/`-separated.
pub fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Machine-readable report: a stable JSON document with per-check
/// counts and every diagnostic's span, for CI annotation tooling.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(256 + diags.len() * 128);
    out.push_str("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"check\": \"");
        out.push_str(d.check.name());
        out.push_str("\", \"file\": \"");
        json_escape(&d.file, &mut out);
        out.push_str(&format!("\", \"line\": {}, \"col\": {}, \"message\": \"", d.line, d.col));
        json_escape(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counts\": {");
    for (i, check) in Check::all().into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let n = diags.iter().filter(|d| d.check == check).count();
        out.push_str(&format!("\"{}\": {}", check.name(), n));
    }
    out.push_str(&format!("}},\n  \"total\": {}\n}}\n", diags.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json() {
        let d = Diagnostic::new(Check::Safety, "src/a.rs", 3, 7, "unsafe block without SAFETY");
        assert_eq!(d.to_string(), "src/a.rs:3:7: [safety] unsafe block without SAFETY");
        let json = render_json(&[d]);
        assert!(json.contains("\"check\": \"safety\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"no_alloc\": 0"));
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(Check::Metrics, "a.rs", 1, 1, "quote \" back \\ tab\t");
        let json = render_json(&[d]);
        assert!(json.contains("quote \\\" back \\\\ tab\\t"));
    }
}
