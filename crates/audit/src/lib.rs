//! `uadb-audit` — project-invariant static analysis for the UADB
//! workspace.
//!
//! The serving core deliberately uses `unsafe` (SIMD kernels, raw
//! epoll) and lock-free atomics (telemetry, the batching pool). Those
//! are exactly the constructs where a small unreviewed edit — a
//! dropped SAFETY argument, a weakened ordering, an allocation on the
//! reactor path — ships a latent bug that no unit test catches. This
//! crate enforces five invariants *as CI gates*, with file:line spans
//! and a JSON report:
//!
//! 1. `safety` — every `unsafe` block/fn/impl carries a rationale.
//! 2. `atomics` — every `Ordering::*` use site matches the blessed
//!    table in `audit/atomics.toml`, including per-file counts.
//! 3. `no_alloc` — `// audit: no_alloc` functions do not allocate.
//! 4. `no_panic` — `// audit: no_panic` functions cannot panic via
//!    unwrap/expect/panicking macros/literal indexing.
//! 5. `metrics` — metric names in code, the README inventory, and the
//!    exposition-inventory test agree exactly.
//!
//! Everything is dependency-free: a hand-rolled lexer instead of
//! `syn`, a hand-rolled TOML subset instead of `toml`. The build must
//! work offline and the audit must never be the thing that breaks
//! first.

pub mod bless;
pub mod checks;
pub mod diagnostics;
pub mod lexer;
pub mod pragma;
pub mod source;
pub mod walk;

use bless::BlessTable;
use checks::{atomics, hotpath, metrics, safety};
use diagnostics::{display_path, Check, Diagnostic};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Where the audit reads its inputs from. All paths default relative
/// to `root`, so `uadb-audit --root .` needs no further flags.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    pub root: PathBuf,
    /// The blessed-atomics table.
    pub atomics: PathBuf,
    /// The operator-facing metrics inventory (markdown).
    pub readme: PathBuf,
    /// The exposition-inventory golden test.
    pub inventory: PathBuf,
}

impl AuditConfig {
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        Self {
            atomics: root.join("audit/atomics.toml"),
            readme: root.join("README.md"),
            inventory: root.join("crates/serve/tests/exposition_inventory.rs"),
            root,
        }
    }
}

/// What the run actually exercised — so the self-run test can assert
/// the checks saw real sites rather than vacuously passing.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    pub files_scanned: usize,
    pub unsafe_sites: usize,
    pub atomic_sites: usize,
    pub annotated_fns: usize,
    pub metric_families: usize,
}

/// Runs all checks. `Err` is reserved for I/O-level failure (unreadable
/// root); everything else — including unparseable audit inputs — comes
/// back as diagnostics so CI shows it with a span.
pub fn run(cfg: &AuditConfig) -> std::io::Result<(Vec<Diagnostic>, Stats)> {
    let mut out = Vec::new();
    let mut stats = Stats::default();

    let table = match std::fs::read_to_string(&cfg.atomics) {
        Ok(src) => match BlessTable::parse(&src) {
            Ok(t) => Some(t),
            Err(e) => {
                out.push(Diagnostic::new(
                    Check::Atomics,
                    display_path(&cfg.root, &cfg.atomics),
                    e.line,
                    1,
                    format!("cannot parse blessed-atomics table: {}", e.message),
                ));
                None
            }
        },
        Err(e) => {
            out.push(Diagnostic::new(
                Check::Atomics,
                display_path(&cfg.root, &cfg.atomics),
                1,
                1,
                format!("cannot read blessed-atomics table: {e}"),
            ));
            None
        }
    };

    let mut all_sites: BTreeMap<String, Vec<atomics::AtomicSite>> = BTreeMap::new();
    let mut code_names = metrics::Names::new();
    let mut inventory_file: Option<SourceFile> = None;

    for path in walk::rust_files(&cfg.root)? {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            // Non-UTF-8 or vanished mid-walk: nothing lexical to check.
            Err(_) => continue,
        };
        let rel = display_path(&cfg.root, &path);
        let file = SourceFile::new(rel.clone(), &src);
        stats.files_scanned += 1;

        for e in &file.pragma_errors {
            out.push(Diagnostic::new(Check::Pragma, rel.clone(), e.line, e.col, e.message.clone()));
        }
        for (p, line, col) in &file.dangling {
            let name = match p {
                pragma::Pragma::NoAlloc => "no_alloc",
                pragma::Pragma::NoPanic => "no_panic",
                _ => "annotation",
            };
            out.push(Diagnostic::new(
                Check::Pragma,
                rel.clone(),
                *line,
                *col,
                format!("dangling `// audit: {name}` — not followed by a fn with a body"),
            ));
        }

        stats.unsafe_sites += safety::check(&file, &mut out);
        stats.annotated_fns += hotpath::check(&file, &mut out);

        let sites = atomics::collect(&file);
        stats.atomic_sites += sites.len();
        if !sites.is_empty() {
            all_sites.insert(rel.clone(), sites);
        }

        // Production sources only: `src/` trees feed the metric-name
        // set; test binaries echo names without owning them.
        if rel.contains("/src/") || rel.starts_with("src/") {
            metrics::collect_code(&file, &mut code_names);
        }

        if path == cfg.inventory {
            inventory_file = Some(file);
        }
    }

    if let Some(table) = &table {
        atomics::compare(table, &display_path(&cfg.root, &cfg.atomics), &all_sites, &mut out);
    }

    stats.metric_families = code_names.len();
    let readme_names = match std::fs::read_to_string(&cfg.readme) {
        Ok(src) => match metrics::collect_readme(&display_path(&cfg.root, &cfg.readme), &src) {
            Ok(n) => Some(n),
            Err(d) => {
                out.push(d);
                None
            }
        },
        Err(e) => {
            out.push(Diagnostic::new(
                Check::Metrics,
                display_path(&cfg.root, &cfg.readme),
                1,
                1,
                format!("cannot read README inventory: {e}"),
            ));
            None
        }
    };
    let inventory_names = match &inventory_file {
        Some(f) => match metrics::collect_inventory(f) {
            Ok(n) => Some(n),
            Err(d) => {
                out.push(d);
                None
            }
        },
        None => {
            out.push(Diagnostic::new(
                Check::Metrics,
                display_path(&cfg.root, &cfg.inventory),
                1,
                1,
                "exposition-inventory test not found under the audited root",
            ));
            None
        }
    };
    if let (Some(readme), Some(inventory)) = (readme_names, inventory_names) {
        metrics::compare(&code_names, &readme, &inventory, &mut out);
    }

    out.sort_by(|a, b| (&a.file, a.line, a.col, a.check).cmp(&(&b.file, b.line, b.col, b.check)));
    Ok((out, stats))
}
