//! A minimal hand-rolled Rust lexer.
//!
//! The audit checks are lexical: they need identifiers, punctuation,
//! string literals, and — unusually for a lexer — **comments**, because
//! `// SAFETY:` comments and `// audit:` pragmas are part of the
//! language this tool checks. The lexer therefore keeps comments in the
//! token stream (tagged with whether they are doc comments) instead of
//! discarding them.
//!
//! It is deliberately not a full Rust lexer: nested generics, pattern
//! syntax and the like all come out as plain punctuation, which is all
//! the checks need. The two genuinely tricky corners it does handle are
//! raw strings (`r#"…"#`, any hash depth, byte variants) and the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`), because
//! misreading either would silently desynchronise every downstream
//! check.

/// One lexical token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    /// 1-based column of the token's first byte.
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `Ordering`, …).
    Ident(String),
    /// Lifetime (`'a`), without the quote.
    Lifetime(String),
    /// String literal: the raw source text **between** the delimiters,
    /// escapes unprocessed. Covers `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// and the raw-byte combinations.
    Str(String),
    /// Character or byte literal (contents irrelevant to the checks).
    Char,
    /// Integer literal, as written (`42`, `0x10`, `1_000u64`).
    Int(String),
    /// Float literal, as written.
    Float(String),
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct(u8),
    /// `//` comment. `text` excludes the slashes; `doc` is true for
    /// `///` and `//!` forms.
    LineComment { text: String, doc: bool },
    /// `/* … */` comment (nesting handled), delimiters excluded.
    BlockComment { text: String, doc: bool },
}

impl TokKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Comment text, for either comment form.
    pub fn comment_text(&self) -> Option<&str> {
        match self {
            TokKind::LineComment { text, .. } | TokKind::BlockComment { text, .. } => Some(text),
            _ => None,
        }
    }

    /// True for `///`, `//!`, `/** … */`, `/*! … */`.
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self,
            TokKind::LineComment { doc: true, .. } | TokKind::BlockComment { doc: true, .. }
        )
    }

    pub fn is_comment(&self) -> bool {
        matches!(self, TokKind::LineComment { .. } | TokKind::BlockComment { .. })
    }

    pub fn is_punct(&self, b: u8) -> bool {
        matches!(self, TokKind::Punct(p) if *p == b)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if !pred(b) {
                break;
            }
            self.bump();
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes a whole source file. Never fails: unterminated constructs run
/// to end-of-file, which keeps the checks usable on half-written code.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { bytes: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut toks = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                cur.eat_while(|b| b != b'\n');
                let full = &src[start..cur.pos];
                let body = &full[2..];
                let doc = body.starts_with('/') && !body.starts_with("//") || body.starts_with('!');
                toks.push(Token {
                    kind: TokKind::LineComment { text: body.to_string(), doc },
                    line,
                    col,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let full = &src[start..cur.pos];
                let inner =
                    full.strip_prefix("/*").unwrap_or(full).strip_suffix("*/").unwrap_or(full);
                let doc =
                    inner.starts_with('*') && !inner.starts_with("**") || inner.starts_with('!');
                toks.push(Token {
                    kind: TokKind::BlockComment { text: inner.to_string(), doc },
                    line,
                    col,
                });
            }
            b'"' => {
                toks.push(Token { kind: lex_string(&mut cur, src), line, col });
            }
            b'r' | b'b' if starts_string_prefix(&cur) => {
                // r"…", r#"…"#, b"…", br"…", rb… — consume the prefix
                // letters and hashes, then the string body.
                toks.push(Token { kind: lex_prefixed_string(&mut cur, src), line, col });
            }
            b'\'' => {
                // Lifetime or char literal. After the quote: an escape
                // means char; an identifier immediately closed by
                // another quote means char ('a'); otherwise lifetime.
                if cur.peek(1) == Some(b'\\') {
                    lex_char_body(&mut cur);
                    toks.push(Token { kind: TokKind::Char, line, col });
                } else if cur.peek(1).is_some_and(is_ident_start) {
                    // Find the end of the identifier run.
                    let mut ahead = 2;
                    while cur.peek(ahead).is_some_and(is_ident_continue) {
                        ahead += 1;
                    }
                    if cur.peek(ahead) == Some(b'\'') && ahead == 2 {
                        lex_char_body(&mut cur);
                        toks.push(Token { kind: TokKind::Char, line, col });
                    } else {
                        cur.bump(); // the quote
                        let start = cur.pos;
                        cur.eat_while(is_ident_continue);
                        toks.push(Token {
                            kind: TokKind::Lifetime(src[start..cur.pos].to_string()),
                            line,
                            col,
                        });
                    }
                } else {
                    // ' followed by punctuation or a quote: char-ish;
                    // consume through the closing quote.
                    lex_char_body(&mut cur);
                    toks.push(Token { kind: TokKind::Char, line, col });
                }
            }
            b'0'..=b'9' => {
                toks.push(Token { kind: lex_number(&mut cur, src), line, col });
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                cur.eat_while(is_ident_continue);
                toks.push(Token {
                    kind: TokKind::Ident(src[start..cur.pos].to_string()),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                toks.push(Token { kind: TokKind::Punct(b), line, col });
            }
        }
    }
    toks
}

/// Is the `r`/`b` at the cursor the start of a (raw/byte) string or
/// char prefix rather than a plain identifier?
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    // Longest prefix runs are two letters (`br`, `rb`) plus hashes.
    let mut ahead = 0;
    let mut letters = 0;
    while letters < 2 {
        match cur.peek(ahead) {
            Some(b'r') | Some(b'b') => {
                ahead += 1;
                letters += 1;
            }
            _ => break,
        }
    }
    if letters == 0 {
        return false;
    }
    loop {
        match cur.peek(ahead) {
            Some(b'#') => ahead += 1,
            Some(b'"') => return true,
            Some(b'\'') => return letters == 1 && cur.peek(0) == Some(b'b'),
            _ => return false,
        }
    }
}

fn lex_prefixed_string(cur: &mut Cursor<'_>, src: &str) -> TokKind {
    let mut raw = false;
    while let Some(b) = cur.peek(0) {
        match b {
            b'r' => {
                raw = true;
                cur.bump();
            }
            b'b' => {
                cur.bump();
            }
            _ => break,
        }
    }
    if cur.peek(0) == Some(b'\'') {
        // Byte char literal b'x'.
        lex_char_body(cur);
        return TokKind::Char;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let start = cur.pos;
    if raw {
        // Scan for `"` followed by `hashes` hash marks.
        loop {
            match cur.peek(0) {
                None => return TokKind::Str(src[start..cur.pos].to_string()),
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..hashes {
                        if cur.peek(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let body = src[start..cur.pos].to_string();
                        cur.bump();
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        return TokKind::Str(body);
                    }
                    cur.bump();
                }
                Some(_) => {
                    cur.bump();
                }
            }
        }
    } else {
        lex_cooked_string_body(cur, src, start)
    }
}

fn lex_string(cur: &mut Cursor<'_>, src: &str) -> TokKind {
    cur.bump(); // opening quote
    let start = cur.pos;
    lex_cooked_string_body(cur, src, start)
}

fn lex_cooked_string_body(cur: &mut Cursor<'_>, src: &str, start: usize) -> TokKind {
    loop {
        match cur.peek(0) {
            None => return TokKind::Str(src[start..cur.pos].to_string()),
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                let body = src[start..cur.pos].to_string();
                cur.bump();
                return TokKind::Str(body);
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

/// Consumes a char/byte-char literal starting at the opening quote.
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => return,
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'\'') => {
                cur.bump();
                return;
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>, src: &str) -> TokKind {
    let start = cur.pos;
    let mut float = false;
    // Hex/octal/binary prefixes take a simple alphanumeric run.
    if cur.peek(0) == Some(b'0')
        && matches!(cur.peek(1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'))
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokKind::Int(src[start..cur.pos].to_string());
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // A dot continues the number only when followed by a digit — `0..n`
    // and `1.max(x)` must leave the dot alone.
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        cur.bump();
        cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // Exponent.
    if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
        let sign = matches!(cur.peek(1), Some(b'+') | Some(b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            cur.bump();
            if sign {
                cur.bump();
            }
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix (u64, f32, usize, …).
    cur.eat_while(is_ident_continue);
    let text = src[start..cur.pos].to_string();
    if float || text.contains("f32") || text.contains("f64") {
        TokKind::Float(text)
    } else {
        TokKind::Int(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = lex("fn main() {\n    x.y();\n}");
        assert_eq!(toks[0].kind, TokKind::Ident("fn".into()));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        let dot = toks.iter().find(|t| t.kind.is_punct(b'.')).unwrap();
        assert_eq!((dot.line, dot.col), (2, 6));
    }

    #[test]
    fn comments_kept_with_doc_flag() {
        let toks = kinds("// plain\n/// doc\n//! inner\n//// not doc\n/* block */\n/** bdoc */");
        assert_eq!(
            toks,
            vec![
                TokKind::LineComment { text: " plain".into(), doc: false },
                TokKind::LineComment { text: "/ doc".into(), doc: true },
                TokKind::LineComment { text: "! inner".into(), doc: true },
                TokKind::LineComment { text: "// not doc".into(), doc: false },
                TokKind::BlockComment { text: " block ".into(), doc: false },
                TokKind::BlockComment { text: "* bdoc ".into(), doc: true },
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], TokKind::Ident("x".into()));
    }

    #[test]
    fn strings_raw_and_escaped() {
        assert_eq!(kinds(r#""a\"b""#), vec![TokKind::Str(r#"a\"b"#.into())]);
        assert_eq!(
            kinds(r###"r#"raw "quoted" text"#"###),
            vec![TokKind::Str(r#"raw "quoted" text"#.into())]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![TokKind::Str("bytes".into())]);
        // A comment marker inside a string stays a string.
        assert_eq!(kinds(r#""// not a comment""#), vec![TokKind::Str("// not a comment".into())]);
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(kinds("'a"), vec![TokKind::Lifetime("a".into())]);
        assert_eq!(kinds("'static"), vec![TokKind::Lifetime("static".into())]);
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokKind::Char]);
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
        let toks = kinds("&'a str");
        assert_eq!(toks[1], TokKind::Lifetime("a".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(kinds("1.5e-3"), vec![TokKind::Float("1.5e-3".into())]);
        assert_eq!(kinds("0x2000"), vec![TokKind::Int("0x2000".into())]);
        let toks = kinds("0..n");
        assert_eq!(toks[0], TokKind::Int("0".into()));
        assert_eq!(toks[1], TokKind::Punct(b'.'));
        assert_eq!(toks[2], TokKind::Punct(b'.'));
        // Method call on a literal keeps the dot separate.
        let toks = kinds("1.max(x)");
        assert_eq!(toks[0], TokKind::Int("1".into()));
        assert_eq!(toks[1], TokKind::Punct(b'.'));
    }

    #[test]
    fn r_identifier_is_not_a_string() {
        let toks = kinds("let r = rb(1); br_x");
        assert!(toks.iter().all(|t| !matches!(t, TokKind::Str(_))));
    }
}
