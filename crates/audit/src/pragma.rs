//! `// audit:` pragma parsing.
//!
//! Pragmas are **plain** line comments (doc comments never carry
//! pragmas, so documentation can show examples without activating
//! them). Four forms exist:
//!
//! * `// audit: no_alloc` — the next `fn` item's body must not
//!   allocate.
//! * `// audit: no_panic` — the next `fn` item's body must not contain
//!   unwrap/expect/panicking macros/indexing by integer literal.
//! * `// audit: allow(alloc, <reason>)` / `// audit: allow(panic,
//!   <reason>)` — suppress hot-path findings on the next source line
//!   (or the same line, for trailing comments). The reason is
//!   mandatory.
//! * `// audit: allow-file(<check>, <reason>)` — suppress one whole
//!   check for this file. `<check>` is a [`Check`] name.
//! * `// audit: metrics-inventory begin` / `… end` — bracket the
//!   string-literal inventory the metrics check reads from the
//!   exposition test.

use crate::diagnostics::Check;
use crate::lexer::{TokKind, Token};

/// One parsed pragma and where it appeared.
#[derive(Debug, Clone, PartialEq)]
pub enum Pragma {
    NoAlloc,
    NoPanic,
    /// `allow(alloc, reason)` / `allow(panic, reason)`.
    Allow {
        check: Check,
        reason: String,
    },
    /// `allow-file(check, reason)`.
    AllowFile {
        check: Check,
        reason: String,
    },
    /// `metrics-inventory begin` — opens the marker region the metrics
    /// check reads string literals from (exposition inventory test).
    InventoryBegin,
    /// `metrics-inventory end`.
    InventoryEnd,
}

#[derive(Debug, Clone)]
pub struct SitedPragma {
    pub pragma: Pragma,
    pub line: u32,
    pub col: u32,
}

/// A malformed `// audit:` comment — always an error, never silently
/// ignored: a typo'd pragma that quietly did nothing would defeat the
/// audit it was meant to configure.
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Extracts every pragma from a token stream.
pub fn parse_pragmas(tokens: &[Token]) -> (Vec<SitedPragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for tok in tokens {
        let TokKind::LineComment { text, doc: false } = &tok.kind else { continue };
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("audit:") else { continue };
        match parse_body(rest.trim()) {
            Ok(p) => pragmas.push(SitedPragma { pragma: p, line: tok.line, col: tok.col }),
            Err(msg) => errors.push(PragmaError { line: tok.line, col: tok.col, message: msg }),
        }
    }
    (pragmas, errors)
}

fn parse_body(body: &str) -> Result<Pragma, String> {
    if body == "no_alloc" {
        return Ok(Pragma::NoAlloc);
    }
    if body == "no_panic" {
        return Ok(Pragma::NoPanic);
    }
    if body == "metrics-inventory begin" {
        return Ok(Pragma::InventoryBegin);
    }
    if body == "metrics-inventory end" {
        return Ok(Pragma::InventoryEnd);
    }
    for (prefix, file_scoped) in [("allow-file(", true), ("allow(", false)] {
        if let Some(inner) = body.strip_prefix(prefix) {
            let Some(inner) = inner.strip_suffix(')') else {
                return Err(format!("unclosed `{prefix}…`: expected `)`"));
            };
            let Some((what, reason)) = inner.split_once(',') else {
                return Err(format!(
                    "`{}{})` needs a reason: `{}<check>, <why this is fine>)`",
                    prefix, inner, prefix
                ));
            };
            let what = what.trim();
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("empty reason in `{prefix}{what}, …)`"));
            }
            let check = if file_scoped {
                Check::from_name(what)
                    .ok_or_else(|| format!("unknown check `{what}` in allow-file"))?
            } else {
                match what {
                    "alloc" => Check::NoAlloc,
                    "panic" => Check::NoPanic,
                    other => {
                        return Err(format!(
                            "site-level allow takes `alloc` or `panic`, got `{other}` \
                             (file-wide suppression is `allow-file(<check>, <reason>)`)"
                        ))
                    }
                }
            };
            return Ok(if file_scoped {
                Pragma::AllowFile { check, reason: reason.to_string() }
            } else {
                Pragma::Allow { check, reason: reason.to_string() }
            });
        }
    }
    Err(format!(
        "unrecognised audit pragma `{body}` \
         (expected no_alloc, no_panic, allow(...), or allow-file(...))"
    ))
}

/// The set of checks a file opted out of, with the pragma lines.
pub fn file_allows(pragmas: &[SitedPragma]) -> Vec<Check> {
    pragmas
        .iter()
        .filter_map(|p| match &p.pragma {
            Pragma::AllowFile { check, .. } => Some(*check),
            _ => None,
        })
        .collect()
}

/// Lines on which hot-path findings of `check` are suppressed: a
/// site-level `allow` covers its own line and the next source line.
pub fn allow_lines(pragmas: &[SitedPragma], check: Check) -> Vec<u32> {
    let mut lines = Vec::new();
    for p in pragmas {
        if let Pragma::Allow { check: c, .. } = &p.pragma {
            if *c == check {
                lines.push(p.line);
                lines.push(p.line + 1);
            }
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_all_forms() {
        let src = "\
// audit: no_alloc
// audit: no_panic
// audit: allow(alloc, scratch grows once)
// audit: allow-file(atomics, shim code)
/// audit: no_alloc
";
        let (pragmas, errors) = parse_pragmas(&lex(src));
        assert!(errors.is_empty(), "{errors:?}");
        // The doc-comment form on the last line is NOT a pragma.
        assert_eq!(pragmas.len(), 4);
        assert_eq!(pragmas[0].pragma, Pragma::NoAlloc);
        assert_eq!(pragmas[1].pragma, Pragma::NoPanic);
        assert_eq!(
            pragmas[2].pragma,
            Pragma::Allow { check: Check::NoAlloc, reason: "scratch grows once".into() }
        );
        assert_eq!(
            pragmas[3].pragma,
            Pragma::AllowFile { check: Check::Atomics, reason: "shim code".into() }
        );
        assert_eq!(file_allows(&pragmas), vec![Check::Atomics]);
        assert_eq!(allow_lines(&pragmas, Check::NoAlloc), vec![3, 4]);
    }

    #[test]
    fn malformed_pragmas_error() {
        for bad in [
            "// audit: allow(alloc)",         // missing reason
            "// audit: allow(alloc, )",       // empty reason
            "// audit: allow(frobnicate, x)", // unknown site check
            "// audit: allow-file(bogus, x)", // unknown file check
            "// audit: nonsense",             // unknown pragma
            "// audit: allow(alloc, reason",  // unclosed
        ] {
            let (_, errors) = parse_pragmas(&lex(bad));
            assert_eq!(errors.len(), 1, "expected error for {bad:?}");
        }
    }
}
