//! Deterministic workspace walk: every `.rs` file under the root, in
//! sorted order, skipping build output, VCS internals, and the audit's
//! own test fixtures (which contain violations *on purpose*).

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Returns every `.rs` file under `root`, sorted by path.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let ty = entry.file_type()?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if ty.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_own_crate_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|p| p.strip_prefix(root).unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(rels.iter().any(|p| p.ends_with("src/lexer.rs")), "{rels:?}");
        assert!(rels.iter().all(|p| !p.contains("fixtures")), "{rels:?}");
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
