//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use uadb_linalg::Matrix;
use uadb_nn::{train_regression, train_svdd, Activation, AdamParams, Mlp, MlpConfig, TrainConfig};

/// The crate exposes its numerically-stable sigmoid via `mlp::sigmoid`.
fn sigmoid_of(x: f64) -> f64 {
    uadb_nn::mlp::sigmoid(x)
}

/// Every weight and bias of the network as raw `f64` bits — the
/// comparison currency for the bit-identity properties below.
fn weight_bits(mlp: &Mlp) -> Vec<u64> {
    let mut bits = Vec::new();
    for l in mlp.layers() {
        bits.extend(l.weights().as_slice().iter().map(|v| v.to_bits()));
        bits.extend(l.bias().iter().map(|v| v.to_bits()));
    }
    bits
}

/// The pre-scratch training loop, reconstructed from the public
/// `forward_cached`/`backward_and_step` API exactly as `train.rs`
/// historically drove it (per-chunk `select_rows`, per-batch grad
/// matrix). It is the bit-identity *reference*: the scratch engine must
/// land on exactly these weights.
fn legacy_train_regression(mlp: &mut Mlp, x: &Matrix, targets: &[f64], cfg: &TrainConfig) {
    let n = x.rows();
    let batch = cfg.batch_size.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let cache = mlp.forward_cached(&xb);
            let b = chunk.len() as f64;
            let mut grad = Matrix::zeros(chunk.len(), 1);
            for (row, (&idx, g)) in chunk.iter().zip(grad.as_mut_slice().iter_mut()).enumerate() {
                let o = cache.output().get(row, 0);
                *g = 2.0 * (o - targets[idx]) / b;
            }
            mlp.backward_and_step(&cache, &grad, &cfg.adam);
        }
    }
}

/// Legacy reference for the SVDD objective (same construction).
fn legacy_train_svdd(mlp: &mut Mlp, x: &Matrix, center: &[f64], cfg: &TrainConfig) {
    let n = x.rows();
    let batch = cfg.batch_size.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let cache = mlp.forward_cached(&xb);
            let out = cache.output();
            let b = chunk.len() as f64;
            let mut grad = Matrix::zeros(out.rows(), out.cols());
            for r in 0..out.rows() {
                let orow = out.row(r);
                let grow = grad.row_mut(r);
                for ((g, &o), &c) in grow.iter_mut().zip(orow).zip(center) {
                    *g = 2.0 * (o - c) / b;
                }
            }
            mlp.backward_and_step(&cache, &grad, &cfg.adam);
        }
    }
}

proptest! {
    #[test]
    fn sigmoid_bounded_and_monotone(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let sa = sigmoid_of(a);
        let sb = sigmoid_of(b);
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb + 1e-15);
        }
    }

    #[test]
    fn forward_is_deterministic_and_finite(
        seed in 0u64..1000,
        data in prop::collection::vec(-5.0..5.0f64, 12),
    ) {
        let cfg = MlpConfig {
            input_dim: 3,
            hidden: vec![6, 4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        };
        let mlp = Mlp::new(&cfg);
        let x = Matrix::from_vec(4, 3, data).unwrap();
        let a = mlp.forward(&x);
        let b = mlp.forward(&x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_never_produces_nan(
        seed in 0u64..200,
        targets in prop::collection::vec(0.0..1.0f64, 16),
    ) {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        });
        let x = Matrix::from_vec(16, 2, (0..32).map(|i| (i as f64) * 0.1 - 1.6).collect()).unwrap();
        let cfg = TrainConfig { epochs: 5, batch_size: 4, shuffle_seed: seed, ..TrainConfig::default() };
        let loss = train_regression(&mut mlp, &x, &targets, &cfg);
        prop_assert!(loss.is_finite());
        let pred = mlp.predict_vec(&x);
        prop_assert!(pred.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }

    /// The tentpole determinism contract: the scratch engine, serial or
    /// parallel at any worker count, lands on *bit-identical* weights to
    /// the legacy `forward_cached`/`backward_and_step` loop — including
    /// ragged final batches.
    #[test]
    fn scratch_training_bit_matches_legacy_any_workers(
        seed in 0u64..64,
        n in 5usize..21,
        batch in 1usize..9,
    ) {
        let x = Matrix::from_vec(
            n,
            3,
            (0..n * 3).map(|i| ((i as f64) * 0.37 + seed as f64 * 0.11).sin()).collect(),
        )
        .unwrap();
        let targets: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 10) as f64 / 10.0).collect();
        let build = || Mlp::new(&MlpConfig {
            input_dim: 3,
            hidden: vec![6, 5],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        });
        let cfg = TrainConfig {
            adam: AdamParams::default(),
            batch_size: batch,
            epochs: 3,
            shuffle_seed: seed ^ 0xabcd,
            workers: 1,
            progress: None,
        };
        let mut reference = build();
        legacy_train_regression(&mut reference, &x, &targets, &cfg);
        let want = weight_bits(&reference);
        for workers in [1usize, 2, 4] {
            let mut mlp = build();
            let cfg = TrainConfig { workers, ..cfg.clone() };
            train_regression(&mut mlp, &x, &targets, &cfg);
            prop_assert_eq!(
                &weight_bits(&mlp), &want,
                "workers={} diverged from legacy loop", workers
            );
        }
    }

    /// Same contract for the SVDD objective (multi-column output
    /// exercises the grad-row layout and the identity head).
    #[test]
    fn svdd_scratch_training_bit_matches_legacy_any_workers(
        seed in 0u64..48,
        n in 4usize..17,
        batch in 1usize..7,
    ) {
        let x = Matrix::from_vec(
            n,
            2,
            (0..n * 2).map(|i| ((i as f64) * 0.23 - seed as f64 * 0.05).cos()).collect(),
        )
        .unwrap();
        let center = vec![0.25, -0.4, 0.1];
        let build = || Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![5],
            output_dim: 3,
            activation: Activation::Identity,
            seed,
        });
        let cfg = TrainConfig {
            adam: AdamParams::default(),
            batch_size: batch,
            epochs: 2,
            shuffle_seed: seed.wrapping_mul(31),
            workers: 1,
            progress: None,
        };
        let mut reference = build();
        legacy_train_svdd(&mut reference, &x, &center, &cfg);
        let want = weight_bits(&reference);
        for workers in [1usize, 2, 4] {
            let mut mlp = build();
            let cfg = TrainConfig { workers, ..cfg.clone() };
            train_svdd(&mut mlp, &x, &center, &cfg);
            prop_assert_eq!(
                &weight_bits(&mlp), &want,
                "workers={} diverged from legacy loop", workers
            );
        }
    }
}
