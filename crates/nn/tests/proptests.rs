//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use uadb_linalg::Matrix;
use uadb_nn::{train_regression, Activation, Mlp, MlpConfig, TrainConfig};

/// The crate exposes its numerically-stable sigmoid via `mlp::sigmoid`.
fn sigmoid_of(x: f64) -> f64 {
    uadb_nn::mlp::sigmoid(x)
}

proptest! {
    #[test]
    fn sigmoid_bounded_and_monotone(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let sa = sigmoid_of(a);
        let sb = sigmoid_of(b);
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb + 1e-15);
        }
    }

    #[test]
    fn forward_is_deterministic_and_finite(
        seed in 0u64..1000,
        data in prop::collection::vec(-5.0..5.0f64, 12),
    ) {
        let cfg = MlpConfig {
            input_dim: 3,
            hidden: vec![6, 4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        };
        let mlp = Mlp::new(&cfg);
        let x = Matrix::from_vec(4, 3, data).unwrap();
        let a = mlp.forward(&x);
        let b = mlp.forward(&x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_never_produces_nan(
        seed in 0u64..200,
        targets in prop::collection::vec(0.0..1.0f64, 16),
    ) {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        });
        let x = Matrix::from_vec(16, 2, (0..32).map(|i| (i as f64) * 0.1 - 1.6).collect()).unwrap();
        let cfg = TrainConfig { epochs: 5, batch_size: 4, shuffle_seed: seed, ..TrainConfig::default() };
        let loss = train_regression(&mut mlp, &x, &targets, &cfg);
        prop_assert!(loss.is_finite());
        let pred = mlp.predict_vec(&x);
        prop_assert!(pred.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }
}
