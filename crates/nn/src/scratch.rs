//! Zero-steady-state-allocation training engine: the training-side
//! analogue of [`crate::mlp::ForwardScratch`].
//!
//! [`TrainScratch`] owns every buffer one optimiser step needs — the
//! batch-gather buffer (replacing per-chunk `select_rows`), the
//! retained per-layer activation inputs backprop reads, the per-layer
//! gradient matrices, and the gathered target column — all grow-once,
//! so a training loop allocates nothing at steady state (the layer
//! parameter gradients and the packed rhs panels are likewise recycled
//! inside [`crate::linear::Linear`]).
//!
//! # Parallel decomposition and bit-identity
//!
//! [`train_batch_step`] optionally fans one batch out over scoped
//! worker threads, and is **bit-identical to the serial path for every
//! worker count** — not merely deterministic — because no partition
//! boundary ever changes the order of a floating-point accumulation:
//!
//! * **Row phase** (forward pass, loss gradient, backward chain):
//!   every output element depends on exactly one batch row, so rows
//!   split into contiguous ranges with no cross-row arithmetic. The
//!   blocked GEMM kernel's pinned shard-independence property
//!   guarantees per-row bits do not depend on the range they ran in.
//! * **Weight phase** (`grad_w = Xᵀ·G`): partitioned by *weight row*
//!   (input-dimension index), not by batch row. Each `grad_w[i][o]`
//!   element accumulates its per-batch-row contributions in ascending
//!   row order inside a single task, exactly as the serial kernel
//!   does, so there is no cross-partition floating-point reduction at
//!   all — the classic source of worker-count-dependent results.
//! * **Bias gradients, loss reporting and the Adam step** run serially
//!   on the coordinating thread (they are `O(batch·width)` or
//!   `O(params)`, negligible next to the GEMMs).

use crate::adam::AdamParams;
use crate::mlp::{Activation, Mlp};
use uadb_linalg::Matrix;

/// Reusable training workspace: see the module docs. A scratch is not
/// tied to one network or batch size; [`TrainScratch::prepare`] regrows
/// (keeping capacity) as needed. It holds no numeric state between
/// steps: every buffer element read was written earlier in the same
/// step.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    /// `inputs[i]` holds the batch rows fed to layer `i`; `inputs[0]`
    /// is the batch-gather buffer the loops fill via
    /// [`TrainScratch::gather`].
    inputs: Vec<Vec<f64>>,
    /// Post-activation network output for the batch.
    output: Vec<f64>,
    /// `grads[i]` holds `dL/d(pre-activation output of layer i)`.
    grads: Vec<Vec<f64>>,
    /// Batch-aligned regression targets, gathered with the rows.
    targets: Vec<f64>,
}

impl TrainScratch {
    /// Sizes every buffer for a `batch`-row step through `mlp`.
    /// Buffers only grow; repeated steps at steady state allocate
    /// nothing. Must run before [`TrainScratch::gather`].
    pub fn prepare(&mut self, mlp: &Mlp, batch: usize) {
        let l = mlp.n_layers();
        while self.inputs.len() < l {
            self.inputs.push(Vec::new());
        }
        while self.grads.len() < l {
            self.grads.push(Vec::new());
        }
        let need0 = batch * mlp.input_dim();
        if self.inputs[0].len() < need0 {
            self.inputs[0].resize(need0, 0.0);
        }
        for (i, layer) in mlp.layers().iter().enumerate() {
            let need = batch * layer.output_dim();
            if i + 1 < l && self.inputs[i + 1].len() < need {
                self.inputs[i + 1].resize(need, 0.0);
            }
            if self.grads[i].len() < need {
                self.grads[i].resize(need, 0.0);
            }
        }
        let need_out = batch * mlp.output_dim();
        if self.output.len() < need_out {
            self.output.resize(need_out, 0.0);
        }
        if self.targets.len() < batch {
            self.targets.resize(batch, 0.0);
        }
    }

    /// Gathers `x`'s rows `idx` into the batch buffer (the scratch
    /// replacement for `Matrix::select_rows`). Row copies preserve bits
    /// exactly.
    ///
    /// # Panics
    /// If [`TrainScratch::prepare`] has not sized the buffer for
    /// `idx.len()` rows of `x.cols()` features.
    // audit: no_alloc
    pub fn gather(&mut self, x: &Matrix, idx: &[usize]) {
        let d = x.cols();
        let buf = &mut self.inputs[0];
        assert!(buf.len() >= idx.len() * d, "prepare() must size the gather buffer first");
        for (r, &i) in idx.iter().enumerate() {
            buf[r * d..(r + 1) * d].copy_from_slice(x.row(i));
        }
    }

    /// Gathers the per-row regression targets for the same `idx` order
    /// used by [`TrainScratch::gather`].
    // audit: no_alloc
    pub(crate) fn gather_targets(&mut self, targets: &[f64], idx: &[usize]) {
        assert!(self.targets.len() >= idx.len(), "prepare() must size the target buffer first");
        for (slot, &i) in self.targets.iter_mut().zip(idx) {
            *slot = targets[i];
        }
    }
}

/// What the batch loss is measured against.
pub(crate) enum Objective<'a> {
    /// MSE against the targets gathered into the scratch
    /// ([`TrainScratch::gather_targets`]).
    Mse,
    /// DeepSVDD: squared distance of every output row to `center`.
    Svdd {
        /// Fixed hypersphere centre (length = output width).
        center: &'a [f64],
    },
}

/// The loss with its row data resolved against the split scratch
/// borrows (internal form of [`Objective`]).
#[derive(Clone, Copy)]
enum BatchLoss<'a> {
    Mse { targets: &'a [f64] },
    Svdd { center: &'a [f64] },
}

/// One worker's contiguous row range of every per-row buffer.
struct RowPart<'a> {
    /// Gathered input rows for this range (input to layer 0).
    x0: &'a [f64],
    /// `acts[j]` = this range's rows of the input to layer `j + 1`.
    acts: Vec<&'a mut [f64]>,
    /// This range's rows of the post-activation output.
    output: &'a mut [f64],
    /// `grads[i]` = this range's rows of layer `i`'s pre-activation
    /// gradient.
    grads: Vec<&'a mut [f64]>,
    /// Rows in this range.
    rows: usize,
    /// First batch row of this range (loss-data indexing).
    row0: usize,
}

/// Contiguous near-even `(start, len)` ranges covering `0..n`; empty
/// ranges are dropped, so over-provisioned worker counts are harmless.
fn partition(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len > 0 {
            out.push((start, len));
        }
        start += len;
    }
    out
}

/// Splits the head `rows * width` elements off a remainder slice.
fn carve<'a>(rem: &mut &'a mut [f64], rows: usize, width: usize) -> &'a mut [f64] {
    let (head, tail) = std::mem::take(rem).split_at_mut(rows * width);
    *rem = tail;
    head
}

/// Carves one worker's [`RowPart`] off the per-buffer remainder slices.
/// Callers must invoke this in ascending `row0` order; each call
/// consumes exactly its range from every remainder.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site shape
fn make_part<'a>(
    row0: usize,
    rows: usize,
    x0_full: &'a [f64],
    in_dim: usize,
    out_dim: usize,
    acts_rem: &mut [&'a mut [f64]],
    acts_w: &[usize],
    grads_rem: &mut [&'a mut [f64]],
    grads_w: &[usize],
    out_rem: &mut &'a mut [f64],
) -> RowPart<'a> {
    RowPart {
        x0: &x0_full[row0 * in_dim..(row0 + rows) * in_dim],
        acts: acts_rem.iter_mut().zip(acts_w).map(|(rem, &w)| carve(rem, rows, w)).collect(),
        output: carve(out_rem, rows, out_dim),
        grads: grads_rem.iter_mut().zip(grads_w).map(|(rem, &w)| carve(rem, rows, w)).collect(),
        rows,
        row0,
    }
}

/// One optimiser step on a gathered batch: forward, loss gradient,
/// backward, Adam on every layer. Returns the **summed** squared-error
/// loss over the batch rows (callers divide by the epoch row count for
/// the row-weighted mean). `workers <= 1` runs serially; larger values
/// fan the row and weight phases out over scoped threads with
/// bit-identical results (see the module docs).
///
/// The gradient semantics are bit-for-bit those of the historic
/// `forward_cached` + `backward_and_step` path.
pub(crate) fn train_batch_step(
    mlp: &mut Mlp,
    scratch: &mut TrainScratch,
    batch: usize,
    objective: &Objective<'_>,
    hp: &AdamParams,
    workers: usize,
) -> f64 {
    let l = mlp.n_layers();
    let last = l - 1;
    let b = batch as f64;
    let TrainScratch { inputs, output, grads, targets } = scratch;
    let loss = match objective {
        Objective::Mse => BatchLoss::Mse { targets: &targets[..batch] },
        Objective::Svdd { center } => BatchLoss::Svdd { center },
    };
    let in_dim = mlp.input_dim();
    let out_dim = mlp.output_dim();

    // --- Row phase: forward + loss gradient + backward chain. ---
    let (head, tail) = inputs.split_at_mut(1);
    let x0_full: &[f64] = &head[0][..batch * in_dim];
    let mut acts_rem: Vec<&mut [f64]> = tail
        .iter_mut()
        .zip(&mlp.layers()[..last])
        .map(|(buf, layer)| &mut buf[..batch * layer.output_dim()] as &mut [f64])
        .collect();
    let mut grads_rem: Vec<&mut [f64]> = grads
        .iter_mut()
        .zip(mlp.layers())
        .map(|(buf, layer)| &mut buf[..batch * layer.output_dim()] as &mut [f64])
        .collect();
    let mut out_rem: &mut [f64] = &mut output[..batch * out_dim];
    let ranges = partition(batch, workers);
    let acts_w: Vec<usize> = mlp.layers()[..last].iter().map(|l| l.output_dim()).collect();
    let grads_w: Vec<usize> = mlp.layers().iter().map(|l| l.output_dim()).collect();
    let mlp_ref: &Mlp = mlp;
    if ranges.len() <= 1 {
        for &(row0, rows) in &ranges {
            let part = make_part(
                row0,
                rows,
                x0_full,
                in_dim,
                out_dim,
                &mut acts_rem,
                &acts_w,
                &mut grads_rem,
                &grads_w,
                &mut out_rem,
            );
            row_phase(mlp_ref, part, loss, b);
        }
    } else {
        std::thread::scope(|s| {
            for &(row0, rows) in &ranges {
                let part = make_part(
                    row0,
                    rows,
                    x0_full,
                    in_dim,
                    out_dim,
                    &mut acts_rem,
                    &acts_w,
                    &mut grads_rem,
                    &grads_w,
                    &mut out_rem,
                );
                s.spawn(move || row_phase(mlp_ref, part, loss, b));
            }
        });
    }

    // --- Loss report: serial, row-major order (independent of the
    // partition above). ---
    let total = loss_sum(&output[..batch * out_dim], loss);

    // --- Weight phase: bias gradients serially, weight gradients
    // partitioned by weight row. ---
    let mut tasks: Vec<Vec<GradWTask<'_>>> = Vec::new();
    tasks.resize_with(workers.max(1), Vec::new);
    for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
        let (lin, lout) = (layer.input_dim(), layer.output_dim());
        let x = &inputs[li][..batch * lin];
        let g = &grads[li][..batch * lout];
        let (grad_w, grad_b) = layer.grads_mut();
        accumulate_grad_b(g, lout, grad_b);
        let mut rem: &mut [f64] = grad_w;
        for (widx, &(i0, wrows)) in partition(lin, workers).iter().enumerate() {
            let part = carve(&mut rem, wrows, lout);
            tasks[widx].push(GradWTask { x, grads: g, in_dim: lin, out_dim: lout, i0, part });
        }
    }
    let parallel_weights = tasks.iter().filter(|t| !t.is_empty()).count() > 1;
    if parallel_weights {
        std::thread::scope(|s| {
            for worker_tasks in tasks {
                if worker_tasks.is_empty() {
                    continue;
                }
                s.spawn(move || {
                    for t in worker_tasks {
                        accumulate_grad_w(t.x, t.in_dim, t.out_dim, t.grads, t.i0, t.part);
                    }
                });
            }
        });
    } else {
        for t in tasks.into_iter().flatten() {
            accumulate_grad_w(t.x, t.in_dim, t.out_dim, t.grads, t.i0, t.part);
        }
    }

    // --- Optimiser: serial, forward layer order (as the historic
    // path), each step recycling the layer's packed rhs panel. ---
    for layer in mlp.layers_mut() {
        layer.apply_adam(hp);
    }
    total
}

/// One weight-row range of one layer's `grad_w` accumulation.
struct GradWTask<'a> {
    x: &'a [f64],
    grads: &'a [f64],
    in_dim: usize,
    out_dim: usize,
    i0: usize,
    part: &'a mut [f64],
}

/// Forward pass, loss gradient and backward chain for one contiguous
/// row range. Everything here is row-local: no element outside
/// `part`'s rows is read or written, so concurrent parts never
/// interact.
// audit: no_alloc
fn row_phase(mlp: &Mlp, mut part: RowPart<'_>, loss: BatchLoss<'_>, b: f64) {
    let l = mlp.n_layers();
    let last = l - 1;
    let rows = part.rows;
    // Forward: layer i reads its input rows and writes its output rows
    // (ReLU applied in place on hidden activations, exactly as the
    // cached path does).
    for (i, layer) in mlp.layers().iter().enumerate() {
        if i == 0 && l == 1 {
            layer.forward_into(part.x0, rows, &mut *part.output);
        } else if i == 0 {
            let (dst, _) = part.acts.split_at_mut(1);
            layer.forward_into(part.x0, rows, &mut *dst[0]);
            relu_rows(&mut *dst[0]);
        } else if i < last {
            let (src, dst) = part.acts.split_at_mut(i);
            layer.forward_into(&*src[i - 1], rows, &mut *dst[0]);
            relu_rows(&mut *dst[0]);
        } else {
            let (src, _) = part.acts.split_at_mut(i);
            layer.forward_into(&*src[i - 1], rows, &mut *part.output);
        }
    }
    if mlp.activation() == Activation::Sigmoid {
        sigmoid_rows(&mut *part.output);
    }
    // Loss gradient w.r.t. the post-activation output, then the output
    // activation's derivative — the same element-wise sequence as the
    // historic path (`g = 2·diff/b`, then `g *= s·(1-s)` for sigmoid).
    {
        let g_last = &mut *part.grads[last];
        match loss {
            BatchLoss::Mse { targets } => {
                let t = &targets[part.row0..part.row0 + rows];
                for ((g, &o), &tv) in g_last.iter_mut().zip(&*part.output).zip(t) {
                    *g = 2.0 * (o - tv) / b;
                }
            }
            BatchLoss::Svdd { center } => {
                let width = center.len().max(1);
                for (grow, orow) in
                    g_last.chunks_exact_mut(width).zip(part.output.chunks_exact(width))
                {
                    for ((g, &o), &c) in grow.iter_mut().zip(orow).zip(center) {
                        *g = 2.0 * (o - c) / b;
                    }
                }
            }
        }
        if mlp.activation() == Activation::Sigmoid {
            for (g, &s) in g_last.iter_mut().zip(&*part.output) {
                *g *= s * (1.0 - s);
            }
        }
    }
    // Backward chain: grads[i-1] = relu-gate(grads[i] · Wᵢᵀ), gated on
    // layer i's stored input rows — the gate the historic path applies
    // before each layer's backward call.
    for i in (1..l).rev() {
        let (g_lo, g_hi) = part.grads.split_at_mut(i);
        let layer = mlp.layer(i);
        layer.backward_input_into(&*g_hi[0], rows, &mut *g_lo[i - 1]);
        for (g, &a) in g_lo[i - 1].iter_mut().zip(&*part.acts[i - 1]) {
            if a <= 0.0 {
                *g = 0.0;
            }
        }
    }
}

/// `grad_w[i0 + ii] += Σ_r x[r][i0 + ii]·g[r]` for the weight rows
/// covered by `part`. Batch rows run in the outer loop (streaming `x`
/// and `grads` once while `part` stays cache-hot — the historic serial
/// kernel's layout), so each `grad_w` element accumulates its
/// per-batch-row contributions in ascending row order and the
/// weight-row partition never changes a single bit. The `xi == 0.0`
/// skip mirrors the serial kernel (the zeroed entries it leaves behind
/// are written by the explicit clear up front).
// audit: no_alloc
fn accumulate_grad_w(
    x: &[f64],
    in_dim: usize,
    out_dim: usize,
    grads: &[f64],
    i0: usize,
    part: &mut [f64],
) {
    let lout = out_dim.max(1);
    for d in part.iter_mut() {
        *d = 0.0;
    }
    let wrows = part.len() / lout;
    for (xrow, gr) in x.chunks_exact(in_dim.max(1)).zip(grads.chunks_exact(lout)) {
        for (dst, &xi) in part.chunks_exact_mut(lout).zip(&xrow[i0..i0 + wrows]) {
            if xi == 0.0 {
                continue;
            }
            for (d, &g) in dst.iter_mut().zip(gr) {
                *d += xi * g;
            }
        }
    }
}

/// `grad_b[o] = Σ_r g[r][o]`, accumulated in batch-row order.
// audit: no_alloc
fn accumulate_grad_b(grads: &[f64], out_dim: usize, grad_b: &mut [f64]) {
    for d in grad_b.iter_mut() {
        *d = 0.0;
    }
    for gr in grads.chunks_exact(out_dim.max(1)) {
        for (db, &g) in grad_b.iter_mut().zip(gr) {
            *db += g;
        }
    }
}

/// Summed squared-error loss over the batch, accumulated in row-major
/// order on the coordinating thread (so the report is also independent
/// of the worker count).
// audit: no_alloc
fn loss_sum(output: &[f64], loss: BatchLoss<'_>) -> f64 {
    match loss {
        BatchLoss::Mse { targets } => {
            let mut total = 0.0;
            for (&o, &t) in output.iter().zip(targets) {
                let diff = o - t;
                total += diff * diff;
            }
            total
        }
        BatchLoss::Svdd { center } => {
            let mut total = 0.0;
            for orow in output.chunks_exact(center.len().max(1)) {
                for (&o, &c) in orow.iter().zip(center) {
                    let diff = o - c;
                    total += diff * diff;
                }
            }
            total
        }
    }
}

/// In-place ReLU over a row range.
// audit: no_alloc
fn relu_rows(vals: &mut [f64]) {
    for v in vals {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place numerically-stable sigmoid over a row range.
// audit: no_alloc
fn sigmoid_rows(vals: &mut [f64]) {
    for v in vals {
        *v = crate::mlp::sigmoid(*v);
    }
}
