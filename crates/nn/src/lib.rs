//! Neural-network substrate for the UADB reproduction.
//!
//! The paper's booster is "a simple 3-layer fully-connected MLP with 128
//! neurons in each hidden layer … optimized by Adam with a learning rate
//! of 0.001" (§IV-A), trained with mini-batches of 256 for 10 epochs per
//! UADB step. DeepSVDD (one of the 14 source models) needs the same stack
//! with PyOD's default `[64, 32]` encoder. This crate provides exactly
//! that: dense linear layers with manual backprop, ReLU/sigmoid/identity
//! activations, MSE and SVDD objectives, and the Adam optimiser.
//!
//! Everything is deterministic given the configured seeds.

pub mod adam;
pub mod linear;
pub mod mlp;
pub mod scratch;
pub mod train;

pub use adam::AdamParams;
pub use linear::Linear;
pub use mlp::{Activation, ForwardScratch, Mlp, MlpConfig};
pub use scratch::TrainScratch;
pub use train::{train_regression, train_svdd, ProgressHook, TrainConfig};
