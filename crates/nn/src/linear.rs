//! Dense linear layer with manual backprop and embedded Adam state.

use crate::adam::{AdamParams, AdamState};
use rand::Rng;
use std::sync::OnceLock;
use uadb_linalg::gemm;
use uadb_linalg::Matrix;

/// Weight-derived artifacts the GEMM kernel reuses across forward
/// passes: the per-row finiteness mask (gates the zero-coefficient
/// skip) and the strip-major packed panel (sequential streaming).
///
/// Both are pure functions of `W`, so they live in a [`OnceLock`]
/// shared by every thread scoring the same layer and are dropped
/// whenever the weights change — repeated scoring of one model never
/// re-scans or re-packs its weights.
///
/// Training double-buffers the panel: [`Linear::apply_adam`] takes the
/// live cache out of the `OnceLock`, repacks it **in place** from the
/// stepped weights and publishes it again, so steady-state training
/// recycles one warm buffer pair instead of dropping the cache cold
/// and reallocating it on the next forward pass.
#[derive(Debug, Clone, Default)]
struct WeightCache {
    row_finite: Vec<bool>,
    pack: Vec<f64>,
}

impl WeightCache {
    /// Rebuilds both artifacts from `w`, reusing the existing
    /// allocations (grow-once, like the kernels they feed).
    fn repack(&mut self, w: &Matrix) {
        gemm::pack_rhs(w.rows(), w.cols(), w.as_slice(), &mut self.pack);
        gemm::row_finiteness_into(w, &mut self.row_finite);
    }
}

/// A fully-connected layer `y = x W + b`.
///
/// `W` is stored `(in, out)` so a batch forward is a plain matmul of the
/// row-major batch against it.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    adam_w: AdamState,
    adam_b: AdamState,
    cache: OnceLock<WeightCache>,
    /// Retired cache buffers awaiting recycling (see [`WeightCache`]):
    /// populated by [`Linear::invalidate_cache`], consumed by the next
    /// [`Linear::refresh_cache`] so panel allocations survive weight
    /// mutations instead of being rebuilt from scratch.
    spare: Option<WeightCache>,
}

impl Linear {
    /// Xavier/Glorot-uniform initialisation, like `torch.nn.Linear`.
    pub fn new(input: usize, output: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (input + output) as f64).sqrt();
        let mut w = Matrix::zeros(input, output);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        let b = vec![0.0; output];
        Self {
            grad_w: vec![0.0; input * output],
            grad_b: vec![0.0; output],
            adam_w: AdamState::new(input * output),
            adam_b: AdamState::new(output),
            w,
            b,
            cache: OnceLock::new(),
            spare: None,
        }
    }

    /// The weight cache, built on first use after any weight change.
    fn weight_cache(&self) -> &WeightCache {
        self.cache.get_or_init(|| {
            let mut wc = WeightCache::default();
            wc.repack(&self.w);
            wc
        })
    }

    /// Drops weight-derived caches; must run after every weight
    /// mutation. The retired buffers are parked in the spare slot so
    /// the next [`Linear::refresh_cache`] recycles them.
    fn invalidate_cache(&mut self) {
        if let Some(wc) = self.cache.take() {
            self.spare = Some(wc);
        }
    }

    /// Re-derives the weight cache after a weight step by swapping the
    /// warm panel pair back in: takes the live cache (or the spare left
    /// by an earlier invalidation), repacks it in place from the
    /// current weights and republishes it. The `OnceLock` is never left
    /// cold, so a training loop alternating forward passes with Adam
    /// steps performs zero pack/mask allocation at steady state.
    fn refresh_cache(&mut self) {
        let mut wc = self.cache.take().or_else(|| self.spare.take()).unwrap_or_default();
        wc.repack(&self.w);
        // The lock was just emptied by `take`, so `set` cannot fail.
        let _ = self.cache.set(wc);
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Batch forward: `(B, in) -> (B, out)`. Thin allocating wrapper
    /// over [`Linear::forward_into`].
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "linear layer dim mismatch");
        let mut out = Matrix::zeros(x.rows(), self.output_dim());
        self.forward_into(x.as_slice(), x.rows(), out.as_mut_slice());
        out
    }

    /// Allocation-free batch forward over raw row-major slices: reads
    /// `batch` rows of [`Linear::input_dim`] features from `x` and
    /// writes `batch` rows of [`Linear::output_dim`] activations over
    /// `out`. Uses the cached weight mask and packed panel, so steady-
    /// state scoring performs no allocation and no weight re-scan.
    ///
    /// Results are bit-identical to the historic `matmul` + bias path.
    ///
    /// # Panics
    /// If either slice length disagrees with `batch` and the layer
    /// dimensions.
    pub fn forward_into(&self, x: &[f64], batch: usize, out: &mut [f64]) {
        let (in_dim, out_dim) = self.w.shape();
        assert_eq!(x.len(), batch * in_dim, "input buffer length must be batch*in");
        assert_eq!(out.len(), batch * out_dim, "output buffer length must be batch*out");
        let cache = self.weight_cache();
        gemm::gemm_into(
            batch,
            in_dim,
            out_dim,
            x,
            self.w.as_slice(),
            Some(&cache.pack),
            |r| cache.row_finite[r],
            out,
        );
        for row in out.chunks_exact_mut(out_dim.max(1)) {
            for (v, &bias) in row.iter_mut().zip(&self.b) {
                *v += bias;
            }
        }
    }

    /// Backward pass: accumulates parameter gradients for the batch and
    /// returns the gradient w.r.t. the input.
    ///
    /// `x` is the forward input, `grad_out` is `(B, out)`.
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        let (batch, in_dim) = x.shape();
        let out_dim = self.w.cols();
        debug_assert_eq!(grad_out.shape(), (batch, out_dim));
        // grad_w = X^T grad_out, accumulated without an explicit transpose.
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
        for r in 0..batch {
            let xr = x.row(r);
            let gr = grad_out.row(r);
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let dst = &mut self.grad_w[i * out_dim..(i + 1) * out_dim];
                for (d, &g) in dst.iter_mut().zip(gr) {
                    *d += xi * g;
                }
            }
            for (db, &g) in self.grad_b.iter_mut().zip(gr) {
                *db += g;
            }
        }
        // grad_x = grad_out W^T
        let mut grad_x = Matrix::zeros(batch, in_dim);
        for r in 0..batch {
            let gr = grad_out.row(r);
            let dst = grad_x.row_mut(r);
            for (i, slot) in dst.iter_mut().enumerate() {
                let w_row = &self.w.as_slice()[i * out_dim..(i + 1) * out_dim];
                *slot = w_row.iter().zip(gr).map(|(w, g)| w * g).sum();
            }
        }
        grad_x
    }

    /// Gradient w.r.t. the input over raw row-major slices:
    /// `grad_in = grad_out · Wᵀ`, written row by row. Bit-identical to
    /// the `grad_x` half of [`Linear::backward`] (same per-element
    /// dot-product order), shareable across threads (`&self`), and
    /// allocation-free — the row-split parallel backward runs this on
    /// disjoint row ranges.
    ///
    /// # Panics
    /// If either slice length disagrees with `batch` and the layer
    /// dimensions.
    // audit: no_alloc
    pub fn backward_input_into(&self, grad_out: &[f64], batch: usize, grad_in: &mut [f64]) {
        let (in_dim, out_dim) = self.w.shape();
        assert_eq!(grad_out.len(), batch * out_dim, "grad_out length must be batch*out");
        assert_eq!(grad_in.len(), batch * in_dim, "grad_in length must be batch*in");
        let w = self.w.as_slice();
        for r in 0..batch {
            let gr = &grad_out[r * out_dim..(r + 1) * out_dim];
            let dst = &mut grad_in[r * in_dim..(r + 1) * in_dim];
            for (i, slot) in dst.iter_mut().enumerate() {
                let w_row = &w[i * out_dim..(i + 1) * out_dim];
                *slot = w_row.iter().zip(gr).map(|(w, g)| w * g).sum();
            }
        }
    }

    /// Mutable access to the accumulated gradient buffers
    /// `(grad_w, grad_b)` for the scratch training engine, which fills
    /// them with kernels that partition `grad_w` by weight row.
    pub(crate) fn grads_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.grad_w, &mut self.grad_b)
    }

    /// Applies one Adam step with the accumulated gradients, then swaps
    /// the recycled weight-cache panel back in (see
    /// [`Linear::refresh_cache`]) so the next forward pass finds a warm
    /// cache without allocating.
    pub fn apply_adam(&mut self, hp: &AdamParams) {
        self.adam_w.step(self.w.as_mut_slice(), &self.grad_w, hp);
        self.adam_b.step(&mut self.b, &self.grad_b, hp);
        self.refresh_cache();
    }

    /// Rebuilds a layer from persisted parameters (fresh optimiser
    /// state: gradients and Adam moments start at zero, exactly as after
    /// [`Linear::new`]).
    ///
    /// # Panics
    /// If `bias` length differs from the weight matrix's column count.
    pub fn from_parts(w: Matrix, b: Vec<f64>) -> Self {
        assert_eq!(b.len(), w.cols(), "bias length must match weight output dimension");
        let (input, output) = w.shape();
        Self {
            grad_w: vec![0.0; input * output],
            grad_b: vec![0.0; output],
            adam_w: AdamState::new(input * output),
            adam_b: AdamState::new(output),
            w,
            b,
            cache: OnceLock::new(),
            spare: None,
        }
    }

    /// Read-only weight access (tests, serialisation).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read-only bias access (serialisation).
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// Mutable weight access (finite-difference gradient checks).
    /// Invalidates the weight cache up front — the caller may mutate
    /// through the returned reference at any point before it drops.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        self.invalidate_cache();
        &mut self.w
    }

    /// Accumulated weight gradient from the last backward pass.
    pub fn grad_weights(&self) -> &[f64] {
        &self.grad_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_applies_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 1, &mut rng);
        // Overwrite with known parameters.
        l.w = Matrix::from_vec(2, 1, vec![2.0, -1.0]).unwrap();
        l.b = vec![0.5];
        let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 3.0, 0.0]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[1.5, 6.5]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // idx addresses two parallel buffers
    fn backward_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f64) * 0.3 - 1.5).collect()).unwrap();
        // Loss = sum of outputs; grad_out = ones.
        let ones = Matrix::filled(4, 2, 1.0);
        l.backward(&x, &ones);
        let analytic = l.grad_weights().to_vec();
        let eps = 1e-6;
        for idx in 0..6 {
            // Perturb through weights_mut so the weight cache refreshes.
            let orig = l.weights().as_slice()[idx];
            l.weights_mut().as_mut_slice()[idx] = orig + eps;
            let up: f64 = l.forward(&x).as_slice().iter().sum();
            l.weights_mut().as_mut_slice()[idx] = orig - eps;
            let down: f64 = l.forward(&x).as_slice().iter().sum();
            l.weights_mut().as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-5,
                "dW[{idx}]: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn backward_input_gradient_shape_and_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let grad_out = Matrix::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let gx = l.backward(&x, &grad_out);
        // grad_x = grad_out W^T = [1*1 + 0*2, 1*3 + 0*4]
        assert_eq!(gx.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn adam_step_changes_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let before = l.weights().clone();
        let x = Matrix::filled(1, 2, 1.0);
        let g = Matrix::filled(1, 2, 1.0);
        l.backward(&x, &g);
        l.apply_adam(&AdamParams::default());
        assert!(before.max_abs_diff(l.weights()) > 0.0);
    }

    #[test]
    fn weight_cache_invalidates_on_mutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(2, 2, &mut rng);
        // x has a zero coefficient, so forward consults the cached
        // finiteness mask of W's rows.
        let x = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let clean = l.forward(&x);
        assert!(clean.as_slice().iter().all(|v| v.is_finite()));
        // Poison row 0 of W through weights_mut: the zero-skip must not
        // keep using the stale "row 0 is finite" mask.
        l.weights_mut().set(0, 0, f64::NAN);
        let poisoned = l.forward(&x);
        assert!(
            poisoned.get(0, 0).is_nan(),
            "stale weight cache let 0 * NaN score clean: {:?}",
            poisoned.as_slice()
        );
        // And an Adam step likewise refreshes the cache.
        let mut l2 = Linear::new(2, 2, &mut rng);
        let before = l2.forward(&x);
        l2.backward(&x, &Matrix::filled(1, 2, 1.0));
        l2.apply_adam(&AdamParams::default());
        let after = l2.forward(&x);
        assert_ne!(before.as_slice(), after.as_slice(), "cache must track stepped weights");
    }

    #[test]
    fn forward_into_matches_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let l = Linear::new(3, 5, &mut rng);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.3 - 2.0).collect()).unwrap();
        let via_matrix = l.forward(&x);
        let mut out = vec![f64::NAN; 4 * 5];
        l.forward_into(x.as_slice(), 4, &mut out);
        for (a, b) in via_matrix.as_slice().iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = Linear::new(10, 10, &mut rng);
        let bound = (6.0f64 / 20.0).sqrt();
        assert!(l.weights().as_slice().iter().all(|w| w.abs() <= bound));
    }
}
