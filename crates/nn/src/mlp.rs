//! Multi-layer perceptron with ReLU hidden layers.

use crate::adam::AdamParams;
use crate::linear::Linear;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uadb_linalg::Matrix;

/// Output-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Sigmoid output — the UADB booster predicts anomaly scores in `[0,1]`.
    Sigmoid,
    /// Identity output — DeepSVDD embeds into an unconstrained space.
    Identity,
}

/// MLP architecture description.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input feature count.
    pub input_dim: usize,
    /// Hidden layer widths (the booster uses `[128, 128]`).
    pub hidden: Vec<usize>,
    /// Output width (1 for the booster; the embedding size for DeepSVDD).
    pub output_dim: usize,
    /// Output activation.
    pub activation: Activation,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The UADB booster architecture of §IV-A: `input -> 128 -> 128 -> 1`
    /// with a sigmoid head ("3-layer fully-connected MLP with 128 neurons
    /// in each hidden layer").
    pub fn booster(input_dim: usize, seed: u64) -> Self {
        Self {
            input_dim,
            hidden: vec![128, 128],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        }
    }
}

/// A dense MLP with ReLU hidden activations.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Intermediate activations retained for the backward pass.
///
/// The caller's batch is *borrowed* as the input to layer 0 — the
/// historic cache cloned `x` twice per step (once into the cache, once
/// as the working activation); now only the hidden activations are
/// owned, each allocated exactly once.
pub struct ForwardCache<'a> {
    /// The caller's batch: input to layer 0, borrowed uncopied.
    x0: &'a Matrix,
    /// `inners[i]` is the post-ReLU output of layer `i`, i.e. the
    /// input to layer `i + 1`.
    inners: Vec<Matrix>,
    /// Post-activation network output.
    output: Matrix,
}

impl ForwardCache<'_> {
    /// The network output after the output activation.
    pub fn output(&self) -> &Matrix {
        &self.output
    }

    /// The input that was fed to layer `i`.
    fn input(&self, i: usize) -> &Matrix {
        if i == 0 {
            self.x0
        } else {
            &self.inners[i - 1]
        }
    }
}

/// Reusable inference workspace for [`Mlp::forward_scored`]: two
/// ping-pong activation buffers sized to `batch × widest layer`,
/// grown once and reused across calls — steady-state scoring performs
/// no allocation.
///
/// A scratch is not tied to one network or batch size; it regrows (and
/// keeps capacity) as needed. It holds no numeric state between calls:
/// every buffer element read was written earlier in the same call.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    ping: Vec<f64>,
    pong: Vec<f64>,
}

impl Mlp {
    /// Builds the network with Xavier-initialised layers.
    pub fn new(cfg: &MlpConfig) -> Self {
        assert!(cfg.input_dim > 0 && cfg.output_dim > 0, "dims must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = Vec::with_capacity(cfg.hidden.len() + 2);
        dims.push(cfg.input_dim);
        dims.extend_from_slice(&cfg.hidden);
        dims.push(cfg.output_dim);
        let layers = dims.windows(2).map(|w| Linear::new(w[0], w[1], &mut rng)).collect();
        Self { layers, activation: cfg.activation }
    }

    /// Rebuilds a network from persisted layers (see
    /// [`Linear::from_parts`]); layer output/input widths must chain.
    ///
    /// # Panics
    /// If `layers` is empty or consecutive layer dimensions disagree.
    pub fn from_layers(layers: Vec<Linear>, activation: Activation) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(w[0].output_dim(), w[1].input_dim(), "layer dimensions must chain");
        }
        Self { layers, activation }
    }

    /// Number of trainable layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature count the network expects.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output width of the network head.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].output_dim()
    }

    /// Output activation applied by the final layer.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// All layers in forward order (serialisation).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable layer slice for the scratch training engine.
    pub(crate) fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Forward pass retaining activations for backprop. The cache
    /// borrows `x` as the layer-0 input; each hidden activation is
    /// allocated exactly once (no clones of the caller's batch).
    pub fn forward_cached<'a>(&self, x: &'a Matrix) -> ForwardCache<'a> {
        let last = self.layers.len() - 1;
        let mut inners = Vec::with_capacity(last);
        let mut output = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input: &Matrix = if i == 0 { x } else { &inners[i - 1] };
            let mut y = layer.forward(input);
            if i < last {
                relu_slice(y.as_mut_slice());
                inners.push(y);
            } else {
                output = Some(y);
            }
        }
        let mut output = output.expect("network has at least one layer");
        if self.activation == Activation::Sigmoid {
            sigmoid_slice(output.as_mut_slice());
        }
        ForwardCache { x0: x, inners, output }
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).output
    }

    /// Single-column prediction convenience: `(B, 1)` output flattened.
    pub fn predict_vec(&self, x: &Matrix) -> Vec<f64> {
        self.forward(x).into_vec()
    }

    /// Allocation-free inference: the full forward pass through the
    /// caller's [`ForwardScratch`], returning the post-activation
    /// output as a borrowed `(rows × output_dim)` row-major slice.
    ///
    /// Bit-identical to [`Mlp::forward`]; unlike the training-time
    /// [`Mlp::forward_cached`] it retains no intermediate activations
    /// and allocates nothing once the scratch has grown to the batch.
    ///
    /// # Panics
    /// If `x` is not [`Mlp::input_dim`] wide.
    pub fn forward_scored<'s>(&self, x: &Matrix, scratch: &'s mut ForwardScratch) -> &'s [f64] {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        self.forward_rows(x.as_slice(), x.rows(), scratch)
    }

    /// [`Mlp::forward_scored`] over a raw row-major slice of `batch`
    /// rows — the form the serving path uses so standardised feature
    /// buffers never need a `Matrix` wrapper.
    ///
    /// # Panics
    /// If `rows.len() != batch * self.input_dim()`.
    pub fn forward_rows<'s>(
        &self,
        rows: &[f64],
        batch: usize,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        assert_eq!(rows.len(), batch * self.input_dim(), "row buffer length mismatch");
        let widest = self.layers.iter().map(Linear::output_dim).max().expect("layers non-empty");
        let need = batch * widest;
        let ForwardScratch { ping, pong } = scratch;
        if ping.len() < need {
            ping.resize(need, 0.0);
        }
        if pong.len() < need {
            pong.resize(need, 0.0);
        }
        let last = self.layers.len() - 1;
        // `src`: where the previous layer wrote (None = the input).
        let mut src_is_ping: Option<bool> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let n_out = batch * layer.output_dim();
            let n_in = batch * layer.input_dim();
            let dst_is_ping = match src_is_ping {
                None => {
                    layer.forward_into(rows, batch, &mut ping[..n_out]);
                    true
                }
                Some(true) => {
                    layer.forward_into(&ping[..n_in], batch, &mut pong[..n_out]);
                    false
                }
                Some(false) => {
                    layer.forward_into(&pong[..n_in], batch, &mut ping[..n_out]);
                    true
                }
            };
            let wrote = if dst_is_ping { &mut ping[..n_out] } else { &mut pong[..n_out] };
            if i < last {
                relu_slice(wrote);
            } else if self.activation == Activation::Sigmoid {
                sigmoid_slice(wrote);
            }
            src_is_ping = Some(dst_is_ping);
        }
        let n_final = batch * self.layers[last].output_dim();
        if src_is_ping == Some(true) {
            &ping[..n_final]
        } else {
            &pong[..n_final]
        }
    }

    /// Backward pass from `grad_output` (gradient of the loss w.r.t. the
    /// *post-activation* output) and one Adam step on every layer.
    pub fn backward_and_step(
        &mut self,
        cache: &ForwardCache<'_>,
        grad_output: &Matrix,
        hp: &AdamParams,
    ) {
        // Undo the output activation.
        let mut grad = match self.activation {
            Activation::Sigmoid => {
                // d sigmoid = s (1 - s)
                let mut g = grad_output.clone();
                for (gv, &s) in g.as_mut_slice().iter_mut().zip(cache.output.as_slice()) {
                    *gv *= s * (1.0 - s);
                }
                g
            }
            Activation::Identity => grad_output.clone(),
        };
        let last = self.layers.len() - 1;
        for i in (0..self.layers.len()).rev() {
            if i < last {
                // The input to layer i+1 is relu(pre-activation of layer i);
                // the ReLU derivative gates on that stored input.
                let gate = cache.input(i + 1);
                for (gv, &a) in grad.as_mut_slice().iter_mut().zip(gate.as_slice()) {
                    if a <= 0.0 {
                        *gv = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(cache.input(i), &grad);
        }
        for layer in &mut self.layers {
            layer.apply_adam(hp);
        }
    }

    /// Read access to a layer (tests, DeepSVDD centre computation).
    pub fn layer(&self, i: usize) -> &Linear {
        &self.layers[i]
    }

    /// Mutable access to a layer (finite-difference checks).
    pub fn layer_mut(&mut self, i: usize) -> &mut Linear {
        &mut self.layers[i]
    }
}

/// In-place ReLU over an activation buffer.
fn relu_slice(vals: &mut [f64]) {
    for v in vals {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place numerically-stable sigmoid over an activation buffer.
fn sigmoid_slice(vals: &mut [f64]) {
    for v in vals {
        *v = sigmoid(*v);
    }
}

/// Numerically-stable scalar sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mlp(seed: u64) -> Mlp {
        Mlp::new(&MlpConfig {
            input_dim: 3,
            hidden: vec![5, 4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed,
        })
    }

    #[test]
    fn output_in_unit_interval_for_sigmoid() {
        let mlp = tiny_mlp(0);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 - 6.0).collect()).unwrap();
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (4, 1));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_mlp(7).forward(&Matrix::filled(2, 3, 0.5));
        let b = tiny_mlp(7).forward(&Matrix::filled(2, 3, 0.5));
        assert_eq!(a.as_slice(), b.as_slice());
        let c = tiny_mlp(8).forward(&Matrix::filled(2, 3, 0.5));
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_check_full_network() {
        // MSE loss against a fixed target; compare analytic dW of every
        // layer with central finite differences.
        let mut mlp = tiny_mlp(42);
        let x = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f64) * 0.25 - 2.0).collect()).unwrap();
        let target = vec![0.1, 0.9, 0.4, 0.6, 0.2];
        let loss = |mlp: &Mlp| -> f64 {
            let out = mlp.forward(&x);
            out.as_slice().iter().zip(&target).map(|(o, t)| (o - t) * (o - t)).sum::<f64>()
                / target.len() as f64
        };
        // Analytic gradient: dL/do = 2 (o - t) / n.
        let cache = mlp.forward_cached(&x);
        let n = target.len() as f64;
        let grad_out_data: Vec<f64> =
            cache.output().as_slice().iter().zip(&target).map(|(o, t)| 2.0 * (o - t) / n).collect();
        let grad_out = Matrix::from_vec(5, 1, grad_out_data).unwrap();
        // Run backward WITHOUT the optimiser step: use a zero-lr Adam.
        let hp = AdamParams { lr: 0.0, ..AdamParams::default() };
        mlp.backward_and_step(&cache, &grad_out, &hp);
        let eps = 1e-6;
        for li in 0..mlp.n_layers() {
            let analytic = mlp.layer(li).grad_weights().to_vec();
            let n_params = analytic.len();
            for idx in (0..n_params).step_by(3) {
                let orig = mlp.layer(li).weights().as_slice()[idx];
                mlp.layer_mut(li).weights_mut().as_mut_slice()[idx] = orig + eps;
                let up = loss(&mlp);
                mlp.layer_mut(li).weights_mut().as_mut_slice()[idx] = orig - eps;
                let down = loss(&mlp);
                mlp.layer_mut(li).weights_mut().as_mut_slice()[idx] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic[idx]).abs() < 1e-5,
                    "layer {li} dW[{idx}]: numeric {numeric} vs analytic {}",
                    analytic[idx]
                );
            }
        }
    }

    #[test]
    fn forward_scored_is_bit_identical_to_forward() {
        let mlp = tiny_mlp(13);
        let mut scratch = ForwardScratch::default();
        // Reuse one scratch across shrinking and growing batch sizes;
        // stale tail contents must never leak into results.
        for rows in [7usize, 2, 9, 1] {
            let x =
                Matrix::from_vec(rows, 3, (0..rows * 3).map(|i| (i as f64) * 0.21 - 2.0).collect())
                    .unwrap();
            let expect = mlp.forward(&x);
            let got = mlp.forward_scored(&x, &mut scratch);
            assert_eq!(got.len(), rows);
            for (g, e) in got.iter().zip(expect.as_slice()) {
                assert_eq!(g.to_bits(), e.to_bits(), "batch of {rows}");
            }
        }
        // The same scratch serves a differently-shaped network.
        let other = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![11],
            output_dim: 4,
            activation: Activation::Identity,
            seed: 3,
        });
        let x = Matrix::filled(5, 2, 0.4);
        let got = other.forward_scored(&x, &mut scratch);
        assert_eq!(got.len(), 5 * 4);
        for (g, e) in got.iter().zip(other.forward(&x).as_slice()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn forward_rows_zero_batch_is_empty() {
        let mlp = tiny_mlp(14);
        let mut scratch = ForwardScratch::default();
        assert!(mlp.forward_rows(&[], 0, &mut scratch).is_empty());
    }

    #[test]
    fn identity_head_is_unbounded() {
        let mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 3,
            activation: Activation::Identity,
            seed: 1,
        });
        let y = mlp.forward(&Matrix::filled(1, 2, 100.0));
        assert_eq!(y.shape(), (1, 3));
        // With inputs of 100 the embedding should comfortably leave [0,1].
        assert!(y.as_slice().iter().any(|&v| !(0.0..=1.0).contains(&v)));
    }

    #[test]
    fn from_layers_round_trip_is_bit_identical() {
        let mlp = tiny_mlp(11);
        let rebuilt = Mlp::from_layers(
            mlp.layers()
                .iter()
                .map(|l| Linear::from_parts(l.weights().clone(), l.bias().to_vec()))
                .collect(),
            mlp.activation(),
        );
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.7 - 4.0).collect()).unwrap();
        assert_eq!(mlp.forward(&x).as_slice(), rebuilt.forward(&x).as_slice());
        assert_eq!(rebuilt.input_dim(), 3);
        assert_eq!(rebuilt.activation(), Activation::Sigmoid);
    }

    #[test]
    #[should_panic(expected = "must chain")]
    fn from_layers_rejects_mismatched_dims() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new(3, 5, &mut rng);
        let b = Linear::new(4, 1, &mut rng);
        let _ = Mlp::from_layers(vec![a, b], Activation::Sigmoid);
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_input_dim_rejected() {
        let _ = Mlp::new(&MlpConfig {
            input_dim: 0,
            hidden: vec![],
            output_dim: 1,
            activation: Activation::Identity,
            seed: 0,
        });
    }
}
