//! Mini-batch training loops: pseudo-supervised regression (the UADB
//! booster objective) and the DeepSVDD one-class objective.

use crate::adam::AdamParams;
use crate::mlp::Mlp;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use uadb_linalg::Matrix;

/// Mini-batch schedule. Defaults follow the paper's §IV-A: Adam lr 1e-3,
/// batch 256, 10 epochs per UADB step.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adam hyper-parameters.
    pub adam: AdamParams,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Passes over the data.
    pub epochs: usize,
    /// Shuffle seed (re-seeded per call so repeated calls differ only via
    /// this value).
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { adam: AdamParams::default(), batch_size: 256, epochs: 10, shuffle_seed: 0 }
    }
}

/// Trains `mlp` to regress `targets` from `x` under MSE, returning the
/// mean loss of the final epoch.
///
/// The gradient of the per-batch mean-squared error w.r.t. the sigmoid
/// output is `2 (o - t) / B`; the network applies the chain rule inward.
///
/// # Panics
/// If `targets.len() != x.rows()` or the network output is not 1-wide.
pub fn train_regression(mlp: &mut Mlp, x: &Matrix, targets: &[f64], cfg: &TrainConfig) -> f64 {
    assert_eq!(x.rows(), targets.len(), "target count must match rows");
    let n = x.rows();
    if n == 0 {
        return 0.0;
    }
    let batch = cfg.batch_size.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut last_epoch_loss = 0.0;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let cache = mlp.forward_cached(&xb);
            let out = cache.output();
            debug_assert_eq!(out.cols(), 1, "regression head must be 1-wide");
            let b = chunk.len() as f64;
            let mut grad = Matrix::zeros(chunk.len(), 1);
            let mut loss = 0.0;
            for (row, (&idx, g)) in chunk.iter().zip(grad.as_mut_slice().iter_mut()).enumerate() {
                let o = out.get(row, 0);
                let t = targets[idx];
                let diff = o - t;
                loss += diff * diff;
                *g = 2.0 * diff / b;
            }
            epoch_loss += loss / b;
            batches += 1;
            mlp.backward_and_step(&cache, &grad, &cfg.adam);
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f64;
    }
    last_epoch_loss
}

/// Trains `mlp` under the DeepSVDD objective: minimise the mean squared
/// distance of embeddings to a fixed `center`. Returns the mean distance
/// of the final epoch.
///
/// # Panics
/// If `center.len()` differs from the network output width.
pub fn train_svdd(mlp: &mut Mlp, x: &Matrix, center: &[f64], cfg: &TrainConfig) -> f64 {
    let n = x.rows();
    if n == 0 {
        return 0.0;
    }
    let batch = cfg.batch_size.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut last = 0.0;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            let cache = mlp.forward_cached(&xb);
            let out = cache.output();
            assert_eq!(out.cols(), center.len(), "center width must match output");
            let b = chunk.len() as f64;
            let mut grad = Matrix::zeros(out.rows(), out.cols());
            let mut loss = 0.0;
            for r in 0..out.rows() {
                let orow = out.row(r);
                let grow = grad.row_mut(r);
                for ((g, &o), &c) in grow.iter_mut().zip(orow).zip(center) {
                    let diff = o - c;
                    loss += diff * diff;
                    *g = 2.0 * diff / b;
                }
            }
            epoch_loss += loss / b;
            batches += 1;
            mlp.backward_and_step(&cache, &grad, &cfg.adam);
        }
        last = epoch_loss / batches.max(1) as f64;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Activation, MlpConfig};

    #[test]
    fn regression_overfits_tiny_dataset() {
        // Two separable blobs with opposite targets must be learnable.
        let x = Matrix::from_vec(
            8,
            2,
            vec![
                0.0, 0.0, 0.1, 0.1, -0.1, 0.0, 0.0, -0.1, // cluster A
                3.0, 3.0, 3.1, 3.0, 2.9, 3.1, 3.0, 2.9, // cluster B
            ],
        )
        .unwrap();
        let t = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![16],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            adam: AdamParams { lr: 0.01, ..AdamParams::default() },
            shuffle_seed: 1,
        };
        let loss = train_regression(&mut mlp, &x, &t, &cfg);
        assert!(loss < 0.01, "final loss {loss} too high");
        let pred = mlp.predict_vec(&x);
        for (p, t) in pred.iter().zip(&t) {
            assert!((p - t).abs() < 0.2, "pred {p} vs target {t}");
        }
    }

    #[test]
    fn training_loss_decreases() {
        let x = Matrix::from_vec(16, 1, (0..16).map(|i| i as f64 / 16.0).collect()).unwrap();
        let t: Vec<f64> = (0..16).map(|i| if i < 8 { 0.2 } else { 0.8 }).collect();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 1,
            hidden: vec![8],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 3,
        });
        let short = TrainConfig { epochs: 1, batch_size: 4, ..TrainConfig::default() };
        let first = train_regression(&mut mlp, &x, &t, &short);
        let long = TrainConfig { epochs: 100, batch_size: 4, ..TrainConfig::default() };
        let later = train_regression(&mut mlp, &x, &t, &long);
        assert!(later < first, "loss should decrease: {later} vs {first}");
    }

    #[test]
    fn svdd_pulls_embeddings_to_center() {
        let x = Matrix::from_vec(12, 2, (0..24).map(|i| (i as f64) * 0.1).collect()).unwrap();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 2,
            activation: Activation::Identity,
            seed: 5,
        });
        let center = vec![0.5, -0.5];
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 12,
            adam: AdamParams { lr: 0.01, ..AdamParams::default() },
            shuffle_seed: 0,
        };
        let final_dist = train_svdd(&mut mlp, &x, &center, &cfg);
        assert!(final_dist < 0.05, "embeddings should collapse: {final_dist}");
    }

    #[test]
    fn empty_input_is_noop() {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let loss = train_regression(&mut mlp, &Matrix::zeros(0, 2), &[], &TrainConfig::default());
        assert_eq!(loss, 0.0);
        let loss = train_svdd(&mut mlp, &Matrix::zeros(0, 2), &[0.0], &TrainConfig::default());
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "target count")]
    fn mismatched_targets_panic() {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let _ = train_regression(&mut mlp, &Matrix::zeros(3, 2), &[0.0], &TrainConfig::default());
    }

    #[test]
    fn deterministic_given_seeds() {
        let x = Matrix::from_vec(10, 2, (0..20).map(|i| i as f64 * 0.05).collect()).unwrap();
        let t: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let run = || {
            let mut mlp = Mlp::new(&MlpConfig {
                input_dim: 2,
                hidden: vec![6],
                output_dim: 1,
                activation: Activation::Sigmoid,
                seed: 9,
            });
            let cfg = TrainConfig { epochs: 5, batch_size: 4, ..TrainConfig::default() };
            train_regression(&mut mlp, &x, &t, &cfg);
            mlp.predict_vec(&x)
        };
        assert_eq!(run(), run());
    }
}
