//! Mini-batch training loops: pseudo-supervised regression (the UADB
//! booster objective) and the DeepSVDD one-class objective.
//!
//! Both loops run on the zero-allocation [`TrainScratch`] engine
//! (`crate::scratch`): batch rows are gathered once into a reusable
//! buffer (no per-chunk `select_rows` allocation), activations and
//! gradients live in persistent buffers, and `workers > 1` splits the
//! row-local phases across scoped threads with a fixed-order reduction
//! that keeps trained weights bit-identical for any worker count.

use crate::adam::AdamParams;
use crate::mlp::Mlp;
use crate::scratch::{train_batch_step, Objective, TrainScratch};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use uadb_linalg::Matrix;

/// Per-epoch training observer: called once after every completed
/// epoch with `(epoch index, row-weighted mean loss, epoch wall-clock
/// ms)`. Purely observational — the hook cannot influence training, so
/// trained weights stay bit-identical whether or not one is installed.
#[derive(Clone)]
pub struct ProgressHook(std::sync::Arc<dyn Fn(usize, f64, u64) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback as a progress hook.
    pub fn new(f: impl Fn(usize, f64, u64) + Send + Sync + 'static) -> Self {
        Self(std::sync::Arc::new(f))
    }

    /// Invokes the hook for one completed epoch.
    pub fn call(&self, epoch: usize, mean_loss: f64, elapsed_ms: u64) {
        (self.0)(epoch, mean_loss, elapsed_ms);
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Mini-batch schedule. Defaults follow the paper's §IV-A: Adam lr 1e-3,
/// batch 256, 10 epochs per UADB step.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adam hyper-parameters.
    pub adam: AdamParams,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Passes over the data.
    pub epochs: usize,
    /// Shuffle seed (re-seeded per call so repeated calls differ only via
    /// this value).
    pub shuffle_seed: u64,
    /// Data-parallel training workers. `1` (the default) trains on the
    /// calling thread; `0` means all available cores. Trained weights are
    /// bit-identical for every value — the parallel decomposition never
    /// reorders a floating-point reduction (see `crate::scratch`).
    pub workers: usize,
    /// Optional per-epoch observer (`None` trains silently).
    pub progress: Option<ProgressHook>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            adam: AdamParams::default(),
            batch_size: 256,
            epochs: 10,
            shuffle_seed: 0,
            workers: 1,
            progress: None,
        }
    }
}

/// Resolves the configured worker count (`0` = all available cores).
fn resolve_workers(cfg: &TrainConfig) -> usize {
    if cfg.workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.workers
    }
}

/// Trains `mlp` to regress `targets` from `x` under MSE, returning the
/// row-weighted mean loss of the final epoch (`Σ squared error / n` —
/// every row counts equally, regardless of how the epoch splits into
/// batches).
///
/// The gradient of the per-batch mean-squared error w.r.t. the sigmoid
/// output is `2 (o - t) / B`; the network applies the chain rule inward.
///
/// # Panics
/// If `targets.len() != x.rows()` or (debug builds) the network output
/// is not 1-wide — both checked before the empty-input early return.
pub fn train_regression(mlp: &mut Mlp, x: &Matrix, targets: &[f64], cfg: &TrainConfig) -> f64 {
    assert_eq!(x.rows(), targets.len(), "target count must match rows");
    debug_assert_eq!(mlp.output_dim(), 1, "regression head must be 1-wide");
    train_loop(mlp, x, cfg, Some(targets), None)
}

/// Trains `mlp` under the DeepSVDD objective: minimise the mean squared
/// distance of embeddings to a fixed `center`. Returns the row-weighted
/// mean distance of the final epoch (`Σ squared distance / n`).
///
/// # Panics
/// If `center.len()` differs from the network output width — checked
/// before the empty-input early return, so the contract holds for
/// zero-row inputs too.
pub fn train_svdd(mlp: &mut Mlp, x: &Matrix, center: &[f64], cfg: &TrainConfig) -> f64 {
    assert_eq!(mlp.output_dim(), center.len(), "center width must match output");
    train_loop(mlp, x, cfg, None, Some(center))
}

/// Shared epoch/batch driver. Exactly one of `targets` (MSE) or
/// `center` (SVDD) must be `Some`.
fn train_loop(
    mlp: &mut Mlp,
    x: &Matrix,
    cfg: &TrainConfig,
    targets: Option<&[f64]>,
    center: Option<&[f64]>,
) -> f64 {
    let n = x.rows();
    if n == 0 {
        return 0.0;
    }
    let batch = cfg.batch_size.max(1);
    let workers = resolve_workers(cfg);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut scratch = TrainScratch::default();
    let mut last_epoch_loss = 0.0;
    for epoch in 0..cfg.epochs {
        let epoch_started = std::time::Instant::now();
        order.shuffle(&mut rng);
        let mut epoch_sum = 0.0;
        for chunk in order.chunks(batch) {
            // Grow-only: after the first epoch every buffer is sized and
            // the steady-state loop allocates nothing.
            scratch.prepare(mlp, chunk.len());
            scratch.gather(x, chunk);
            let objective = match (targets, center) {
                (Some(t), None) => {
                    scratch.gather_targets(t, chunk);
                    Objective::Mse
                }
                (None, Some(c)) => Objective::Svdd { center: c },
                _ => unreachable!("exactly one objective"),
            };
            epoch_sum +=
                train_batch_step(mlp, &mut scratch, chunk.len(), &objective, &cfg.adam, workers);
        }
        last_epoch_loss = epoch_sum / n as f64;
        if let Some(hook) = &cfg.progress {
            hook.call(epoch, last_epoch_loss, epoch_started.elapsed().as_millis() as u64);
        }
    }
    last_epoch_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Activation, MlpConfig};

    #[test]
    fn regression_overfits_tiny_dataset() {
        // Two separable blobs with opposite targets must be learnable.
        let x = Matrix::from_vec(
            8,
            2,
            vec![
                0.0, 0.0, 0.1, 0.1, -0.1, 0.0, 0.0, -0.1, // cluster A
                3.0, 3.0, 3.1, 3.0, 2.9, 3.1, 3.0, 2.9, // cluster B
            ],
        )
        .unwrap();
        let t = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![16],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            adam: AdamParams { lr: 0.01, ..AdamParams::default() },
            shuffle_seed: 1,
            workers: 1,
            progress: None,
        };
        let loss = train_regression(&mut mlp, &x, &t, &cfg);
        assert!(loss < 0.01, "final loss {loss} too high");
        let pred = mlp.predict_vec(&x);
        for (p, t) in pred.iter().zip(&t) {
            assert!((p - t).abs() < 0.2, "pred {p} vs target {t}");
        }
    }

    #[test]
    fn training_loss_decreases() {
        let x = Matrix::from_vec(16, 1, (0..16).map(|i| i as f64 / 16.0).collect()).unwrap();
        let t: Vec<f64> = (0..16).map(|i| if i < 8 { 0.2 } else { 0.8 }).collect();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 1,
            hidden: vec![8],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 3,
        });
        let short = TrainConfig { epochs: 1, batch_size: 4, ..TrainConfig::default() };
        let first = train_regression(&mut mlp, &x, &t, &short);
        let long = TrainConfig { epochs: 100, batch_size: 4, ..TrainConfig::default() };
        let later = train_regression(&mut mlp, &x, &t, &long);
        assert!(later < first, "loss should decrease: {later} vs {first}");
    }

    #[test]
    fn svdd_pulls_embeddings_to_center() {
        let x = Matrix::from_vec(12, 2, (0..24).map(|i| (i as f64) * 0.1).collect()).unwrap();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![8],
            output_dim: 2,
            activation: Activation::Identity,
            seed: 5,
        });
        let center = vec![0.5, -0.5];
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 12,
            adam: AdamParams { lr: 0.01, ..AdamParams::default() },
            shuffle_seed: 0,
            workers: 1,
            progress: None,
        };
        let final_dist = train_svdd(&mut mlp, &x, &center, &cfg);
        assert!(final_dist < 0.05, "embeddings should collapse: {final_dist}");
    }

    #[test]
    fn empty_input_is_noop() {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let loss = train_regression(&mut mlp, &Matrix::zeros(0, 2), &[], &TrainConfig::default());
        assert_eq!(loss, 0.0);
        let loss = train_svdd(&mut mlp, &Matrix::zeros(0, 2), &[0.0], &TrainConfig::default());
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "center width must match output")]
    fn svdd_center_width_checked_even_for_empty_input() {
        // Regression test: the width validation used to live inside the
        // batch loop, so a zero-row input silently skipped it.
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![4],
            output_dim: 2,
            activation: Activation::Identity,
            seed: 0,
        });
        let _ = train_svdd(&mut mlp, &Matrix::zeros(0, 2), &[0.0], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "target count")]
    fn mismatched_targets_panic() {
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let _ = train_regression(&mut mlp, &Matrix::zeros(3, 2), &[0.0], &TrainConfig::default());
    }

    #[test]
    fn progress_hook_sees_every_epoch_and_final_loss() {
        let x = Matrix::from_vec(12, 1, (0..12).map(|i| i as f64 / 12.0).collect()).unwrap();
        let t: Vec<f64> = (0..12).map(|i| (i % 2) as f64).collect();
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 5,
            progress: Some(ProgressHook::new(move |epoch, loss, ms| {
                sink.lock().unwrap().push((epoch, loss, ms));
            })),
            ..TrainConfig::default()
        };
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 1,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 11,
        });
        let final_loss = train_regression(&mut mlp, &x, &t, &cfg);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(seen.last().unwrap().1, final_loss);

        // The hook is observational: weights are bit-identical without it.
        let mut silent = Mlp::new(&MlpConfig {
            input_dim: 1,
            hidden: vec![4],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 11,
        });
        let quiet_cfg = TrainConfig { epochs: 4, batch_size: 5, ..TrainConfig::default() };
        let quiet_loss = train_regression(&mut silent, &x, &t, &quiet_cfg);
        assert_eq!(quiet_loss, final_loss);
        assert_eq!(silent.predict_vec(&x), mlp.predict_vec(&x));
    }

    #[test]
    fn deterministic_given_seeds() {
        let x = Matrix::from_vec(10, 2, (0..20).map(|i| i as f64 * 0.05).collect()).unwrap();
        let t: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let run = || {
            let mut mlp = Mlp::new(&MlpConfig {
                input_dim: 2,
                hidden: vec![6],
                output_dim: 1,
                activation: Activation::Sigmoid,
                seed: 9,
            });
            let cfg = TrainConfig { epochs: 5, batch_size: 4, ..TrainConfig::default() };
            train_regression(&mut mlp, &x, &t, &cfg);
            mlp.predict_vec(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ragged_batch_loss_is_row_weighted_mean() {
        // 10 rows with batch 4 splits 4/4/2. With lr = 0 the weights
        // never move, so the reported final-epoch loss must equal
        // Σ (f(x_r) - t_r)² / n computed independently — the historic
        // mean-of-batch-means over-weighted the trailing 2-row batch.
        let x = Matrix::from_vec(10, 2, (0..20).map(|i| i as f64 * 0.17 - 1.5).collect()).unwrap();
        let t: Vec<f64> = (0..10).map(|i| (i % 3) as f64 * 0.4).collect();
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![5],
            output_dim: 1,
            activation: Activation::Sigmoid,
            seed: 21,
        });
        let expect = {
            let pred = mlp.predict_vec(&x);
            pred.iter().zip(&t).map(|(o, tv)| (o - tv) * (o - tv)).sum::<f64>() / 10.0
        };
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 4,
            adam: AdamParams { lr: 0.0, ..AdamParams::default() },
            shuffle_seed: 7,
            workers: 1,
            progress: None,
        };
        let got = train_regression(&mut mlp, &x, &t, &cfg);
        assert!((got - expect).abs() < 1e-12, "loss {got} should be row-weighted mean {expect}");
    }

    #[test]
    fn ragged_batch_svdd_loss_is_row_weighted_mean() {
        // Same invariant for the SVDD objective: 7 rows, batch 3 → 3/3/1.
        let x = Matrix::from_vec(7, 2, (0..14).map(|i| i as f64 * 0.11 - 0.6).collect()).unwrap();
        let center = vec![0.3, -0.2];
        let mut mlp = Mlp::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![6],
            output_dim: 2,
            activation: Activation::Identity,
            seed: 4,
        });
        let expect = {
            let out = mlp.forward(&x);
            let mut sum = 0.0;
            for r in 0..7 {
                for (o, c) in out.row(r).iter().zip(&center) {
                    sum += (o - c) * (o - c);
                }
            }
            sum / 7.0
        };
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 3,
            adam: AdamParams { lr: 0.0, ..AdamParams::default() },
            shuffle_seed: 2,
            workers: 1,
            progress: None,
        };
        let got = train_svdd(&mut mlp, &x, &center, &cfg);
        assert!((got - expect).abs() < 1e-12, "loss {got} should be row-weighted mean {expect}");
    }
}
