//! The Adam optimiser (Kingma & Ba, 2015) with PyTorch-default
//! hyper-parameters.

/// Adam hyper-parameters; defaults match `torch.optim.Adam`.
#[derive(Debug, Clone, Copy)]
pub struct AdamParams {
    /// Learning rate (the paper uses 1e-3).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
}

impl Default for AdamParams {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Per-tensor Adam state (first and second moment plus step counter).
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamState {
    /// State for a parameter tensor of `len` scalars.
    pub fn new(len: usize) -> Self {
        Self { m: vec![0.0; len], v: vec![0.0; len], t: 0 }
    }

    /// Applies one Adam update: `params -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// If `params` and `grads` lengths differ from the state length —
    /// that is a wiring bug, not a runtime condition.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], hp: &AdamParams) {
        assert_eq!(params.len(), self.m.len(), "param/state length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad/state length mismatch");
        self.t += 1;
        let b1t = 1.0 - hp.beta1.powi(self.t as i32);
        let b2t = 1.0 - hp.beta2.powi(self.t as i32);
        for ((p, &g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = hp.beta1 * *m + (1.0 - hp.beta1) * g;
            *v = hp.beta2 * *v + (1.0 - hp.beta2) * g * g;
            let m_hat = *m / b1t;
            let v_hat = *v / b2t;
            *p -= hp.lr * m_hat / (v_hat.sqrt() + hp.eps);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_lr() {
        // With bias correction, the very first Adam step is ≈ -lr * sign(g).
        let mut s = AdamState::new(1);
        let mut p = vec![1.0];
        s.step(&mut p, &[0.5], &AdamParams::default());
        assert!((p[0] - (1.0 - 1e-3)).abs() < 1e-6, "got {}", p[0]);
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimise f(x) = (x-3)^2 with gradient 2(x-3).
        let mut s = AdamState::new(1);
        let mut p = vec![0.0];
        let hp = AdamParams { lr: 0.05, ..AdamParams::default() };
        for _ in 0..2000 {
            let g = 2.0 * (p[0] - 3.0);
            s.step(&mut p, &[g], &hp);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "got {}", p[0]);
    }

    #[test]
    fn zero_gradient_keeps_params() {
        let mut s = AdamState::new(2);
        let mut p = vec![1.0, -2.0];
        for _ in 0..10 {
            s.step(&mut p, &[0.0, 0.0], &AdamParams::default());
        }
        assert_eq!(p, vec![1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut s = AdamState::new(2);
        let mut p = vec![1.0];
        s.step(&mut p, &[0.0], &AdamParams::default());
    }
}
