//! Bounded ring buffer for slow-request capture.
//!
//! The ring is mutex-guarded, but by construction it is only touched
//! when a request has already blown the slowness threshold (or when an
//! operator hits `/admin/slow`), so the lock never sits on the hot
//! path. Pushing past capacity evicts the oldest entry.

use std::collections::VecDeque;
use std::sync::Mutex;

#[derive(Debug)]
pub struct SlowRing<T> {
    cap: usize,
    buf: Mutex<VecDeque<T>>,
}

impl<T: Clone> SlowRing<T> {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Self { cap, buf: Mutex::new(VecDeque::with_capacity(cap)) }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append an entry, evicting the oldest when full.
    pub fn push(&self, entry: T) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(entry);
    }

    /// Entries oldest-first.
    pub fn snapshot(&self) -> Vec<T> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_in_order() {
        let ring = SlowRing::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn under_capacity_keeps_all() {
        let ring = SlowRing::new(4);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.snapshot(), vec!["a", "b"]);
    }
}
