//! Metric registry and Prometheus text exposition rendering.
//!
//! Series are registered once (at startup or first use of a dynamic
//! label set) and handed back as `Arc` handles; the hot path touches
//! only the atomic inside the handle, never the registry lock.
//! Rendering takes the lock briefly to walk the family list, then reads
//! each atomic once.

use crate::metrics::{Counter, FloatGauge, Gauge, Histogram};
use std::fmt::Write as _;
use std::sync::{Arc, RwLock};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Decimal right-shift applied to histogram bounds and sums at
    /// render time (e.g. 9 to expose nanosecond samples in seconds).
    /// Integer math keeps the exposition exact — no float noise.
    shift: u32,
    series: Vec<Series>,
}

/// Owns registered metric families and renders them as Prometheus text
/// exposition format (version 0.0.4).
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter series; repeated calls with the same name
    /// append a new labeled series to the existing family.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, Kind::Counter, 0, labels, Metric::Counter(c.clone()));
        c
    }

    /// Register an integer gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, Kind::Gauge, 0, labels, Metric::Gauge(g.clone()));
        g
    }

    /// Register a floating-point gauge series.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        let g = Arc::new(FloatGauge::new());
        self.push(name, help, Kind::Gauge, 0, labels, Metric::FloatGauge(g.clone()));
        g
    }

    /// Register a histogram series. `shift` divides raw `u64` samples
    /// by `10^shift` at render time (use `9` for nanosecond samples
    /// exposed as seconds, per Prometheus convention).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        shift: u32,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.push(name, help, Kind::Histogram, shift, labels, Metric::Histogram(h.clone()));
        h
    }

    fn push(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        shift: u32,
        labels: &[(&str, &str)],
        metric: Metric,
    ) {
        let series = Series {
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            metric,
        };
        let mut fams = self.families.write().unwrap();
        if let Some(fam) = fams.iter_mut().find(|f| f.name == name) {
            assert_eq!(fam.kind, kind, "metric {name} re-registered with a different type");
            fam.series.push(series);
        } else {
            fams.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                shift,
                series: vec![series],
            });
        }
    }

    /// Render every registered family in registration order.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.render_into(&mut out);
        out
    }

    pub fn render_into(&self, out: &mut String) {
        let fams = self.families.read().unwrap();
        for fam in fams.iter() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            for series in &fam.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        write_labels(out, &fam.name, &series.labels, None);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        write_labels(out, &fam.name, &series.labels, None);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Metric::FloatGauge(g) => {
                        write_labels(out, &fam.name, &series.labels, None);
                        let _ = writeln!(out, " {}", fmt_f64(g.get()));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &bucket) in snap.buckets.iter().enumerate() {
                            cum += bucket;
                            let le = if i < snap.bounds.len() {
                                fmt_shifted(snap.bounds[i], fam.shift)
                            } else {
                                "+Inf".to_string()
                            };
                            let bucket_name = format!("{}_bucket", fam.name);
                            write_labels(out, &bucket_name, &series.labels, Some(&le));
                            let _ = writeln!(out, " {cum}");
                        }
                        write_labels(out, &format!("{}_sum", fam.name), &series.labels, None);
                        let _ = writeln!(out, " {}", fmt_shifted(snap.sum, fam.shift));
                        write_labels(out, &format!("{}_count", fam.name), &series.labels, None);
                        let _ = writeln!(out, " {}", snap.count);
                    }
                }
            }
        }
    }
}

/// Format `v / 10^shift` as an exact decimal string (e.g. `11999`
/// shifted by 9 → `0.000011999`).
fn fmt_shifted(v: u64, shift: u32) -> String {
    if shift == 0 {
        return v.to_string();
    }
    let div = 10u64.pow(shift);
    let int = v / div;
    let frac = v % div;
    if frac == 0 {
        return int.to_string();
    }
    let mut s = format!("{int}.{frac:0width$}", width = shift as usize);
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// Format an `f64` the way Prometheus expects: plain decimal (Rust's
/// `Display` for `f64` never produces scientific notation), with NaN
/// and infinities spelled out.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_labels(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>) {
    out.push_str(name);
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counter_and_gauge() {
        let reg = Registry::new();
        let c = reg.counter("uadb_requests_total", "Total requests.", &[("model", "m")]);
        let g = reg.gauge("uadb_queue_depth", "Queued shards.", &[]);
        c.add(3);
        g.set(2);
        let text = reg.render();
        assert!(text.contains("# HELP uadb_requests_total Total requests."));
        assert!(text.contains("# TYPE uadb_requests_total counter"));
        assert!(text.contains("uadb_requests_total{model=\"m\"} 3"));
        assert!(text.contains("# TYPE uadb_queue_depth gauge"));
        assert!(text.contains("uadb_queue_depth 2"));
    }

    #[test]
    fn histogram_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "Latency.", &[], &[1_000, 2_000], 9);
        h.record(500);
        h.record(1_500);
        h.record(9_999);
        let text = reg.render();
        assert!(text.contains("lat_bucket{le=\"0.000001\"} 1"));
        assert!(text.contains("lat_bucket{le=\"0.000002\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
        assert!(text.contains("lat_sum 0.000011999"));
    }

    #[test]
    fn same_family_multiple_series() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", "Hits.", &[("variant", "booster")]);
        let b = reg.counter("hits_total", "Hits.", &[("variant", "teacher")]);
        a.inc();
        b.add(2);
        let text = reg.render();
        // HELP/TYPE emitted once per family.
        assert_eq!(text.matches("# TYPE hits_total counter").count(), 1);
        assert!(text.contains("hits_total{variant=\"booster\"} 1"));
        assert!(text.contains("hits_total{variant=\"teacher\"} 2"));
    }

    #[test]
    fn label_escaping() {
        let reg = Registry::new();
        reg.counter("c_total", "C.", &[("path", "a\"b\\c")]);
        let text = reg.render();
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\"} 0"));
    }
}
