//! Lock-free metric primitives.
//!
//! Every write path is wait-free (relaxed atomic RMW); the only loop is
//! the CAS retry in [`FloatGauge::add`], which is off the request hot
//! path. Histograms use fixed bucket bounds precomputed at
//! construction, so recording a sample is a binary search over a
//! `Box<[u64]>` (≤7 comparisons for the standard latency layout) plus
//! two relaxed `fetch_add`s — no allocation, no locks, no branches on
//! shared state.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed integer gauge (queue depths, open connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Floating-point gauge, stored as `f64` bits in an `AtomicU64`.
#[derive(Debug)]
pub struct FloatGauge(AtomicU64);

impl Default for FloatGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl FloatGauge {
    pub const fn new() -> Self {
        // 0.0f64 is all-zero bits, so `to_bits` is not needed in const.
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// CAS-loop accumulate (used off the hot path).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Fixed-bucket histogram over `u64` samples (nanoseconds, by
/// convention). Bucket `i` counts samples `<= bounds[i]`; one extra
/// overflow bucket counts the rest (`+Inf`).
///
/// Reads are snapshot-consistent in the sense that the rendered
/// `_count` is derived by summing the bucket reads themselves, so the
/// invariant `sum(buckets) == count` holds in every exposition even
/// while writers race; `_sum` is tracked separately and may trail the
/// bucket counts by in-flight samples.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    /// Build a histogram from strictly increasing upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: bounds.into(), buckets, sum: AtomicU64::new(0) }
    }

    /// Standard latency layout: power-of-1.25 bounds from 1µs to >60s
    /// (80 buckets), in nanoseconds.
    pub fn latency_bounds() -> Vec<u64> {
        let mut bounds = Vec::with_capacity(80);
        let mut b = 1_000f64; // 1µs
        while b < 60_000_000_000f64 {
            bounds.push(b as u64);
            b *= 1.25;
        }
        bounds.push(b as u64);
        bounds
    }

    // audit: no_alloc
    // audit: no_panic
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Read every bucket once; the snapshot's count is the sum of those
    /// reads, so it is internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Upper bounds; `buckets` has one more entry (the overflow bucket).
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1): the upper
    /// bound of the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Returns `None` when empty. Samples landing in
    /// the overflow bucket report the last finite bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.bounds[i.min(self.bounds.len() - 1)]);
            }
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);

        let f = FloatGauge::new();
        assert_eq!(f.get(), 0.0);
        f.set(1.5);
        f.add(0.25);
        assert_eq!(f.get(), 1.75);
    }

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.record(5); // <= 10
        h.record(10); // <= 10 (bounds are inclusive)
        h.record(11); // <= 100
        h.record(1000); // <= 1000
        h.record(5000); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 10 + 11 + 1000 + 5000);
    }

    #[test]
    fn latency_bounds_shape() {
        let b = Histogram::latency_bounds();
        assert_eq!(b[0], 1_000);
        assert!(*b.last().unwrap() >= 60_000_000_000);
        assert!(b.len() <= 90, "bucket count stays bounded: {}", b.len());
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantiles() {
        let h = Histogram::new(&[10, 20, 30, 40]);
        for v in [1, 2, 12, 22, 23, 24, 31, 32, 33, 50] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), Some(10));
        assert_eq!(s.quantile(0.5), Some(30));
        assert_eq!(s.quantile(1.0), Some(40)); // overflow reports last bound
        assert_eq!(Histogram::new(&[1]).snapshot().quantile(0.5), None);
    }
}
