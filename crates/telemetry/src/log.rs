//! Leveled, rate-limited stderr logger.
//!
//! One process-global [`Logger`] replaces ad-hoc `eprintln!` calls:
//! messages carry a level, a component tag, and structured key/value
//! fields, rendered either as human-readable text or JSON lines. A
//! fixed one-second window caps emission volume so a failing peer
//! cannot turn the log into a denial of service; suppressed messages
//! are counted and summarized when the window rolls over.
//!
//! Level and format checks are single relaxed atomic loads, so a
//! disabled `debug!`-style call costs one load and one branch.

use crate::clock::now_ns;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

const WINDOW_NS: u64 = 1_000_000_000;
const DEFAULT_PER_WINDOW: u64 = 200;

#[derive(Debug)]
pub struct Logger {
    level: AtomicU8,
    json: AtomicBool,
    window_start: AtomicU64,
    window_count: AtomicU64,
    per_window: AtomicU64,
    dropped_total: AtomicU64,
}

impl Logger {
    pub const fn new() -> Self {
        Self {
            level: AtomicU8::new(Level::Info as u8),
            json: AtomicBool::new(false),
            window_start: AtomicU64::new(0),
            window_count: AtomicU64::new(0),
            per_window: AtomicU64::new(DEFAULT_PER_WINDOW),
            dropped_total: AtomicU64::new(0),
        }
    }

    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub fn set_json(&self, json: bool) {
        self.json.store(json, Ordering::Relaxed);
    }

    /// Messages allowed per one-second window before suppression.
    pub fn set_rate_limit(&self, per_second: u64) {
        self.per_window.store(per_second.max(1), Ordering::Relaxed);
    }

    /// Total messages suppressed by the rate limiter.
    pub fn dropped(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 <= self.level.load(Ordering::Relaxed)
    }

    /// Emit one message; `fields` are structured key/value pairs
    /// appended after the text (or embedded in the JSON object).
    pub fn log(&self, level: Level, component: &str, msg: &str, fields: &[(&str, &str)]) {
        if !self.enabled(level) {
            return;
        }
        match self.admit() {
            Admit::Pass => {}
            Admit::Drop => return,
            Admit::PassWithSummary(dropped) => {
                let d = dropped.to_string();
                let line = format_line(
                    self.json.load(Ordering::Relaxed),
                    Level::Warn,
                    "log",
                    "rate limit: messages suppressed",
                    &[("dropped", &d)],
                );
                eprintln!("{line}");
            }
        }
        let line = format_line(self.json.load(Ordering::Relaxed), level, component, msg, fields);
        eprintln!("{line}");
    }

    /// Window-based admission: allow `per_window` messages per second,
    /// count the rest. The CAS races are benign — worst case a handful
    /// of extra messages pass at a window boundary.
    fn admit(&self) -> Admit {
        let now = now_ns();
        let start = self.window_start.load(Ordering::Relaxed);
        if now.saturating_sub(start) >= WINDOW_NS
            && self
                .window_start
                .compare_exchange(start, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let missed = self.window_count.swap(1, Ordering::Relaxed);
            let limit = self.per_window.load(Ordering::Relaxed);
            let dropped = missed.saturating_sub(limit);
            if dropped > 0 {
                return Admit::PassWithSummary(dropped);
            }
            return Admit::Pass;
        }
        let seen = self.window_count.fetch_add(1, Ordering::Relaxed);
        if seen < self.per_window.load(Ordering::Relaxed) {
            Admit::Pass
        } else {
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            Admit::Drop
        }
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new()
    }
}

enum Admit {
    Pass,
    Drop,
    PassWithSummary(u64),
}

static GLOBAL: Logger = Logger::new();

/// The process-global logger.
pub fn logger() -> &'static Logger {
    &GLOBAL
}

/// Render one log line. Public so the exact wire format is testable.
pub fn format_line(
    json: bool,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, &str)],
) -> String {
    let mut out = String::with_capacity(64 + msg.len());
    if json {
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"level\":\"{}\",\"component\":\"{}\",\"msg\":\"{}\"",
            now_ns(),
            level.as_str(),
            escape_json(component),
            escape_json(msg)
        );
        for (k, v) in fields {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push('}');
    } else {
        let _ = write!(out, "[{}] {}: {}", level.as_str(), component, msg);
        for (k, v) in fields {
            let _ = write!(out, " {k}={v}");
        }
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gating() {
        let lg = Logger::new();
        lg.set_level(Level::Warn);
        assert!(lg.enabled(Level::Error));
        assert!(lg.enabled(Level::Warn));
        assert!(!lg.enabled(Level::Info));
        assert!(!lg.enabled(Level::Debug));
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("trace"), None);
    }

    #[test]
    fn text_format() {
        let line = format_line(false, Level::Warn, "pool", "worker panicked", &[("trace", "42")]);
        assert_eq!(line, "[warn] pool: worker panicked trace=42");
    }

    #[test]
    fn json_format_escapes() {
        let line = format_line(true, Level::Error, "http", "bad \"request\"", &[("path", "/a\nb")]);
        assert!(line.starts_with("{\"ts_ns\":"));
        assert!(line.contains("\"level\":\"error\""));
        assert!(line.contains("\"msg\":\"bad \\\"request\\\"\""));
        assert!(line.contains("\"path\":\"/a\\nb\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn rate_limit_counts_drops() {
        let lg = Logger::new();
        lg.set_level(Level::Debug);
        lg.set_rate_limit(5);
        // First call initializes the window; subsequent calls admit up
        // to the limit then count drops.
        for _ in 0..50 {
            match lg.admit() {
                Admit::Pass | Admit::PassWithSummary(_) => {}
                Admit::Drop => {}
            }
        }
        assert!(lg.dropped() > 0, "excess messages were counted as dropped");
    }
}
