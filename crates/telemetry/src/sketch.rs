//! Lock-free model-quality sketches.
//!
//! Two primitives back the drift plane, both writable from pool workers
//! without allocation or locks:
//!
//! - [`ScoreSketch`]: a fixed-bucket distribution sketch over the
//!   calibrated score space `[0, 1]`. Bucket edges are uniform, so the
//!   record path is one multiply + clamp + two relaxed `fetch_add`s —
//!   no binary search. Snapshots feed PSI (population stability index)
//!   computations against a training-time baseline.
//! - [`FeatureStats`]: per-feature streaming first/second moments
//!   (Σx, Σx²) maintained by CAS-over-`f64`-bits, the same discipline
//!   as [`FloatGauge`](crate::metrics::FloatGauge) and
//!   [`DecayStat`](crate::stream::DecayStat). Each add is a CAS loop,
//!   so sums are exact up to floating-point commutativity; the derived
//!   mean/variance back the standardized per-feature shift signal.
//!
//! Readers are snapshot-based and never block writers; `reset` is a
//! plain relaxed store per cell (a racing record may land on either
//! side of the window boundary, which is fine for a drift window).

use crate::stream::cas_f64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of uniform buckets a [`ScoreSketch`] divides `[0, 1]` into.
///
/// 20 buckets of width 0.05 is the conventional PSI resolution: fine
/// enough that a shifted score pile-up moves mass across several edges,
/// coarse enough that a few thousand live samples populate every bucket
/// a healthy distribution touches. The anomaly threshold 0.5 falls
/// exactly on a bucket edge, so threshold rates are exact.
pub const SCORE_BUCKETS: usize = 20;

/// Lock-free fixed-bucket sketch of a calibrated score distribution.
///
/// Scores are clamped into `[0, 1]` (calibration already maps there;
/// the clamp only defends against numerical spill) and counted into
/// `SCORE_BUCKETS` uniform buckets. All updates are relaxed atomics:
/// buckets are independent counters and the total is advisory, so no
/// ordering between cells is required.
#[derive(Debug)]
pub struct ScoreSketch {
    buckets: [AtomicU64; SCORE_BUCKETS],
    count: AtomicU64,
}

impl Default for ScoreSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreSketch {
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), count: AtomicU64::new(0) }
    }

    #[inline]
    fn bucket_index(score: f64) -> usize {
        // `as usize` saturates: negative → 0, > B → clamped below.
        ((score * SCORE_BUCKETS as f64) as usize).min(SCORE_BUCKETS - 1)
    }

    /// Fold one calibrated score into the sketch.
    ///
    /// Non-finite scores are dropped rather than polluting an edge
    /// bucket — a NaN score is a scoring bug, not a distribution shift.
    // audit: no_alloc
    // audit: no_panic
    pub fn record(&self, score: f64) {
        if !score.is_finite() {
            return;
        }
        self.buckets[Self::bucket_index(score)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a batch of scores with a single shared total update.
    // audit: no_alloc
    // audit: no_panic
    pub fn record_batch(&self, scores: &[f64]) {
        let mut n = 0u64;
        for &s in scores {
            if !s.is_finite() {
                continue;
            }
            self.buckets[Self::bucket_index(s)].fetch_add(1, Ordering::Relaxed);
            n += 1;
        }
        if n > 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Total recorded samples.
    pub fn samples(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    ///
    /// Buckets are read independently, so a snapshot taken while
    /// writers race may be off by the in-flight samples — exact
    /// consistency returns once writers quiesce, which is all a scrape
    /// needs.
    pub fn snapshot(&self) -> SketchSnapshot {
        let counts = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        SketchSnapshot { counts }
    }

    /// Zero every bucket, starting a fresh drift window.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Immutable bucket counts over uniform `[0, 1]` score buckets —
/// either a [`ScoreSketch`] snapshot or a persisted training baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Per-bucket sample counts; bucket `i` covers
    /// `[i/B, (i+1)/B)` with the last bucket closed at 1.
    pub counts: Vec<u64>,
}

/// Proportion floor used when computing PSI, so an empty bucket on one
/// side contributes a large-but-finite term instead of ±∞.
const PSI_FLOOR: f64 = 1e-4;

impl SketchSnapshot {
    /// Wrap persisted baseline counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Total samples across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of samples in buckets whose lower edge is ≥ `threshold`
    /// — exact when the threshold lies on a bucket edge (the anomaly
    /// threshold 0.5 does).
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let b = self.counts.len() as f64;
        let above: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as f64 / b >= threshold - 1e-12)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / total as f64
    }

    /// Approximate quantile by linear interpolation within the bucket
    /// containing the `q`-th sample. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let width = 1.0 / self.counts.len() as f64;
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let within = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return (i as f64 + within) * width;
            }
            cum = next;
        }
        1.0
    }

    /// Population stability index of this (live) distribution against a
    /// `baseline`: `Σ (pᵢ − qᵢ)·ln(pᵢ/qᵢ)` over matched buckets, with
    /// proportions floored at `1e-4`. Conventional reading: < 0.1
    /// stable, 0.1–0.25 moderate shift, > 0.25 significant shift.
    /// Returns 0 when either side is empty (no evidence is not drift).
    pub fn psi(&self, baseline: &SketchSnapshot) -> f64 {
        let (lt, bt) = (self.total(), baseline.total());
        if lt == 0 || bt == 0 {
            return 0.0;
        }
        let mut psi = 0.0;
        for (&lc, &bc) in self.counts.iter().zip(&baseline.counts) {
            let p = (lc as f64 / lt as f64).max(PSI_FLOOR);
            let q = (bc as f64 / bt as f64).max(PSI_FLOOR);
            psi += (p - q) * (p / q).ln();
        }
        psi
    }
}

/// Per-feature streaming moments over raw (pre-standardization) rows.
///
/// Holds Σx and Σx² per feature as CAS-maintained `f64` bits plus a
/// shared row count. Exact under concurrency up to floating-point
/// commutativity (each add retries until it lands).
#[derive(Debug)]
pub struct FeatureStats {
    rows: AtomicU64,
    sums: Box<[AtomicU64]>,
    sumsqs: Box<[AtomicU64]>,
}

impl FeatureStats {
    pub fn new(dim: usize) -> Self {
        Self {
            rows: AtomicU64::new(0),
            sums: (0..dim).map(|_| AtomicU64::new(0)).collect(),
            sumsqs: (0..dim).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn dim(&self) -> usize {
        self.sums.len()
    }

    /// Rows folded in since construction or the last reset.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Fold one raw feature row in. Rows of the wrong width are dropped
    /// whole (a dimension mismatch is a caller bug, not a sample);
    /// non-finite cells are skipped but the row still counts.
    // audit: no_alloc
    // audit: no_panic
    pub fn record_row(&self, row: &[f64]) {
        if row.len() != self.sums.len() {
            return;
        }
        self.rows.fetch_add(1, Ordering::Relaxed);
        for (j, &x) in row.iter().enumerate() {
            if !x.is_finite() {
                continue;
            }
            cas_f64(&self.sums[j], |c| c + x);
            cas_f64(&self.sumsqs[j], |c| c + x * x);
        }
    }

    /// Point-in-time per-feature means and (population) variances.
    pub fn snapshot(&self) -> FeatureSnapshot {
        let n = self.rows.load(Ordering::Relaxed);
        let dim = self.sums.len();
        let mut means = vec![0.0; dim];
        let mut vars = vec![0.0; dim];
        if n > 0 {
            for j in 0..dim {
                let s = f64::from_bits(self.sums[j].load(Ordering::Relaxed));
                let ss = f64::from_bits(self.sumsqs[j].load(Ordering::Relaxed));
                let m = s / n as f64;
                means[j] = m;
                vars[j] = (ss / n as f64 - m * m).max(0.0);
            }
        }
        FeatureSnapshot { rows: n, means, vars }
    }

    /// Zero all accumulators, starting a fresh window.
    pub fn reset(&self) {
        self.rows.store(0, Ordering::Relaxed);
        for j in 0..self.sums.len() {
            self.sums[j].store(0, Ordering::Relaxed);
            self.sumsqs[j].store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of a [`FeatureStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSnapshot {
    pub rows: u64,
    pub means: Vec<f64>,
    pub vars: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_land_in_expected_buckets() {
        let s = ScoreSketch::new();
        s.record(0.0); // bucket 0
        s.record(0.049); // bucket 0
        s.record(0.05); // bucket 1
        s.record(0.5); // bucket 10
        s.record(1.0); // clamped into last bucket
        s.record(1.7); // clamped into last bucket
        s.record(-0.3); // clamped into bucket 0
        s.record(f64::NAN); // dropped
        let snap = s.snapshot();
        assert_eq!(snap.counts[0], 3);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.counts[10], 1);
        assert_eq!(snap.counts[SCORE_BUCKETS - 1], 2);
        assert_eq!(s.samples(), 7);
        assert_eq!(snap.total(), 7);
    }

    #[test]
    fn record_batch_matches_singles() {
        let a = ScoreSketch::new();
        let b = ScoreSketch::new();
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        a.record_batch(&scores);
        for &x in &scores {
            b.record(x);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn reset_clears_window() {
        let s = ScoreSketch::new();
        s.record_batch(&[0.1, 0.9, 0.5]);
        s.reset();
        assert_eq!(s.samples(), 0);
        assert_eq!(s.snapshot().total(), 0);
    }

    #[test]
    fn anomaly_fraction_exact_at_bucket_edge() {
        let s = ScoreSketch::new();
        for _ in 0..3 {
            s.record(0.2);
        }
        s.record(0.5);
        s.record(0.9);
        let snap = s.snapshot();
        assert!((snap.fraction_at_or_above(0.5) - 0.4).abs() < 1e-12);
        assert!((snap.fraction_at_or_above(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = ScoreSketch::new();
        // 100 samples uniform over [0, 1): quantiles ≈ identity.
        for i in 0..100 {
            s.record(i as f64 / 100.0 + 0.005);
        }
        let snap = s.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert!((snap.quantile(q) - q).abs() < 0.06, "q={q} got {}", snap.quantile(q));
        }
        assert_eq!(SketchSnapshot::from_counts(vec![0; SCORE_BUCKETS]).quantile(0.5), 0.0);
    }

    #[test]
    fn psi_zero_for_identical_and_large_for_shifted() {
        let a = ScoreSketch::new();
        let b = ScoreSketch::new();
        for i in 0..1000 {
            let x = (i % 100) as f64 / 100.0;
            a.record(x);
            b.record(x);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert!(sa.psi(&sb).abs() < 1e-12);

        // Shift the live distribution hard to the right.
        let c = ScoreSketch::new();
        for _ in 0..1000 {
            c.record(0.95);
        }
        assert!(c.snapshot().psi(&sb) > 1.0);
        // Empty side → no evidence → zero.
        assert_eq!(SketchSnapshot::from_counts(vec![0; SCORE_BUCKETS]).psi(&sb), 0.0);
    }

    #[test]
    fn feature_stats_moments() {
        let f = FeatureStats::new(2);
        f.record_row(&[1.0, 10.0]);
        f.record_row(&[3.0, 10.0]);
        f.record_row(&[1.0, 2.0, 3.0]); // wrong width: dropped
        let snap = f.snapshot();
        assert_eq!(snap.rows, 2);
        assert!((snap.means[0] - 2.0).abs() < 1e-12);
        assert!((snap.means[1] - 10.0).abs() < 1e-12);
        assert!((snap.vars[0] - 1.0).abs() < 1e-12);
        assert!(snap.vars[1].abs() < 1e-12);
        f.reset();
        assert_eq!(f.snapshot().rows, 0);
        assert_eq!(f.snapshot().means, vec![0.0, 0.0]);
    }

    #[test]
    fn non_finite_cells_skipped_but_row_counts() {
        let f = FeatureStats::new(2);
        f.record_row(&[f64::NAN, 4.0]);
        f.record_row(&[2.0, 4.0]);
        let snap = f.snapshot();
        assert_eq!(snap.rows, 2);
        // NaN cell skipped: sum 2.0 over 2 rows.
        assert!((snap.means[0] - 1.0).abs() < 1e-12);
        assert!((snap.means[1] - 4.0).abs() < 1e-12);
    }
}
