//! Lock-free telemetry core for the UADB serving plane.
//!
//! Provides the primitives every layer of the server instruments
//! itself with, and nothing else — no external dependencies, no
//! background threads, no allocation on any record path:
//!
//! - [`metrics`]: relaxed-atomic [`Counter`]s, integer/float gauges,
//!   and fixed-bucket log-scale [`Histogram`]s whose bucket bounds are
//!   precomputed at registration time.
//! - [`registry`]: a [`Registry`] that owns registered series and
//!   renders the Prometheus text exposition format.
//! - [`stream`]: a streaming exponential-decay estimator
//!   ([`DecayStat`]) for the teacher/booster divergence signal.
//! - [`sketch`]: model-quality sketches — a fixed-bucket calibrated
//!   score distribution ([`ScoreSketch`]) and per-feature streaming
//!   moments ([`FeatureStats`]) — backing PSI and feature-shift drift
//!   signals against a training-time baseline.
//! - [`ring`]: a bounded ring buffer ([`SlowRing`]) for slow-request
//!   capture (locks only on the already-slow path).
//! - [`log`]: a leveled, rate-limited stderr logger with an optional
//!   JSON-lines format.
//! - [`clock`] / [`trace`]: monotonic nanosecond timestamps and
//!   process-unique trace ids.
//!
//! The hot-path budget is explicit: recording a counter is one relaxed
//! `fetch_add`; recording a histogram sample is a short binary search
//! over precomputed bounds plus two relaxed `fetch_add`s. Reads
//! (rendering, quantiles) are snapshot-based and never block writers.

pub mod clock;
pub mod log;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod sketch;
pub mod stream;
pub mod trace;

pub use clock::now_ns;
pub use log::{Level, Logger};
pub use metrics::{Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use ring::SlowRing;
pub use sketch::{FeatureSnapshot, FeatureStats, ScoreSketch, SketchSnapshot, SCORE_BUCKETS};
pub use stream::DecayStat;
pub use trace::next_trace_id;
