//! Monotonic nanosecond clock.
//!
//! All stage timings are durations between two [`now_ns`] reads, so
//! the epoch is arbitrary; anchoring to the first call keeps values
//! small enough that `u64` nanoseconds last centuries.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-local monotonic epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
