//! Streaming exponential-decay statistics.
//!
//! [`DecayStat`] maintains a sliding-window view of a scalar signal
//! (teacher/booster score divergence) without storing samples: the mean
//! is an EWMA and the max decays geometrically, so old extremes fade
//! instead of pinning the estimate forever.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exponential-decay mean and max over batched observations.
///
/// Each observed sample carries weight `alpha`; a batch of `n` samples
/// with mean `m` folds in as
/// `mean ← mean·(1-α)^n + m·(1 - (1-α)^n)`, which equals applying the
/// per-sample EWMA update `n` times with the batch mean. The max decays
/// by `(1-α)^n` per batch before being compared with the batch max.
///
/// Updates are CAS loops on `f64` bits — lock-free, and off the
/// per-row hot path (one update per scored batch).
#[derive(Debug)]
pub struct DecayStat {
    alpha: f64,
    mean_bits: AtomicU64,
    max_bits: AtomicU64,
    samples: AtomicU64,
}

impl DecayStat {
    /// `alpha` is the per-sample weight in `(0, 1]`; `1/alpha` is the
    /// effective window length in samples.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            mean_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }

    /// Fold in a batch of `n` samples with the given mean and max.
    pub fn observe_batch(&self, batch_mean: f64, batch_max: f64, n: usize) {
        if n == 0 || !batch_mean.is_finite() || !batch_max.is_finite() {
            return;
        }
        let keep = (1.0 - self.alpha).powi(n.min(i32::MAX as usize) as i32);
        let first = self.samples.fetch_add(n as u64, Ordering::Relaxed) == 0;
        cas_f64(&self.mean_bits, |cur| {
            // Seed from the first batch rather than decaying toward a
            // fictitious zero history.
            if first {
                batch_mean
            } else {
                cur * keep + batch_mean * (1.0 - keep)
            }
        });
        cas_f64(&self.max_bits, |cur| {
            let decayed = if first { 0.0 } else { cur * keep };
            decayed.max(batch_max)
        });
    }

    pub fn mean(&self) -> f64 {
        f64::from_bits(self.mean_bits.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Total samples folded in since construction.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// Lock-free read-modify-write of an `f64` stored as raw bits —
/// shared by [`DecayStat`] and the sketch accumulators.
pub(crate) fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_batch_seeds() {
        let d = DecayStat::new(0.01);
        d.observe_batch(0.5, 0.9, 10);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.max() - 0.9).abs() < 1e-12);
        assert_eq!(d.samples(), 10);
    }

    #[test]
    fn converges_to_constant_signal() {
        let d = DecayStat::new(0.05);
        d.observe_batch(1.0, 1.0, 1);
        for _ in 0..200 {
            d.observe_batch(3.0, 3.0, 4);
        }
        assert!((d.mean() - 3.0).abs() < 1e-6, "mean {}", d.mean());
        assert!((d.max() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_decays() {
        let d = DecayStat::new(0.1);
        d.observe_batch(0.0, 10.0, 1);
        for _ in 0..100 {
            d.observe_batch(0.0, 1.0, 5);
        }
        assert!(d.max() < 1.0 + 1e-9, "old spike fades: {}", d.max());
        assert!(d.max() >= 1.0 - 1e-9);
    }

    #[test]
    fn empty_and_nonfinite_batches_ignored() {
        let d = DecayStat::new(0.5);
        d.observe_batch(1.0, 1.0, 0);
        d.observe_batch(f64::NAN, 1.0, 3);
        d.observe_batch(1.0, f64::INFINITY, 3);
        assert_eq!(d.samples(), 0);
        assert_eq!(d.mean(), 0.0);
    }
}
