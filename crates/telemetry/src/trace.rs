//! Process-unique monotonic trace ids.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(1);

/// Allocate the next trace id. Ids are unique within the process and
/// strictly increasing in allocation order; id `0` is reserved as
/// "untraced".
#[inline]
pub fn next_trace_id() -> u64 {
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles
                .push(std::thread::spawn(|| (0..256).map(|_| next_trace_id()).collect::<Vec<_>>()));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert!(!all.contains(&0));
    }
}
