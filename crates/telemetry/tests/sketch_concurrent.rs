//! Concurrent-writer sketch correctness: scores and feature rows
//! recorded from many racing threads produce exactly the snapshot a
//! serial reference would (bucket counts and row counts are integer
//! `fetch_add`s; feature sums are CAS loops, exact up to FP
//! commutativity).

use proptest::prelude::*;
use std::sync::Arc;
use uadb_telemetry::{FeatureStats, ScoreSketch, SCORE_BUCKETS};

/// Serial reference bucketing by the same uniform-edge rule.
fn reference_buckets(samples: &[f64]) -> Vec<u64> {
    let mut buckets = vec![0u64; SCORE_BUCKETS];
    for &s in samples {
        let idx = ((s * SCORE_BUCKETS as f64) as usize).min(SCORE_BUCKETS - 1);
        buckets[idx] += 1;
    }
    buckets
}

// Same Miri envelope rationale as histogram_concurrent.rs: the
// interpreter serialises threads and costs ~100× per access, so shrink
// the native sizes while keeping multiple writers and chunk remainders.
#[cfg(miri)]
const MAX_SAMPLES: usize = 24;
#[cfg(not(miri))]
const MAX_SAMPLES: usize = 400;
#[cfg(miri)]
const MAX_THREADS: usize = 3;
#[cfg(not(miri))]
const MAX_THREADS: usize = 6;

proptest! {
    #[test]
    fn racing_score_records_match_serial_reference(
        samples in prop::collection::vec(0.0f64..1.0, 0..MAX_SAMPLES),
        threads in 1usize..MAX_THREADS,
    ) {
        let sketch = Arc::new(ScoreSketch::new());
        let chunk = samples.len() / threads + 1;
        let mut handles = Vec::new();
        for (i, part) in samples.chunks(chunk.max(1)).enumerate() {
            let sketch = Arc::clone(&sketch);
            let part = part.to_vec();
            handles.push(std::thread::spawn(move || {
                // Alternate batch and single-record paths so both stay
                // covered under real interleavings.
                if i % 2 == 0 {
                    sketch.record_batch(&part);
                } else {
                    for s in part {
                        sketch.record(s);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let snap = sketch.snapshot();
        prop_assert_eq!(&snap.counts, &reference_buckets(&samples));
        prop_assert_eq!(sketch.samples(), samples.len() as u64);
        // Internal consistency: advisory total equals the bucket sum.
        prop_assert_eq!(snap.total(), samples.len() as u64);
    }

    #[test]
    fn racing_feature_rows_match_serial_moments(
        rows in prop::collection::vec(
            (0.0f64..10.0).prop_flat_map(|a| (-5.0f64..5.0).prop_map(move |b| vec![a, b])),
            1..MAX_SAMPLES / 4 + 2,
        ),
        threads in 1usize..MAX_THREADS,
    ) {
        let stats = Arc::new(FeatureStats::new(2));
        let chunk = rows.len() / threads + 1;
        let mut handles = Vec::new();
        for part in rows.chunks(chunk.max(1)) {
            let stats = Arc::clone(&stats);
            let part = part.to_vec();
            handles.push(std::thread::spawn(move || {
                for row in &part {
                    stats.record_row(row);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let snap = stats.snapshot();
        prop_assert_eq!(snap.rows, rows.len() as u64);
        let n = rows.len() as f64;
        for j in 0..2 {
            let mean = rows.iter().map(|r| r[j]).sum::<f64>() / n;
            let var = rows.iter().map(|r| (r[j] - mean) * (r[j] - mean)).sum::<f64>() / n;
            // CAS adds are exact per-add but commute in arbitrary order,
            // so allow FP reassociation slack.
            prop_assert!((snap.means[j] - mean).abs() < 1e-9, "mean[{}]: {} vs {}", j, snap.means[j], mean);
            prop_assert!((snap.vars[j] - var).abs() < 1e-6, "var[{}]: {} vs {}", j, snap.vars[j], var);
        }
    }
}
