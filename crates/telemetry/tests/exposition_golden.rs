//! Golden test for the Prometheus text exposition format: a registry
//! with one of each metric kind renders byte-for-byte as expected.

use uadb_telemetry::Registry;

#[test]
fn exposition_golden() {
    let reg = Registry::new();
    let requests = reg.counter(
        "uadb_requests_total",
        "Requests received.",
        &[("model", "demo"), ("variant", "booster")],
    );
    let depth = reg.gauge("uadb_pool_queue_depth", "Shards queued for scoring.", &[]);
    let div = reg.float_gauge("uadb_divergence_mean", "Decayed mean |teacher - booster|.", &[]);
    let lat = reg.histogram(
        "uadb_stage_seconds",
        "Stage latency.",
        &[("stage", "score")],
        &[1_000, 1_000_000, 1_000_000_000],
        9,
    );

    requests.add(7);
    depth.set(3);
    div.set(0.125);
    lat.record(500); // le 1µs
    lat.record(250_000); // le 1ms
    lat.record(2_000_000_000); // overflow

    let expected = "\
# HELP uadb_requests_total Requests received.
# TYPE uadb_requests_total counter
uadb_requests_total{model=\"demo\",variant=\"booster\"} 7
# HELP uadb_pool_queue_depth Shards queued for scoring.
# TYPE uadb_pool_queue_depth gauge
uadb_pool_queue_depth 3
# HELP uadb_divergence_mean Decayed mean |teacher - booster|.
# TYPE uadb_divergence_mean gauge
uadb_divergence_mean 0.125
# HELP uadb_stage_seconds Stage latency.
# TYPE uadb_stage_seconds histogram
uadb_stage_seconds_bucket{stage=\"score\",le=\"0.000001\"} 1
uadb_stage_seconds_bucket{stage=\"score\",le=\"0.001\"} 2
uadb_stage_seconds_bucket{stage=\"score\",le=\"1\"} 2
uadb_stage_seconds_bucket{stage=\"score\",le=\"+Inf\"} 3
uadb_stage_seconds_sum{stage=\"score\"} 2.0002505
uadb_stage_seconds_count{stage=\"score\"} 3
";
    assert_eq!(reg.render(), expected);
}
