//! Concurrent-writer histogram correctness: samples recorded from many
//! threads produce exactly the snapshot a serial reference would.

use proptest::prelude::*;
use std::sync::Arc;
use uadb_telemetry::Histogram;

/// Serial reference: bucket each sample by the same inclusive-upper-
/// bound rule, independently of the atomic implementation.
fn reference(bounds: &[u64], samples: &[u64]) -> (Vec<u64>, u64, u64) {
    let mut buckets = vec![0u64; bounds.len() + 1];
    let mut sum = 0u64;
    for &s in samples {
        let idx = bounds.iter().position(|&b| s <= b).unwrap_or(bounds.len());
        buckets[idx] += 1;
        sum += s;
    }
    (buckets, sum, samples.len() as u64)
}

// Miri interprets every access and serialises real threads, so the
// native sizes (≤400 samples × ≤5 writer threads, 64 cases via the
// proptest shim) would run for minutes. The shrunken envelope still
// crosses the interesting boundaries: multiple writers, chunk
// remainders, and the overflow bucket.
#[cfg(miri)]
const MAX_SAMPLES: usize = 24;
#[cfg(not(miri))]
const MAX_SAMPLES: usize = 400;
#[cfg(miri)]
const MAX_THREADS: usize = 3;
#[cfg(not(miri))]
const MAX_THREADS: usize = 6;

proptest! {
    #[test]
    fn merged_snapshot_equals_serial_reference(
        samples in prop::collection::vec(0u64..5_000_000, 0..MAX_SAMPLES),
        threads in 1usize..MAX_THREADS,
    ) {
        let bounds = Histogram::latency_bounds();
        let hist = Arc::new(Histogram::new(&bounds));

        let chunk = samples.len() / threads + 1;
        let mut handles = Vec::new();
        for part in samples.chunks(chunk.max(1)) {
            let hist = Arc::clone(&hist);
            let part = part.to_vec();
            handles.push(std::thread::spawn(move || {
                for s in part {
                    hist.record(s);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let snap = hist.snapshot();
        let (ref_buckets, ref_sum, ref_count) = reference(&bounds, &samples);
        prop_assert_eq!(&snap.buckets, &ref_buckets);
        prop_assert_eq!(snap.sum, ref_sum);
        prop_assert_eq!(snap.count, ref_count);
        // Snapshot internal consistency: count is the bucket total.
        let bucket_total: u64 = snap.buckets.iter().sum();
        prop_assert_eq!(snap.count, bucket_total);
    }
}
