//! Property-based tests for the ranking metrics.

use proptest::prelude::*;
use uadb_metrics::auc::average_ranks;
use uadb_metrics::{average_precision, count_errors_top_k, roc_auc};

/// Labels with at least one member of each class.
fn mixed_labels(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop::bool::ANY, n).prop_map(|mut v| {
        v[0] = true;
        v[1] = false;
        v.into_iter().map(|b| b as u8 as f64).collect()
    })
}

proptest! {
    #[test]
    fn auc_is_bounded((labels, scores) in (8usize..40).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n))
    })) {
        let auc = roc_auc(&labels, &scores);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_inverts_under_score_negation((labels, scores) in (8usize..40).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n))
    })) {
        let auc = roc_auc(&labels, &scores);
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let auc_neg = roc_auc(&labels, &neg);
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_invariant_under_positive_affine((labels, scores, a, b) in (8usize..40).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n), 0.1..5.0f64, -3.0..3.0f64)
    })) {
        let scaled: Vec<f64> = scores.iter().map(|s| a * s + b).collect();
        prop_assert!((roc_auc(&labels, &scores) - roc_auc(&labels, &scaled)).abs() < 1e-9);
    }

    #[test]
    fn ap_is_bounded_and_at_least_prevalence_for_perfect((n_pos, n_neg) in (1usize..10, 1usize..10)) {
        // Perfect ranking: all positives above all negatives -> AP = 1.
        let labels: Vec<f64> =
            std::iter::repeat_n(0.0, n_neg).chain(std::iter::repeat_n(1.0, n_pos)).collect();
        let scores: Vec<f64> = (0..labels.len()).map(|i| i as f64).collect();
        let ap = average_precision(&labels, &scores);
        prop_assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_bounded((labels, scores) in (8usize..40).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n))
    })) {
        let ap = average_precision(&labels, &scores);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    #[test]
    fn ranks_are_a_permutation_mean(values in prop::collection::vec(-100.0..100.0f64, 1..60)) {
        let ranks = average_ranks(&values);
        // Sum of ranks is always n(n+1)/2 regardless of ties.
        let n = values.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        // Ranks are within [1, n].
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 - 1e-12 && r <= n + 1e-12));
    }

    #[test]
    fn top_k_budget_is_exact((labels, scores, k) in (8usize..40).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n), 0usize..50)
    })) {
        let c = count_errors_top_k(&labels, &scores, k);
        prop_assert_eq!(c.tp + c.fp, k.min(labels.len()));
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, labels.len());
    }

    #[test]
    fn auc_agrees_with_pairwise_definition((labels, scores) in (4usize..16).prop_flat_map(|n| {
        (mixed_labels(n), prop::collection::vec(-10.0..10.0f64, n))
    })) {
        // AUC == P(score_pos > score_neg) + 0.5 P(tie), checked brute force.
        let mut wins = 0.0;
        let mut total = 0.0;
        for (i, &li) in labels.iter().enumerate() {
            if li < 0.5 { continue; }
            for (j, &lj) in labels.iter().enumerate() {
                if lj > 0.5 { continue; }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        let brute = wins / total;
        prop_assert!((roc_auc(&labels, &scores) - brute).abs() < 1e-9);
    }
}
