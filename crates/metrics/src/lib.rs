//! Evaluation metrics for the UADB reproduction.
//!
//! The paper evaluates with AUCROC and Average Precision (§IV-A) and, for
//! the synthetic study of Fig. 5, counts thresholded detection errors and
//! the error-correction rate achieved by the booster.

pub mod auc;
pub mod errors;

pub use auc::{average_precision, roc_auc};
pub use errors::{
    count_errors, count_errors_top_k, error_correction_rate, threshold_by_contamination,
    ConfusionCounts,
};
