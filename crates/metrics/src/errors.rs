//! Thresholded error accounting for the synthetic study (paper Fig. 5
//! counts per-model errors and the booster's error-correction rate).

/// Confusion counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Anomalies scored above threshold.
    pub tp: usize,
    /// Inliers scored above threshold.
    pub fp: usize,
    /// Inliers scored below threshold.
    pub tn: usize,
    /// Anomalies scored below threshold.
    pub fn_: usize,
}

impl ConfusionCounts {
    /// Total misclassifications (the "errors" of Fig. 5).
    pub fn errors(&self) -> usize {
        self.fp + self.fn_
    }
}

/// PyOD-style contamination threshold: the score above which the expected
/// fraction of anomalies lies. `contamination` is clamped into
/// `(0, 0.5]`-ish sanity bounds by the caller; the returned value is the
/// `(1 - contamination)` quantile of the scores.
pub fn threshold_by_contamination(scores: &[f64], contamination: f64) -> f64 {
    assert!(!scores.is_empty(), "cannot threshold empty scores");
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cut = ((1.0 - contamination) * sorted.len() as f64).floor() as usize;
    let cut = cut.min(sorted.len() - 1);
    sorted[cut]
}

/// Confusion counts for `scores >= threshold` predictions.
pub fn count_errors(labels: &[f64], scores: &[f64], threshold: f64) -> ConfusionCounts {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let mut c = ConfusionCounts { tp: 0, fp: 0, tn: 0, fn_: 0 };
    for (&l, &s) in labels.iter().zip(scores) {
        let pred_anom = s >= threshold;
        match (l > 0.5, pred_anom) {
            (true, true) => c.tp += 1,
            (false, true) => c.fp += 1,
            (false, false) => c.tn += 1,
            (true, false) => c.fn_ += 1,
        }
    }
    c
}

/// Confusion counts when exactly the `k` top-ranked scores are predicted
/// anomalous (ties broken by index, like a stable sort).
///
/// Score-threshold predictions misbehave when many scores tie at the
/// cut (a compressed booster output can tie hundreds of points); fixing
/// the *budget* instead matches how the paper counts errors in Fig. 5.
pub fn count_errors_top_k(labels: &[f64], scores: &[f64], k: usize) -> ConfusionCounts {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let k = k.min(labels.len());
    let mut c = ConfusionCounts { tp: 0, fp: 0, tn: 0, fn_: 0 };
    for (rank, &i) in idx.iter().enumerate() {
        let pred_anom = rank < k;
        match (labels[i] > 0.5, pred_anom) {
            (true, true) => c.tp += 1,
            (false, true) => c.fp += 1,
            (false, false) => c.tn += 1,
            (true, false) => c.fn_ += 1,
        }
    }
    c
}

/// Error-correction rate: the fraction of teacher errors no longer made
/// by the booster (paper Fig. 5 reports 38.94% on average, 86.36% max).
/// Returns 0.0 when the teacher made no errors.
pub fn error_correction_rate(teacher_errors: usize, booster_errors: usize) -> f64 {
    if teacher_errors == 0 {
        return 0.0;
    }
    let corrected = teacher_errors.saturating_sub(booster_errors);
    corrected as f64 / teacher_errors as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contamination_threshold_selects_top_fraction() {
        let scores: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let t = threshold_by_contamination(&scores, 0.2);
        // Top 20% of 10 scores = {9, 10}; the 0.8-quantile index is 8 (value 9).
        assert_eq!(t, 9.0);
        let preds_above = scores.iter().filter(|&&s| s >= t).count();
        assert_eq!(preds_above, 2);
    }

    #[test]
    fn count_errors_partitions_everything() {
        let labels = vec![1.0, 1.0, 0.0, 0.0];
        let scores = vec![0.9, 0.1, 0.8, 0.2];
        let c = count_errors(&labels, &scores, 0.5);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert_eq!(c.errors(), 2);
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, labels.len());
    }

    #[test]
    fn correction_rate_cases() {
        assert!((error_correction_rate(44, 6) - 38.0 / 44.0).abs() < 1e-12);
        assert_eq!(error_correction_rate(0, 5), 0.0);
        assert_eq!(error_correction_rate(10, 10), 0.0);
        // Booster worse than teacher saturates at 0, not negative.
        assert_eq!(error_correction_rate(5, 9), 0.0);
        assert_eq!(error_correction_rate(5, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_scores_panic() {
        let _ = threshold_by_contamination(&[], 0.1);
    }

    #[test]
    fn top_k_counts_fixed_budget() {
        let labels = vec![1.0, 0.0, 1.0, 0.0, 0.0];
        let scores = vec![0.9, 0.8, 0.1, 0.1, 0.1];
        let c = count_errors_top_k(&labels, &scores, 2);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 2);
        // Budget is exact even with ties at the cut.
        assert_eq!(c.tp + c.fp, 2);
    }

    #[test]
    fn top_k_clamps_to_len() {
        let c = count_errors_top_k(&[1.0, 0.0], &[0.5, 0.5], 10);
        assert_eq!(c.tp + c.fp, 2);
    }
}
