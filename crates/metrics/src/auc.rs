//! Ranking metrics: AUCROC and Average Precision.

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic,
/// with average ranks for tied scores — identical to
/// `sklearn.metrics.roc_auc_score`.
///
/// `labels` are ground truth (1.0 anomaly / 0.0 inlier), `scores` are the
/// predicted anomaly scores. Returns 0.5 when either class is absent
/// (undefined AUC; 0.5 keeps aggregate tables well-defined, and the suite
/// always contains both classes).
pub fn roc_auc(labels: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let ranks = average_ranks(scores);
    let rank_sum_pos: f64 =
        labels.iter().zip(&ranks).filter(|(&l, _)| l > 0.5).map(|(_, &r)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Average precision: `AP = Σ_k (R_k - R_{k-1}) · P_k` over the ranked
/// list, matching `sklearn.metrics.average_precision_score` (ties broken
/// by original index, like NumPy's stable sort there).
pub fn average_precision(labels: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    if n_pos == 0 {
        return 0.0;
    }
    // Sort by descending score (stable).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0;
    let mut prev_score = f64::NAN;
    let mut pending_tp = 0usize;
    let mut seen = 0usize;
    // Handle tied scores as a block: precision is evaluated at the end of
    // each distinct-score group, with recall mass = positives in group.
    for &i in &idx {
        if scores[i] != prev_score && seen > 0 && pending_tp > 0 {
            tp += pending_tp;
            let precision = tp as f64 / seen as f64;
            ap += precision * pending_tp as f64;
            pending_tp = 0;
        }
        prev_score = scores[i];
        seen += 1;
        if labels[i] > 0.5 {
            pending_tp += 1;
        }
    }
    if pending_tp > 0 {
        tp += pending_tp;
        let precision = tp as f64 / seen as f64;
        ap += precision * pending_tp as f64;
    }
    ap / n_pos as f64
}

/// 1-based average ranks of `v` (ties share the mean of their positions),
/// the statistic both AUC and the Wilcoxon test build on.
pub fn average_ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        // positions i..=j (0-based) share rank mean of (i+1)..=(j+1)
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverted_auc() {
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        assert_eq!(roc_auc(&labels, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&labels, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn random_scores_give_half() {
        // All scores equal: AUC must be exactly 0.5 via tie handling.
        let labels = vec![0.0, 1.0, 0.0, 1.0];
        assert_eq!(roc_auc(&labels, &[0.5, 0.5, 0.5, 0.5]), 0.5);
    }

    #[test]
    fn auc_known_sklearn_value() {
        // sklearn.roc_auc_score([0,0,1,1], [0.1,0.4,0.35,0.8]) == 0.75
        let auc = roc_auc(&[0.0, 0.0, 1.0, 1.0], &[0.1, 0.4, 0.35, 0.8]);
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class() {
        assert_eq!(roc_auc(&[1.0, 1.0], &[0.3, 0.4]), 0.5);
        assert_eq!(roc_auc(&[0.0, 0.0], &[0.3, 0.4]), 0.5);
    }

    #[test]
    fn ap_known_sklearn_value() {
        // sklearn.average_precision_score([0,0,1,1],[0.1,0.4,0.35,0.8])
        // = 0.8333333...
        let ap = average_precision(&[0.0, 0.0, 1.0, 1.0], &[0.1, 0.4, 0.35, 0.8]);
        assert!((ap - 0.8333333333333333).abs() < 1e-9, "got {ap}");
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let ap = average_precision(&[0.0, 0.0, 1.0], &[0.1, 0.2, 0.9]);
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_of_all_negative_is_zero() {
        assert_eq!(average_precision(&[0.0, 0.0], &[0.5, 0.6]), 0.0);
    }

    #[test]
    fn ap_prevalence_baseline_for_constant_scores() {
        // With constant scores AP equals the positive prevalence.
        let ap = average_precision(&[1.0, 0.0, 0.0, 0.0], &[0.5, 0.5, 0.5, 0.5]);
        assert!((ap - 0.25).abs() < 1e-12, "got {ap}");
    }

    #[test]
    fn average_ranks_with_ties() {
        assert_eq!(average_ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(average_ranks(&[5.0]), vec![1.0]);
        assert_eq!(average_ranks(&[]), Vec::<f64>::new());
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let labels = vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let scores = vec![0.2, 0.7, 0.1, 0.9, 0.5, 0.4];
        let squashed: Vec<f64> = scores.iter().map(|s| s * s * s).collect();
        assert!((roc_auc(&labels, &scores) - roc_auc(&labels, &squashed)).abs() < 1e-12);
    }
}
