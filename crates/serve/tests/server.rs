//! Integration tests: a real server on localhost driven over raw TCP —
//! keep-alive semantics, multi-model routing, hot reload, HTTP framing
//! hardening, and the shard-order-independence guarantee of the worker
//! pool.
//!
//! Every test that spawns a server runs against **each available I/O
//! backend** (threads everywhere; epoll additionally on Linux), so the
//! two implementations can never drift apart semantically. Set
//! `UADB_SERVE_IO=threads|epoll` to pin one backend (CI runs the suite
//! once per value).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::{PoolConfig, ScoringPool};
use uadb_serve::{IoMode, ModelRegistry, Server, ServerConfig, ServerHandle};

fn trained_model(seed: u64) -> ServedModel {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap()
}

/// The I/O backends this host can run, or the one `UADB_SERVE_IO` pins.
fn backends() -> Vec<IoMode> {
    match std::env::var("UADB_SERVE_IO").as_deref() {
        Ok("threads") => vec![IoMode::Threads],
        Ok("epoll") => vec![IoMode::Epoll],
        Ok(other) => panic!("UADB_SERVE_IO must be threads|epoll, got `{other}`"),
        Err(_) => {
            let mut all = vec![IoMode::Threads];
            if cfg!(target_os = "linux") {
                all.push(IoMode::Epoll);
            }
            all
        }
    }
}

/// Default tuning on the given backend.
fn cfg(io: IoMode) -> ServerConfig {
    ServerConfig { io, ..ServerConfig::default() }
}

/// Spawns a server over an already-built single-model registry, so the
/// expensive training happens once per test, not once per backend.
fn spawn_with(model: &Arc<ServedModel>, config: ServerConfig) -> ServerHandle {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("default", Arc::clone(model), PoolConfig { workers: 2, shard_rows: 16 })
        .unwrap();
    Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap()
}

/// A parsed HTTP response.
struct HttpResponse {
    status: u16,
    /// Lower-cased `Connection` header value, if present.
    connection: Option<String>,
    body: String,
}

/// A persistent (keep-alive capable) HTTP/1.1 test client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// Sends a request; `close` controls the `Connection` request header.
    fn send(&mut self, method: &str, path: &str, body: Option<&str>, close: bool) {
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
            body.len(),
            if close { "close" } else { "keep-alive" },
        );
        self.writer.write_all(req.as_bytes()).expect("send request");
    }

    /// Sends raw bytes (malformed-request tests frame their own heads).
    fn send_raw(&mut self, raw: &str) {
        self.writer.write_all(raw.as_bytes()).expect("send raw request");
    }

    /// Reads one `Content-Length`-framed response off the connection.
    fn read_response(&mut self) -> HttpResponse {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("read status line");
        assert!(status_line.starts_with("HTTP/1.1 "), "unexpected status line {status_line:?}");
        let status: u16 =
            status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
        let mut content_length = 0usize;
        let mut connection = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().expect("numeric Content-Length");
                } else if name.eq_ignore_ascii_case("connection") {
                    connection = Some(value.to_ascii_lowercase());
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        HttpResponse { status, connection, body: String::from_utf8(body).expect("UTF-8 body") }
    }

    /// One request-response round trip on this connection.
    fn roundtrip(&mut self, method: &str, path: &str, body: Option<&str>) -> HttpResponse {
        self.send(method, path, body, false);
        self.read_response()
    }

    /// True once the server has closed this connection (EOF on read).
    fn at_eof(&mut self) -> bool {
        let mut probe = [0u8; 1];
        match self.reader.read(&mut probe) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) => panic!("expected clean EOF, got {e}"),
        }
    }
}

/// One-shot request on a fresh connection with `Connection: close`.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut client = Client::connect(addr);
    client.send(method, path, body, true);
    let response = client.read_response();
    assert_eq!(response.connection.as_deref(), Some("close"));
    assert!(client.at_eof(), "server must close after Connection: close");
    (response.status, response.body)
}

fn rows_json(x: &Matrix, rows: &[usize]) -> String {
    let rows: Vec<Value> = rows.iter().map(|&r| json::number_array(x.row(r))).collect();
    json::to_string(&json::object([("rows", Value::Array(rows))]))
}

fn parse_scores(body: &str) -> Vec<f64> {
    json::parse(body)
        .expect("valid JSON response")
        .get("scores")
        .expect("scores field")
        .as_array()
        .expect("scores is an array")
        .iter()
        .map(|v| v.as_f64().expect("numeric score"))
        .collect()
}

#[test]
fn keepalive_sequential_requests_match_fresh_connections() {
    let served = Arc::new(trained_model(41));
    let data = fig5_dataset(AnomalyType::Clustered, 41);
    let expected = served.score_rows(&data.x).unwrap();
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        // Different-sized slices exercise different shard counts.
        let slices: Vec<Vec<usize>> = vec![
            (0..40).collect(),
            vec![7],
            (100..113).collect(),
            (0..data.n_samples()).step_by(3).collect(),
            vec![499, 0, 250],
        ];

        // N sequential requests on ONE connection…
        let mut client = Client::connect(addr);
        let mut kept: Vec<Vec<f64>> = Vec::new();
        for slice in &slices {
            let response = client.roundtrip("POST", "/score", Some(&rows_json(&data.x, slice)));
            assert_eq!(response.status, 200, "[{}] body: {}", io.name(), response.body);
            assert_eq!(response.connection.as_deref(), Some("keep-alive"));
            kept.push(parse_scores(&response.body));
        }

        // …must be bit-identical to N fresh Connection: close requests
        // and to the in-process reference.
        for (slice, kept_scores) in slices.iter().zip(&kept) {
            let (status, body) = request(addr, "POST", "/score", Some(&rows_json(&data.x, slice)));
            assert_eq!(status, 200);
            let fresh = parse_scores(&body);
            assert_eq!(kept_scores.len(), slice.len());
            for (pos, &row) in slice.iter().enumerate() {
                assert_eq!(
                    kept_scores[pos].to_bits(),
                    fresh[pos].to_bits(),
                    "[{}] row {row} keep-alive vs fresh",
                    io.name()
                );
                assert_eq!(
                    kept_scores[pos].to_bits(),
                    expected[row].to_bits(),
                    "[{}] row {row} vs in-process",
                    io.name()
                );
            }
        }
        handle.shutdown();
    }
}

#[test]
fn concurrent_connections_match_in_process_scores_exactly() {
    let served = Arc::new(trained_model(42));
    let data = fig5_dataset(AnomalyType::Clustered, 42);
    let expected = served.score_rows(&data.x).unwrap();
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        let slices: Vec<Vec<usize>> = vec![
            (0..data.n_samples()).collect(),
            (0..40).collect(),
            (100..113).collect(),
            vec![7],
            (0..data.n_samples()).step_by(3).collect(),
            vec![499, 0, 250],
        ];
        let mut threads = Vec::new();
        for slice in slices {
            let x = data.x.clone();
            let expected = expected.clone();
            threads.push(std::thread::spawn(move || {
                let body = rows_json(&x, &slice);
                let (status, payload) = request(addr, "POST", "/score", Some(&body));
                assert_eq!(status, 200, "body: {payload}");
                let scores = parse_scores(&payload);
                assert_eq!(scores.len(), slice.len());
                for (pos, &row) in slice.iter().enumerate() {
                    assert_eq!(
                        scores[pos].to_bits(),
                        expected[row].to_bits(),
                        "row {row} differs over HTTP (batch of {})",
                        slice.len()
                    );
                }
            }));
        }
        for t in threads {
            t.join().expect("client thread");
        }
        handle.shutdown();
    }
}

#[test]
fn multi_model_routing_interleaved_on_one_connection() {
    // Two different models behind one port; the acceptance criterion:
    // interleaved keep-alive requests against both return scores
    // bit-identical to per-request Connection: close scoring.
    let model_a = Arc::new(trained_model(51));
    let model_b = Arc::new(trained_model(52));
    let data = fig5_dataset(AnomalyType::Clustered, 51);
    let rows: Vec<usize> = (0..37).collect();
    let body = rows_json(&data.x, &rows);
    let expected_a = model_a.score_rows(&data.x.select_rows(&rows)).unwrap();
    let expected_b = model_b.score_rows(&data.x.select_rows(&rows)).unwrap();
    assert_ne!(expected_a, expected_b, "models must be distinguishable");

    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert("alpha", Arc::clone(&model_a), PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
        registry
            .insert("beta", Arc::clone(&model_b), PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let addr = handle.addr();

        // Interleave the two models over ONE keep-alive connection.
        let mut client = Client::connect(addr);
        for round in 0..3 {
            for (path, expected) in [("/score/alpha", &expected_a), ("/score/beta", &expected_b)] {
                let response = client.roundtrip("POST", path, Some(&body));
                assert_eq!(
                    response.status,
                    200,
                    "[{}] round {round} {path}: {}",
                    io.name(),
                    response.body
                );
                let scores = parse_scores(&response.body);
                for (i, (a, b)) in scores.iter().zip(expected.iter()).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "round {round} {path} row {i}");
                }
            }
        }
        // A 404 for an unknown model must not poison the connection.
        let response = client.roundtrip("POST", "/score/gamma", Some(&body));
        assert_eq!(response.status, 404);
        assert_eq!(response.connection.as_deref(), Some("keep-alive"));

        // Reference: the same bodies via per-request Connection: close.
        for (path, expected) in [("/score/alpha", &expected_a), ("/score/beta", &expected_b)] {
            let (status, payload) = request(addr, "POST", path, Some(&body));
            assert_eq!(status, 200);
            let scores = parse_scores(&payload);
            for (i, (a, b)) in scores.iter().zip(expected.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "one-shot {path} row {i}");
            }
        }

        // Bare /score routes to the default (first-registered) model.
        let still_open = client.roundtrip("POST", "/score", Some(&body));
        assert_eq!(still_open.status, 200);
        let scores = parse_scores(&still_open.body);
        assert_eq!(scores[0].to_bits(), expected_a[0].to_bits());

        // Model metadata endpoints. The info document surfaces the
        // scoring pool's resolved worker count.
        let info = client.roundtrip("GET", "/model/beta", None);
        assert_eq!(info.status, 200);
        let info_doc = json::parse(&info.body).unwrap();
        assert_eq!(info_doc.get("workers").and_then(Value::as_f64), Some(2.0));
        let listing = client.roundtrip("GET", "/models", None);
        assert_eq!(listing.status, 200);
        let parsed = json::parse(&listing.body).unwrap();
        assert_eq!(parsed.get("default").and_then(Value::as_str), Some("alpha"));
        let names: Vec<&str> = parsed
            .get("models")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|m| m.get("name").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        let (status, _) = request(addr, "GET", "/model/gamma", None);
        assert_eq!(status, 404);

        // Per-model request counters: alpha took 3 interleaved + 1
        // one-shot + 1 bare-default = 5, beta 3 + 1 = 4; the unknown
        // model counted nowhere.
        let health = client.roundtrip("GET", "/healthz", None);
        let doc = json::parse(&health.body).unwrap();
        let requests = doc.get("requests").expect("requests field");
        assert_eq!(requests.get("alpha").and_then(Value::as_f64), Some(5.0), "[{}]", io.name());
        assert_eq!(requests.get("beta").and_then(Value::as_f64), Some(4.0), "[{}]", io.name());
        assert_eq!(doc.get("backend").and_then(Value::as_str), Some(io.name()));

        handle.shutdown();
    }
}

#[test]
fn hot_reload_swaps_model_without_dropping_connections() {
    let model_a = trained_model(61);
    let model_b = trained_model(62);
    let data = fig5_dataset(AnomalyType::Clustered, 61);
    let rows: Vec<usize> = (0..23).collect();
    let body = rows_json(&data.x, &rows);
    let expected_a = model_a.score_rows(&data.x.select_rows(&rows)).unwrap();
    let expected_b = model_b.score_rows(&data.x.select_rows(&rows)).unwrap();
    assert_ne!(expected_a, expected_b);

    for io in backends() {
        let dir =
            std::env::temp_dir().join(format!("uadb_reload_{}_{}", std::process::id(), io.name()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.uadb");
        uadb_serve::save_file(&model_a, &path).unwrap();

        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert_from_file("live", &path, PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let addr = handle.addr();

        // A keep-alive connection opened BEFORE the reload…
        let mut client = Client::connect(addr);
        let before = client.roundtrip("POST", "/score/live", Some(&body));
        assert_eq!(before.status, 200);
        assert_eq!(parse_scores(&before.body)[0].to_bits(), expected_a[0].to_bits());

        // …survives the model file being swapped and reloaded…
        uadb_serve::save_file(&model_b, &path).unwrap();
        let reload = client.roundtrip("POST", "/admin/reload/live", None);
        assert_eq!(reload.status, 200, "[{}] body: {}", io.name(), reload.body);
        assert_eq!(
            json::parse(&reload.body).unwrap().get("reloaded").and_then(Value::as_str),
            Some("live")
        );

        // …and the SAME connection now scores against the new weights.
        let after = client.roundtrip("POST", "/score/live", Some(&body));
        assert_eq!(after.status, 200);
        let scores = parse_scores(&after.body);
        for (i, (got, want)) in scores.iter().zip(expected_b.iter()).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "post-reload row {i}");
        }

        // Reload from an explicit path in the body.
        let other = dir.join("other.uadb");
        uadb_serve::save_file(&model_a, &other).unwrap();
        let explicit = client.roundtrip(
            "POST",
            "/admin/reload/live",
            Some(&format!(
                "{{\"path\": {}}}",
                json::to_string(&Value::String(other.display().to_string()))
            )),
        );
        assert_eq!(explicit.status, 200, "body: {}", explicit.body);
        let back = client.roundtrip("POST", "/score/live", Some(&body));
        assert_eq!(parse_scores(&back.body)[0].to_bits(), expected_a[0].to_bits());

        // Error paths: unknown model, unloadable file. The explicit
        // reload above re-pointed the entry's source at `other`, so
        // corrupt that.
        let missing = client.roundtrip("POST", "/admin/reload/nope", None);
        assert_eq!(missing.status, 404);
        std::fs::write(&other, b"garbage").unwrap();
        let broken = client.roundtrip("POST", "/admin/reload/live", None);
        assert_eq!(broken.status, 422, "body: {}", broken.body);
        // The entry still serves the last good model.
        let unaffected = client.roundtrip("POST", "/score/live", Some(&body));
        assert_eq!(unaffected.status, 200);

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn idle_timeout_and_max_requests_close_the_socket() {
    let served = Arc::new(trained_model(43));
    for io in backends() {
        // Tight limits so the test runs in milliseconds.
        let config = ServerConfig {
            max_connections: 8,
            max_requests_per_conn: 2,
            idle_timeout: Duration::from_millis(150),
            io_timeout: Duration::from_secs(5),
            io,
            shards: 1,
        };
        let handle = spawn_with(&served, config);
        let addr = handle.addr();

        // Max requests per connection: the capping response advertises
        // Connection: close and the socket reaches EOF after it.
        let mut client = Client::connect(addr);
        let first = client.roundtrip("GET", "/healthz", None);
        assert_eq!(first.status, 200);
        assert_eq!(first.connection.as_deref(), Some("keep-alive"));
        let second = client.roundtrip("GET", "/healthz", None);
        assert_eq!(second.status, 200);
        assert_eq!(second.connection.as_deref(), Some("close"));
        assert!(
            client.at_eof(),
            "[{}] server must close after max-requests-per-connection",
            io.name()
        );

        // Idle timeout: an idle keep-alive connection is closed by the
        // server (EOF), with no response bytes written.
        let mut idle = Client::connect(addr);
        let warm = idle.roundtrip("GET", "/healthz", None);
        assert_eq!(warm.status, 200);
        std::thread::sleep(Duration::from_millis(600));
        assert!(idle.at_eof(), "[{}] server must close an idle connection", io.name());

        handle.shutdown();
    }
}

#[test]
fn http10_defaults_to_close_and_http11_to_keepalive() {
    let served = Arc::new(trained_model(44));
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        // HTTP/1.0 without Connection: keep-alive → close.
        let mut c10 = Client::connect(addr);
        c10.send_raw("GET /healthz HTTP/1.0\r\nHost: localhost\r\n\r\n");
        let r = c10.read_response();
        assert_eq!(r.status, 200);
        assert_eq!(r.connection.as_deref(), Some("close"));
        assert!(c10.at_eof());

        // HTTP/1.0 with explicit keep-alive → stays open.
        let mut c10k = Client::connect(addr);
        c10k.send_raw("GET /healthz HTTP/1.0\r\nHost: localhost\r\nConnection: keep-alive\r\n\r\n");
        let r = c10k.read_response();
        assert_eq!(r.connection.as_deref(), Some("keep-alive"));
        c10k.send_raw("GET /healthz HTTP/1.0\r\nHost: localhost\r\nConnection: close\r\n\r\n");
        assert_eq!(c10k.read_response().status, 200);
        assert!(c10k.at_eof());

        // HTTP/1.1 without a Connection header → keep-alive by default.
        let mut c11 = Client::connect(addr);
        c11.send_raw("GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
        let r = c11.read_response();
        assert_eq!(r.status, 200);
        assert_eq!(r.connection.as_deref(), Some("keep-alive"));

        handle.shutdown();
    }
}

#[test]
fn chunked_and_conflicting_content_length_are_rejected() {
    let served = Arc::new(trained_model(45));
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        // Transfer-Encoding: chunked → 501, connection closed (previously
        // the body was silently misread as length 0).
        let mut chunked = Client::connect(addr);
        chunked.send_raw(
            "POST /score HTTP/1.1\r\nHost: localhost\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        let r = chunked.read_response();
        assert_eq!(r.status, 501, "[{}] body: {}", io.name(), r.body);
        assert_eq!(r.connection.as_deref(), Some("close"));
        assert!(chunked.at_eof());

        // Duplicate identical Content-Length → 400.
        let mut dup = Client::connect(addr);
        dup.send_raw(
            "GET /healthz HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\nContent-Length: 0\r\n\r\n",
        );
        let r = dup.read_response();
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert!(dup.at_eof());

        // Conflicting Content-Length values → 400 (classic
        // request-smuggling vector).
        let mut conflict = Client::connect(addr);
        conflict.send_raw(
            "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}x",
        );
        let r = conflict.read_response();
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert!(conflict.at_eof());

        // Comma-merged Content-Length is unparsable → 400.
        let mut merged = Client::connect(addr);
        merged.send_raw("GET /healthz HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0, 0\r\n\r\n");
        assert_eq!(merged.read_response().status, 400);

        handle.shutdown();
    }
}

#[test]
fn shutdown_unblocks_even_when_bound_to_unspecified_addr() {
    // Binding 0.0.0.0 and shutting down used to hang forever because the
    // unblock-connect targeted the unspecified address itself.
    let served = Arc::new(trained_model(46));
    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert("default", Arc::clone(&served), PoolConfig { workers: 1, shard_rows: 64 })
            .unwrap();
        let handle = Server::bind("0.0.0.0:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let port = handle.addr().port();
        // It still serves (over loopback).
        let (status, _) =
            request(SocketAddr::from(([127, 0, 0, 1], port)), "GET", "/healthz", None);
        assert_eq!(status, 200);
        // The regression: this call must return promptly. The test
        // harness timeout is the failure detector.
        handle.shutdown();
    }
}

#[test]
fn connection_budget_rejects_excess_clients_with_503() {
    let served = Arc::new(trained_model(47));
    for io in backends() {
        let config = ServerConfig {
            max_connections: 2,
            max_requests_per_conn: 100,
            idle_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            io,
            shards: 1,
        };
        let handle = spawn_with(&served, config);
        let addr = handle.addr();

        // Two keep-alive connections occupy the whole budget.
        let mut a = Client::connect(addr);
        assert_eq!(a.roundtrip("GET", "/healthz", None).status, 200);
        let mut b = Client::connect(addr);
        assert_eq!(b.roundtrip("GET", "/healthz", None).status, 200);

        // Both count in the live stats.
        let health = b.roundtrip("GET", "/healthz", None);
        let doc = json::parse(&health.body).unwrap();
        assert_eq!(doc.get("open_connections").and_then(Value::as_f64), Some(2.0));
        assert_eq!(doc.get("max_connections").and_then(Value::as_f64), Some(2.0));

        // The third client is turned away with 503 + close.
        let mut c = Client::connect(addr);
        c.send("GET", "/healthz", None, false);
        let r = c.read_response();
        assert_eq!(r.status, 503, "[{}] body: {}", io.name(), r.body);
        assert_eq!(r.connection.as_deref(), Some("close"));
        assert!(c.at_eof());

        // Releasing a slot lets new clients in again (poll briefly: the
        // server needs a moment to notice the close).
        drop(a);
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(20));
            let mut d = Client::connect(addr);
            d.send("GET", "/healthz", None, true);
            if d.read_response().status == 200 {
                ok = true;
                break;
            }
        }
        assert!(ok, "[{}] budget slot was never released", io.name());

        handle.shutdown();
    }
}

#[test]
fn health_model_and_error_endpoints() {
    let served = Arc::new(trained_model(48));
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        let (status, body) = request(addr, "GET", "/healthz", None);
        assert_eq!(status, 200);
        let health = json::parse(&body).unwrap();
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("models").and_then(Value::as_f64), Some(1.0));
        assert_eq!(health.get("default").and_then(Value::as_str), Some("default"));
        // Live serving stats: the backend name, this very connection in
        // the open count, the configured budget, and a zeroed counter.
        assert_eq!(health.get("backend").and_then(Value::as_str), Some(io.name()));
        assert_eq!(health.get("open_connections").and_then(Value::as_f64), Some(1.0));
        assert_eq!(health.get("max_connections").and_then(Value::as_f64), Some(256.0));
        let zero = health.get("requests").and_then(|r| r.get("default")).and_then(Value::as_f64);
        assert_eq!(zero, Some(0.0), "[{}]", io.name());

        let (status, body) = request(addr, "GET", "/model", None);
        assert_eq!(status, 200);
        let info = json::parse(&body).unwrap();
        assert_eq!(info.get("teacher").and_then(Value::as_str), Some("HBOS"));
        assert_eq!(info.get("input_dim").and_then(Value::as_f64), Some(served.input_dim() as f64));
        assert_eq!(info.get("n_train").and_then(Value::as_f64), Some(500.0));

        // Error paths: bad JSON, wrong shape, wrong width, wrong routes.
        let (status, _) = request(addr, "POST", "/score", Some("{not json"));
        assert_eq!(status, 400);
        let (status, _) = request(addr, "POST", "/score", Some(r#"{"rows": 3}"#));
        assert_eq!(status, 400);
        let (status, _) = request(addr, "POST", "/score", Some(r#"{"rows": [[1], [1, 2]]}"#));
        assert_eq!(status, 400);
        let (status, body) =
            request(addr, "POST", "/score", Some(r#"{"rows": [[1, 2, 3, 4, 5]]}"#));
        assert_eq!(status, 422, "body: {body}");
        assert!(body.contains("features"));
        let (status, _) = request(addr, "GET", "/score", None);
        assert_eq!(status, 405);
        let (status, _) = request(addr, "GET", "/score/default", None);
        assert_eq!(status, 405);
        let (status, _) = request(addr, "GET", "/nope", None);
        assert_eq!(status, 404);
        // Empty rows are a valid no-op request.
        let (status, body) = request(addr, "POST", "/score", Some(r#"{"rows": []}"#));
        assert_eq!(status, 200);
        assert_eq!(parse_scores(&body), Vec::<f64>::new());

        // The request counter saw every POST /score that resolved to
        // the model — including the ones rejected at validation.
        let (_, body) = request(addr, "GET", "/healthz", None);
        let health = json::parse(&body).unwrap();
        let count = health.get("requests").and_then(|r| r.get("default")).and_then(Value::as_f64);
        assert_eq!(count, Some(5.0), "[{}]", io.name());

        handle.shutdown();
    }
}

#[test]
fn pool_output_is_shard_order_independent() {
    // Any worker count × shard size produces byte-identical output.
    let served = Arc::new(trained_model(49));
    let data = fig5_dataset(AnomalyType::Global, 49);
    let reference = served.score_rows(&data.x).unwrap();
    for workers in [1, 3, 8] {
        for shard_rows in [1, 17, 64, 10_000] {
            let pool = ScoringPool::new(Arc::clone(&served), PoolConfig { workers, shard_rows });
            let scores = pool.score(&data.x).unwrap();
            assert_eq!(scores.len(), reference.len());
            for (i, (a, b)) in scores.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "row {i}: {workers} workers × {shard_rows} shard rows"
                );
            }
        }
    }
}

#[test]
fn loaded_model_serves_identically_to_trained_model() {
    // End-to-end acceptance: train → save → load → serve → POST; the
    // HTTP scores from the *loaded* model match the in-process scores of
    // the *original* model exactly — on every backend.
    let served = trained_model(50);
    let data = fig5_dataset(AnomalyType::Clustered, 50);
    let expected = served.score_rows(&data.x).unwrap();

    let mut bytes = Vec::new();
    uadb_serve::save(&served, &mut bytes).unwrap();
    let loaded = Arc::new(uadb_serve::load(&bytes[..]).unwrap());

    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert("default", Arc::clone(&loaded), PoolConfig { workers: 4, shard_rows: 32 })
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let rows: Vec<usize> = (0..data.n_samples()).collect();
        let (status, body) =
            request(handle.addr(), "POST", "/score", Some(&rows_json(&data.x, &rows)));
        assert_eq!(status, 200);
        let scores = parse_scores(&body);
        for (i, (a, b)) in scores.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "[{}] row {i}", io.name());
        }
        handle.shutdown();
    }
}

// ------------------- teacher/booster A/B serving ----------------------

/// A single-model registry whose model carries its frozen teacher.
fn ab_model(seed: u64) -> Arc<ServedModel> {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    let (served, _) = ServedModel::train_with_teacher(
        &data,
        DetectorKind::Hbos,
        UadbConfig::fast_for_tests(seed),
    )
    .unwrap();
    Arc::new(served)
}

fn parse_field_scores(body: &str, field: &str) -> Vec<f64> {
    json::parse(body)
        .expect("valid JSON response")
        .get(field)
        .unwrap_or_else(|| panic!("{field} field in {body}"))
        .as_array()
        .expect("array")
        .iter()
        .map(|v| v.as_f64().expect("numeric score"))
        .collect()
}

#[test]
fn variant_both_returns_paired_teacher_and_booster_scores() {
    let served = ab_model(61);
    let data = fig5_dataset(AnomalyType::Clustered, 61);
    let slice: Vec<usize> = (0..45).collect();
    let batch = data.x.select_rows(&slice);
    let expected_booster = served.score_rows(&batch).unwrap();
    let expected_teacher = served.teacher().unwrap().score_rows(&batch).unwrap();

    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert("ab", Arc::clone(&served), PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let addr = handle.addr();

        // One request, both variants, paired for the same rows — the
        // online A/B the paper's comparison implies. Bit-identical to
        // in-process.
        let (status, body) =
            request(addr, "POST", "/score/ab?variant=both", Some(&rows_json(&data.x, &slice)));
        assert_eq!(status, 200, "[{}] body: {body}", io.name());
        let booster = parse_field_scores(&body, "booster");
        let teacher = parse_field_scores(&body, "teacher");
        assert_eq!(booster.len(), slice.len());
        assert_eq!(teacher.len(), slice.len());
        for i in 0..slice.len() {
            assert_eq!(booster[i].to_bits(), expected_booster[i].to_bits(), "booster row {i}");
            assert_eq!(teacher[i].to_bits(), expected_teacher[i].to_bits(), "teacher row {i}");
        }

        // Single-variant requests agree with the paired response.
        let (status, body) =
            request(addr, "POST", "/score/ab?variant=teacher", Some(&rows_json(&data.x, &slice)));
        assert_eq!(status, 200);
        let solo_teacher = parse_scores(&body);
        assert_eq!(
            solo_teacher.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            teacher.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        // Default (no query) and explicit booster agree too.
        let (_, body_default) =
            request(addr, "POST", "/score/ab", Some(&rows_json(&data.x, &slice)));
        let (_, body_booster) =
            request(addr, "POST", "/score/ab?variant=booster", Some(&rows_json(&data.x, &slice)));
        assert_eq!(parse_scores(&body_default), parse_scores(&body_booster));

        // GET /model reports both variants and the teacher snapshot info.
        let (status, body) = request(addr, "GET", "/model/ab", None);
        assert_eq!(status, 200);
        let info = json::parse(&body).unwrap();
        let variants: Vec<String> = info
            .get("variants")
            .expect("variants field")
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(variants, vec!["booster".to_string(), "teacher".to_string()]);
        let snap = info.get("teacher_snapshot").expect("teacher_snapshot field");
        assert_eq!(snap.get("kind").and_then(|v| v.as_str()), Some("HBOS"));
        handle.shutdown();
    }
}

#[test]
fn teacher_variant_without_snapshot_is_404_and_bad_variant_400() {
    // A booster-only model: teacher and both must 404, the connection
    // must survive, and an unknown variant value is a 400.
    let served = Arc::new(trained_model(62));
    let data = fig5_dataset(AnomalyType::Clustered, 62);
    let body_json = rows_json(&data.x, &[0, 1, 2]);
    for io in backends() {
        let handle = spawn_with(&served, cfg(io));
        let addr = handle.addr();

        let mut client = Client::connect(addr);
        let r = client.roundtrip("POST", "/score?variant=teacher", Some(&body_json));
        assert_eq!(r.status, 404, "[{}] body: {}", io.name(), r.body);
        let r = client.roundtrip("POST", "/score?variant=both", Some(&body_json));
        assert_eq!(r.status, 404, "body: {}", r.body);
        let r = client.roundtrip("POST", "/score?variant=frobnicate", Some(&body_json));
        assert_eq!(r.status, 400, "body: {}", r.body);
        // Model info reports only the booster variant.
        let r = client.roundtrip("GET", "/model", None);
        assert!(r.body.contains("\"variants\":[\"booster\"]"), "body: {}", r.body);
        // The same connection still scores fine (no pool crash, no
        // close).
        let r = client.roundtrip("POST", "/score", Some(&body_json));
        assert_eq!(r.status, 200);
        assert_eq!(parse_scores(&r.body).len(), 3);
        drop(client);
        handle.shutdown();
    }
}

#[test]
fn teacher_dimension_mismatch_is_4xx_not_a_crash() {
    let served = ab_model(63);
    let wide = Matrix::zeros(2, served.input_dim() + 3);
    let wide_json = rows_json(&wide, &[0, 1]);
    let data = fig5_dataset(AnomalyType::Clustered, 63);
    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert("ab", Arc::clone(&served), PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", registry, cfg(io)).unwrap().spawn().unwrap();
        let addr = handle.addr();

        let mut client = Client::connect(addr);
        for path in ["/score/ab?variant=teacher", "/score/ab?variant=both", "/score/ab"] {
            let r = client.roundtrip("POST", path, Some(&wide_json));
            assert_eq!(r.status, 422, "[{}] {path} body: {}", io.name(), r.body);
        }
        // NaN features cannot even frame as JSON numbers: rejected 400
        // at parse time, before any pool is involved (the model-level
        // NaN path is pinned by the pool unit tests).
        let mut bad = Matrix::zeros(3, served.input_dim());
        bad.set(2, 0, f64::NAN);
        let r = client.roundtrip(
            "POST",
            "/score/ab?variant=teacher",
            Some(&rows_json(&bad, &[0, 1, 2])),
        );
        assert_eq!(r.status, 400, "body: {}", r.body);
        assert!(r.body.contains("row 2"), "body: {}", r.body);
        // Pool intact: a well-formed A/B request still succeeds
        // afterwards.
        let r =
            client.roundtrip("POST", "/score/ab?variant=both", Some(&rows_json(&data.x, &[0, 1])));
        assert_eq!(r.status, 200, "body: {}", r.body);
        handle.shutdown();
    }
}

// --------------------- sharded epoll reactor -------------------------

/// The sharded reactor serves correctly in both accept modes: one
/// `SO_REUSEPORT` listener per shard (the normal path), and
/// single-listener round-robin handoff (`UADB_SERVE_NO_REUSEPORT`
/// forces the fallback). Whatever shard a connection lands on, scores
/// must come back bit-identical.
#[cfg(target_os = "linux")]
#[test]
fn sharded_reactor_scores_in_reuseport_and_handoff_modes() {
    let served = Arc::new(trained_model(91));
    let data = fig5_dataset(AnomalyType::Clustered, 91);
    let rows: Vec<usize> = (0..8).collect();
    let expected = served.score_rows(&data.x.select_rows(&rows)).unwrap();
    let body = rows_json(&data.x, &rows);
    for fallback in [false, true] {
        if fallback {
            // Only servers binding with shards > 1 consult this knob,
            // and this test is the binary's only one that does.
            std::env::set_var("UADB_SERVE_NO_REUSEPORT", "1");
        }
        let config = ServerConfig { io: IoMode::Epoll, shards: 3, ..ServerConfig::default() };
        let handle = spawn_with(&served, config);
        let addr = handle.addr();

        // healthz reports the shard plan.
        let (status, health) = request(addr, "GET", "/healthz", None);
        assert_eq!(status, 200);
        let doc = json::parse(&health).unwrap();
        assert_eq!(doc.get("shards").and_then(Value::as_f64), Some(3.0), "fallback={fallback}");

        // More keep-alive connections than shards, several interleaved
        // rounds each.
        let mut clients: Vec<Client> = (0..9).map(|_| Client::connect(addr)).collect();
        for round in 0..3 {
            for (ci, client) in clients.iter_mut().enumerate() {
                let r = client.roundtrip("POST", "/score", Some(&body));
                assert_eq!(r.status, 200, "fallback={fallback} client {ci} round {round}");
                let scores = parse_scores(&r.body);
                for (i, (a, b)) in scores.iter().zip(&expected).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "fallback={fallback} client {ci} round {round} row {i}"
                    );
                }
            }
        }

        // Every shard registered its telemetry block (labels 0..2).
        let (status, metrics_text) = request(addr, "GET", "/metrics", None);
        assert_eq!(status, 200);
        for shard in 0..3 {
            let series = format!("uadb_reactor_accepted_total{{shard=\"{shard}\"}}");
            assert!(
                metrics_text.contains(&series),
                "fallback={fallback}: missing {series} in /metrics"
            );
        }

        drop(clients);
        handle.shutdown();
        if fallback {
            std::env::remove_var("UADB_SERVE_NO_REUSEPORT");
        }
    }
}
