//! Integration tests: a real server on localhost, raw TCP clients, and
//! the shard-order-independence guarantee of the worker pool.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::{PoolConfig, ScoringPool};
use uadb_serve::Server;

fn trained_model(seed: u64) -> ServedModel {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap()
}

/// Raw one-shot HTTP/1.1 client; returns (status, body).
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, payload) =
        response.split_once("\r\n\r\n").expect("response has a header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code present")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

fn rows_json(x: &Matrix, rows: &[usize]) -> String {
    let rows: Vec<Value> = rows.iter().map(|&r| json::number_array(x.row(r))).collect();
    json::to_string(&json::object([("rows", Value::Array(rows))]))
}

fn parse_scores(body: &str) -> Vec<f64> {
    json::parse(body)
        .expect("valid JSON response")
        .get("scores")
        .expect("scores field")
        .as_array()
        .expect("scores is an array")
        .iter()
        .map(|v| v.as_f64().expect("numeric score"))
        .collect()
}

#[test]
fn concurrent_connections_match_in_process_scores_exactly() {
    let served = Arc::new(trained_model(41));
    let data = fig5_dataset(AnomalyType::Clustered, 41);
    let expected = served.score_rows(&data.x).unwrap();
    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&served), PoolConfig { workers: 2, shard_rows: 16 })
            .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // ≥4 concurrent connections, each posting a different overlapping
    // slice of the dataset (different sizes exercise different shard
    // counts).
    let slices: Vec<Vec<usize>> = vec![
        (0..data.n_samples()).collect(),            // full batch, many shards
        (0..40).collect(),                          // multi-shard
        (100..113).collect(),                       // single shard
        vec![7],                                    // 1-row batch
        (0..data.n_samples()).step_by(3).collect(), // strided
        vec![499, 0, 250],                          // out of order
    ];
    let mut threads = Vec::new();
    for slice in slices {
        let x = data.x.clone();
        let expected = expected.clone();
        threads.push(std::thread::spawn(move || {
            let body = rows_json(&x, &slice);
            let (status, payload) = request(addr, "POST", "/score", Some(&body));
            assert_eq!(status, 200, "body: {payload}");
            let scores = parse_scores(&payload);
            assert_eq!(scores.len(), slice.len());
            for (pos, &row) in slice.iter().enumerate() {
                assert_eq!(
                    scores[pos].to_bits(),
                    expected[row].to_bits(),
                    "row {row} differs over HTTP (batch of {})",
                    slice.len()
                );
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }
    handle.shutdown();
}

#[test]
fn health_model_and_error_endpoints() {
    let served = Arc::new(trained_model(42));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&served), PoolConfig::default()).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    let (status, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let health = json::parse(&body).unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    let (status, body) = request(addr, "GET", "/model", None);
    assert_eq!(status, 200);
    let info = json::parse(&body).unwrap();
    assert_eq!(info.get("teacher").and_then(Value::as_str), Some("HBOS"));
    assert_eq!(info.get("input_dim").and_then(Value::as_f64), Some(served.input_dim() as f64));
    assert_eq!(info.get("n_train").and_then(Value::as_f64), Some(500.0));

    // Error paths: bad JSON, wrong shape, wrong width, wrong routes.
    let (status, _) = request(addr, "POST", "/score", Some("{not json"));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/score", Some(r#"{"rows": 3}"#));
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/score", Some(r#"{"rows": [[1], [1, 2]]}"#));
    assert_eq!(status, 400);
    let (status, body) = request(addr, "POST", "/score", Some(r#"{"rows": [[1, 2, 3, 4, 5]]}"#));
    assert_eq!(status, 422, "body: {body}");
    assert!(body.contains("features"));
    let (status, _) = request(addr, "GET", "/score", None);
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    // Empty rows are a valid no-op request.
    let (status, body) = request(addr, "POST", "/score", Some(r#"{"rows": []}"#));
    assert_eq!(status, 200);
    assert_eq!(parse_scores(&body), Vec::<f64>::new());

    handle.shutdown();
}

#[test]
fn pool_output_is_shard_order_independent() {
    // The satellite guarantee, at integration scale: any worker count ×
    // shard size produces byte-identical output.
    let served = Arc::new(trained_model(43));
    let data = fig5_dataset(AnomalyType::Global, 43);
    let reference = served.score_rows(&data.x).unwrap();
    for workers in [1, 3, 8] {
        for shard_rows in [1, 17, 64, 10_000] {
            let pool = ScoringPool::new(Arc::clone(&served), PoolConfig { workers, shard_rows });
            let scores = pool.score(&data.x).unwrap();
            assert_eq!(scores.len(), reference.len());
            for (i, (a, b)) in scores.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "row {i}: {workers} workers × {shard_rows} shard rows"
                );
            }
        }
    }
}

#[test]
fn loaded_model_serves_identically_to_trained_model() {
    // End-to-end acceptance: train → save → load → serve → POST; the
    // HTTP scores from the *loaded* model match the in-process scores of
    // the *original* model exactly.
    let served = trained_model(44);
    let data = fig5_dataset(AnomalyType::Clustered, 44);
    let expected = served.score_rows(&data.x).unwrap();

    let mut bytes = Vec::new();
    uadb_serve::save(&served, &mut bytes).unwrap();
    let loaded = uadb_serve::load(&bytes[..]).unwrap();

    let server =
        Server::bind("127.0.0.1:0", Arc::new(loaded), PoolConfig { workers: 4, shard_rows: 32 })
            .unwrap();
    let handle = server.spawn().unwrap();
    let rows: Vec<usize> = (0..data.n_samples()).collect();
    let (status, body) = request(handle.addr(), "POST", "/score", Some(&rows_json(&data.x, &rows)));
    assert_eq!(status, 200);
    let scores = parse_scores(&body);
    for (i, (a, b)) in scores.iter().zip(&expected).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
    }
    handle.shutdown();
}
