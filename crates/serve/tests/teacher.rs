//! Teacher-snapshot persistence: the serve-container side of the
//! detector round-trip suite. Every teacher kind must survive
//! `train → save_teacher → load_teacher` with **bit-identical** raw-row
//! scores, record types must not be confusable, corrupt/truncated bytes
//! must yield typed errors, and save-time validation must refuse
//! NaN-bearing fitted state before writing a byte.

use std::sync::Arc;
use uadb::{ScoreCalibration, UadbConfig};
use uadb_data::Dataset;
use uadb_detectors::snapshot;
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::model::{ModelMeta, ServedModel, TeacherModel};
use uadb_serve::persist::{self, PersistError};
use uadb_serve::pool::PoolConfig;
use uadb_serve::registry::{ModelRegistry, RegistryError};

/// Small deterministic training set: blob + drifting anomalies, enough
/// structure for every detector family.
fn tiny_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        let anomalous = i % 11 == 10;
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            let base = next() + j as f64 * 0.3;
            row.push(if anomalous { base + 5.0 } else { base });
        }
        rows.push(row);
        labels.push(u8::from(anomalous));
    }
    Dataset::new("tiny", Matrix::from_rows(&rows).unwrap(), labels, "Test")
}

fn queries(d: usize) -> Matrix {
    let rows: Vec<Vec<f64>> =
        (0..7).map(|i| (0..d).map(|j| i as f64 * 0.7 - 1.0 + j as f64 * 0.4).collect()).collect();
    Matrix::from_rows(&rows).unwrap()
}

fn teacher_bytes(t: &TeacherModel) -> Vec<u8> {
    let mut buf = Vec::new();
    persist::save_teacher(t, &mut buf).unwrap();
    buf
}

#[test]
fn every_teacher_kind_round_trips_through_the_container() {
    let data = tiny_dataset(66, 3, 2);
    let q = queries(3);
    let mut cfg = UadbConfig::fast_for_tests(0);
    cfg.t_steps = 1;
    cfg.epochs_per_step = 1;
    for kind in DetectorKind::ALL {
        let (_, teacher) = ServedModel::train_with_teacher(&data, kind, cfg.clone()).unwrap();
        let bytes = teacher_bytes(&teacher);
        let loaded = persist::load_teacher(&bytes[..]).unwrap();
        assert_eq!(loaded.kind(), kind);
        assert_eq!(loaded.meta(), teacher.meta());
        assert_eq!(loaded.standardizer(), teacher.standardizer());
        assert_eq!(loaded.calibration(), teacher.calibration());
        let a = teacher.score_rows(&q).unwrap();
        let b = loaded.score_rows(&q).unwrap();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{} query row {i}", kind.name());
        }
        // Canonical bytes: a second save reproduces the file exactly.
        assert_eq!(teacher_bytes(&loaded), bytes, "{} bytes drifted", kind.name());
    }
}

#[test]
fn teacher_calibration_matches_training_pseudo_labels() {
    // The stored teacher calibration is the paper's min-max pseudo-label
    // map: scoring the training rows through the loaded teacher must
    // reproduce exactly the normalised scores the booster was distilled
    // against (0 at the train min, 1 at the train max).
    let data = tiny_dataset(55, 2, 9);
    let (_, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(1))
            .unwrap();
    let loaded = persist::load_teacher(&teacher_bytes(&teacher)[..]).unwrap();
    let scores = loaded.score_rows(&data.x).unwrap();
    let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!((lo - 0.0).abs() < 1e-12, "train min must calibrate to 0, got {lo}");
    assert!((hi - 1.0).abs() < 1e-12, "train max must calibrate to 1, got {hi}");
}

#[test]
fn record_types_are_not_confusable() {
    let data = tiny_dataset(40, 2, 3);
    let (served, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Ecod, UadbConfig::fast_for_tests(3))
            .unwrap();
    let mut booster_bytes = Vec::new();
    persist::save(&served, &mut booster_bytes).unwrap();
    let tbytes = teacher_bytes(&teacher);

    assert!(matches!(
        persist::load(&tbytes[..]),
        Err(PersistError::WrongRecord { expected: "booster", found: "teacher" })
    ));
    assert!(matches!(
        persist::load_teacher(&booster_bytes[..]),
        Err(PersistError::WrongRecord { expected: "teacher", found: "booster" })
    ));
    // load_record accepts either.
    assert!(matches!(persist::load_record(&tbytes[..]), Ok(persist::Record::Teacher(_))));
    assert!(matches!(persist::load_record(&booster_bytes[..]), Ok(persist::Record::Booster(_))));
}

#[test]
fn teacher_header_and_truncation_errors_are_typed() {
    let data = tiny_dataset(40, 2, 4);
    let (_, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Pca, UadbConfig::fast_for_tests(4))
            .unwrap();
    let bytes = teacher_bytes(&teacher);

    // Bad magic.
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(matches!(persist::load_teacher(&wrong[..]), Err(PersistError::BadMagic)));

    // Future version.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        persist::load_teacher(&future[..]),
        Err(PersistError::UnsupportedVersion(99))
    ));

    // Truncation anywhere inside the payload: typed error, never a
    // panic or a half-teacher.
    for cut in (4..bytes.len() - 1).step_by(89) {
        assert!(persist::load_teacher(&bytes[..cut]).is_err(), "cut at {cut} accepted");
    }

    // Flipped bytes across the payload must never panic.
    for pos in (8..bytes.len()).step_by(97) {
        let mut forged = bytes.clone();
        forged[pos] ^= 0xff;
        let _ = persist::load_teacher(&forged[..]);
    }
}

#[test]
fn nan_poisoned_teacher_state_is_refused_at_save_time() {
    // A KNN teacher snapshots its training rows verbatim; NaN smuggled
    // through fit() must abort the save with InvalidModel and an empty
    // output, not produce a file every loader rejects.
    let mut x = Matrix::zeros(12, 2);
    for i in 0..12 {
        x.set(i, 0, i as f64);
        x.set(i, 1, 1.0 + i as f64 * 0.5);
    }
    x.set(5, 1, f64::NAN);
    let mut det = snapshot::build(DetectorKind::Knn, 0);
    det.fit(&x).unwrap();
    let teacher = TeacherModel::new(
        det,
        uadb_data::preprocess::Standardizer::from_parts(vec![0.0; 2], vec![1.0; 2]),
        ScoreCalibration::fit(&[0.0, 1.0]),
        ModelMeta { dataset: "t".into(), teacher: "KNN".into(), n_train: 12 },
    );
    let mut sink = Vec::new();
    assert!(matches!(
        persist::save_teacher(&teacher, &mut sink),
        Err(PersistError::InvalidModel(_))
    ));
    assert!(sink.is_empty(), "a refused save must write nothing");
}

#[test]
fn teacher_meta_kind_mismatch_is_refused_at_save_and_load() {
    let data = tiny_dataset(40, 2, 6);
    let (_, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(6))
            .unwrap();
    // Forge a teacher whose metadata names a different detector.
    let forged = TeacherModel::new(
        snapshot::load(&snapshot::save_to_vec(teacher.detector()).unwrap()[..]).unwrap(),
        teacher.standardizer().clone(),
        teacher.calibration(),
        ModelMeta { teacher: "IForest".into(), ..teacher.meta().clone() },
    );
    let mut sink = Vec::new();
    assert!(matches!(
        persist::save_teacher(&forged, &mut sink),
        Err(PersistError::InvalidModel("teacher metadata does not name its kind"))
    ));

    // And a file whose metadata was corrupted the same way fails closed.
    let bytes = teacher_bytes(&teacher);
    let name_offset = 4 + 4 + 1 // magic + version + record
        + 8 + teacher.meta().dataset.len() + 8; // dataset str + teacher len
    let mut corrupt = bytes.clone();
    // "HBOS" -> "HBOZ": same length, wrong name.
    corrupt[name_offset + 3] = b'Z';
    assert!(matches!(
        persist::load_teacher(&corrupt[..]),
        Err(PersistError::Corrupt("teacher metadata does not name its kind"))
    ));
}

#[test]
fn mismatched_teacher_width_is_rejected_before_serving() {
    let dir = std::env::temp_dir().join(format!("uadb_teacher_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let booster_path = dir.join("b.uadb");
    let teacher_path = dir.join("t.uadb");

    // Booster trained on 3 features, teacher snapshot on 2.
    let (served, _) = ServedModel::train_with_teacher(
        &tiny_dataset(44, 3, 7),
        DetectorKind::Hbos,
        UadbConfig::fast_for_tests(7),
    )
    .unwrap();
    persist::save_file(&served, &booster_path).unwrap();
    let (_, narrow_teacher) = ServedModel::train_with_teacher(
        &tiny_dataset(44, 2, 7),
        DetectorKind::Hbos,
        UadbConfig::fast_for_tests(7),
    )
    .unwrap();
    persist::save_teacher_file(&narrow_teacher, &teacher_path).unwrap();

    // attach_teacher itself refuses…
    let mut direct = persist::load_file(&booster_path).unwrap();
    assert!(direct.attach_teacher(Arc::clone(&narrow_teacher)).is_err());

    // …and the registry surfaces the mismatch as a typed error instead
    // of building a pool that would fail every teacher request.
    let reg = ModelRegistry::new();
    let err = reg
        .insert_from_files("m", &booster_path, Some(&teacher_path), PoolConfig::default())
        .unwrap_err();
    assert!(matches!(err, RegistryError::TeacherMismatch { expected: 3, got: 2 }), "got {err}");
    assert!(reg.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unrelated_teacher_kind_is_rejected_even_with_matching_width() {
    // Same dataset, same feature width — but the snapshot is an IForest
    // while the booster was distilled from HBOS. Pairing them would
    // serve a meaningless A/B, so the registry must refuse.
    let dir = std::env::temp_dir().join(format!("uadb_kind_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let booster_path = dir.join("b.uadb");
    let teacher_path = dir.join("t.uadb");

    let data = tiny_dataset(44, 2, 10);
    let (served, _) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(10))
            .unwrap();
    persist::save_file(&served, &booster_path).unwrap();
    let (_, iforest_teacher) = ServedModel::train_with_teacher(
        &data,
        DetectorKind::IForest,
        UadbConfig::fast_for_tests(10),
    )
    .unwrap();
    persist::save_teacher_file(&iforest_teacher, &teacher_path).unwrap();

    let reg = ModelRegistry::new();
    let err = reg
        .insert_from_files("m", &booster_path, Some(&teacher_path), PoolConfig::default())
        .unwrap_err();
    assert!(
        matches!(
            &err,
            RegistryError::TeacherKindMismatch { expected, got }
                if expected == "HBOS" && got == "IForest"
        ),
        "got {err}"
    );
    assert!(reg.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_rereads_the_teacher_snapshot() {
    let dir = std::env::temp_dir().join(format!("uadb_reteach_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let booster_path = dir.join("b.uadb");
    let teacher_path = dir.join("t.uadb");

    let data = tiny_dataset(44, 2, 8);
    let (served, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(8))
            .unwrap();
    persist::save_file(&served, &booster_path).unwrap();
    persist::save_teacher_file(&teacher, &teacher_path).unwrap();

    let reg = ModelRegistry::new();
    reg.insert_from_files("m", &booster_path, Some(&teacher_path), PoolConfig::default()).unwrap();
    assert_eq!(reg.teacher_source("m").as_deref(), Some(teacher_path.as_path()));
    let first_cal = reg.get("m").unwrap().model().teacher().unwrap().calibration();

    // Swap the teacher file for a same-kind snapshot fitted on
    // different data and hot-reload. (A different *kind* is refused:
    // the booster's metadata pins which detector it was distilled
    // from — see unrelated_teacher_kind_is_rejected….)
    let (_, new_teacher) = ServedModel::train_with_teacher(
        &tiny_dataset(52, 2, 88),
        DetectorKind::Hbos,
        UadbConfig::fast_for_tests(88),
    )
    .unwrap();
    persist::save_teacher_file(&new_teacher, &teacher_path).unwrap();
    reg.reload("m", None).unwrap();
    let pool = reg.get("m").unwrap();
    let reloaded = pool.model().teacher().unwrap();
    assert_eq!(reloaded.kind(), DetectorKind::Hbos);
    assert_ne!(reloaded.calibration(), first_cal);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runtime_attach_detach_swaps_pools_without_touching_inflight_ones() {
    let dir = std::env::temp_dir().join(format!("uadb_attach_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let booster_path = dir.join("b.uadb");
    let teacher_path = dir.join("t.uadb");

    let data = tiny_dataset(44, 2, 12);
    let (served, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(12))
            .unwrap();
    persist::save_file(&served, &booster_path).unwrap();
    persist::save_teacher_file(&teacher, &teacher_path).unwrap();
    let q = queries(2);
    let expected_teacher = teacher.score_rows(&q).unwrap();
    let expected_booster = served.score_rows(&q).unwrap();

    // Registered booster-only: no teacher variant.
    let reg = ModelRegistry::new();
    reg.insert_from_file("m", &booster_path, PoolConfig { workers: 1, shard_rows: 64 }).unwrap();
    let before = reg.get("m").unwrap();
    assert!(before.model().teacher().is_none());

    // Attach at runtime: new pool serves both variants bit-identically…
    reg.attach_teacher("m", &teacher_path).unwrap();
    let attached = reg.get("m").unwrap();
    assert!(!Arc::ptr_eq(&before, &attached), "attach must swap the pool");
    let teacher_scores = attached.model().teacher().unwrap().score_rows(&q).unwrap();
    for (a, b) in teacher_scores.iter().zip(&expected_teacher) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let booster_scores = attached.score(&q).unwrap();
    for (a, b) in booster_scores.iter().zip(&expected_booster) {
        assert_eq!(a.to_bits(), b.to_bits(), "attach must not disturb the booster weights");
    }
    // …while the pool held from before the attach still has no teacher
    // (in-flight requests are undisturbed).
    assert!(before.model().teacher().is_none());
    // The teacher path is remembered for hot reload.
    assert_eq!(reg.teacher_source("m").as_deref(), Some(teacher_path.as_path()));

    // Detach: the teacher variant is gone again; detaching twice errors.
    reg.detach_teacher("m").unwrap();
    assert!(reg.get("m").unwrap().model().teacher().is_none());
    assert!(reg.teacher_source("m").is_none());
    assert!(matches!(reg.detach_teacher("m"), Err(RegistryError::NoTeacher(_))));

    // Error paths leave the entry untouched: unknown model, a teacher
    // of the wrong kind, a teacher of the wrong width, garbage bytes.
    assert!(matches!(
        reg.attach_teacher("nope", &teacher_path),
        Err(RegistryError::UnknownModel(_))
    ));
    let (_, iforest) = ServedModel::train_with_teacher(
        &data,
        DetectorKind::IForest,
        UadbConfig::fast_for_tests(12),
    )
    .unwrap();
    let iforest_path = dir.join("iforest.uadb");
    persist::save_teacher_file(&iforest, &iforest_path).unwrap();
    assert!(matches!(
        reg.attach_teacher("m", &iforest_path),
        Err(RegistryError::TeacherKindMismatch { .. })
    ));
    let (_, wide) = ServedModel::train_with_teacher(
        &tiny_dataset(44, 3, 12),
        DetectorKind::Hbos,
        UadbConfig::fast_for_tests(12),
    )
    .unwrap();
    let wide_path = dir.join("wide.uadb");
    persist::save_teacher_file(&wide, &wide_path).unwrap();
    assert!(matches!(
        reg.attach_teacher("m", &wide_path),
        Err(RegistryError::TeacherMismatch { expected: 2, got: 3 })
    ));
    let garbage = dir.join("garbage.uadb");
    std::fs::write(&garbage, b"not a container").unwrap();
    assert!(matches!(reg.attach_teacher("m", &garbage), Err(RegistryError::Load(_))));
    assert!(reg.get("m").unwrap().model().teacher().is_none(), "failed attaches must not stick");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_teacher_attach_detach_over_http() {
    use std::io::{Read as _, Write as _};

    let dir = std::env::temp_dir().join(format!("uadb_attach_http_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let booster_path = dir.join("b.uadb");
    let teacher_path = dir.join("t.uadb");

    let data = tiny_dataset(44, 2, 13);
    let (served, teacher) =
        ServedModel::train_with_teacher(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(13))
            .unwrap();
    persist::save_file(&served, &booster_path).unwrap();
    persist::save_teacher_file(&teacher, &teacher_path).unwrap();
    let q = queries(2);
    let expected_teacher = teacher.score_rows(&q).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert_from_file("m", &booster_path, PoolConfig { workers: 1, shard_rows: 64 })
        .unwrap();
    let handle =
        uadb_serve::Server::bind("127.0.0.1:0", registry, uadb_serve::ServerConfig::default())
            .unwrap()
            .spawn()
            .unwrap();

    // One keep-alive connection drives the whole lifecycle.
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let mut roundtrip = move |method: &str, path: &str, body: &str| -> (u16, String) {
        use std::io::BufRead as _;
        writer
            .write_all(
                format!(
                    "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.trim_end().split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    };

    let rows_body = {
        let rows: Vec<uadb_serve::json::Value> =
            (0..q.rows()).map(|r| uadb_serve::json::number_array(q.row(r))).collect();
        uadb_serve::json::to_string(&uadb_serve::json::object([(
            "rows",
            uadb_serve::json::Value::Array(rows),
        )]))
    };

    // Booster-only: the teacher variant does not exist.
    let (status, _) = roundtrip("POST", "/score/m?variant=teacher", &rows_body);
    assert_eq!(status, 404);

    // Attach needs a body naming the file.
    let (status, _) = roundtrip("POST", "/admin/teacher/m", "");
    assert_eq!(status, 400);
    let (status, body) = roundtrip(
        "POST",
        "/admin/teacher/m",
        &format!("{{\"path\": {:?}}}", teacher_path.display().to_string()),
    );
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"attached\":\"m\""), "body: {body}");
    assert!(body.contains("\"teacher\""), "body: {body}");

    // The teacher variant now scores bit-identically to in-process.
    let (status, body) = roundtrip("POST", "/score/m?variant=teacher", &rows_body);
    assert_eq!(status, 200, "body: {body}");
    let parsed = uadb_serve::json::parse(&body).unwrap();
    let scores: Vec<f64> = parsed
        .get("scores")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    for (i, (a, b)) in scores.iter().zip(&expected_teacher).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
    }

    // Attach validation reuses the startup checks: wrong-kind files 409.
    let (_, iforest) = ServedModel::train_with_teacher(
        &data,
        DetectorKind::IForest,
        UadbConfig::fast_for_tests(13),
    )
    .unwrap();
    let iforest_path = dir.join("iforest.uadb");
    persist::save_teacher_file(&iforest, &iforest_path).unwrap();
    let (status, _) = roundtrip(
        "POST",
        "/admin/teacher/m",
        &format!("{{\"path\": {:?}}}", iforest_path.display().to_string()),
    );
    assert_eq!(status, 409);
    let (status, _) = roundtrip("POST", "/admin/teacher/ghost", "{\"path\": \"x\"}");
    assert_eq!(status, 404);

    // Detach on the same connection: the variant 404s again; detaching
    // twice is a 404 too.
    let (status, body) = roundtrip("DELETE", "/admin/teacher/m", "");
    assert_eq!(status, 200, "body: {body}");
    assert!(body.contains("\"detached\":\"m\""));
    let (status, _) = roundtrip("POST", "/score/m?variant=teacher", &rows_body);
    assert_eq!(status, 404);
    let (status, _) = roundtrip("DELETE", "/admin/teacher/m", "");
    assert_eq!(status, 404);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
