//! Golden inventory of every metric family the server exposes.
//!
//! The list between the `audit: metrics-inventory` markers is one of
//! the three views `uadb-audit` holds in agreement (code registrations,
//! the README table, and this test). The test itself closes the loop at
//! runtime: after touching the lazily-registered model families, the
//! `/metrics` exposition must contain exactly these `# TYPE` lines —
//! nothing missing, nothing extra.

use std::collections::BTreeSet;

// audit: metrics-inventory begin
const INVENTORY: &[&str] = &[
    "uadb_anomaly_rate",
    "uadb_divergence_max_abs",
    "uadb_divergence_mean_abs",
    "uadb_divergence_samples_total",
    "uadb_feature_drift_max",
    "uadb_gemm_calls_total",
    "uadb_gemm_packs_built_total",
    "uadb_gemm_packs_reused_total",
    "uadb_http_connections_closed_total",
    "uadb_http_connections_opened_total",
    "uadb_http_open_connections",
    "uadb_http_rejected_total",
    "uadb_http_requests_total",
    "uadb_log_dropped_total",
    "uadb_model_errors_total",
    "uadb_model_requests_total",
    "uadb_model_rows_total",
    "uadb_pool_queue_depth",
    "uadb_pool_shard_duration_seconds",
    "uadb_pool_shards_total",
    "uadb_pool_worker_busy_nanoseconds_total",
    "uadb_pool_worker_panics_total",
    "uadb_reactor_accepted_total",
    "uadb_reactor_events_total",
    "uadb_request_duration_seconds",
    "uadb_score_drift_psi",
    "uadb_stage_duration_seconds",
    "uadb_train_epochs_total",
    "uadb_train_last_loss",
];
// audit: metrics-inventory end

fn exposed_families(text: &str) -> BTreeSet<String> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

#[test]
fn exposition_matches_inventory_exactly() {
    let m = uadb_serve::metrics();
    // The per-model and per-shard families register on first use; touch
    // one model and one shard so the exposition carries them like a
    // serving process would.
    let _ = m.model_stats("inventory-probe");
    let _ = m.shard_stats(0);
    let _ = m.install_drift("inventory-probe", &[0.0], &[1.0], None);
    let _ = m.train_loss_gauge("inventory-probe");
    let exposed = exposed_families(&m.render());
    let want: BTreeSet<String> = INVENTORY.iter().map(|s| s.to_string()).collect();

    let missing: Vec<&String> = want.difference(&exposed).collect();
    let extra: Vec<&String> = exposed.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "exposition disagrees with INVENTORY\n  missing from /metrics: {missing:?}\n  \
         not in INVENTORY: {extra:?}\n(update INVENTORY, the README table, and the \
         registration site together — uadb-audit gates all three)"
    );
    assert_eq!(want.len(), INVENTORY.len(), "INVENTORY contains a duplicate name");
}

#[test]
fn inventory_is_sorted() {
    let mut sorted = INVENTORY.to_vec();
    sorted.sort_unstable();
    assert_eq!(INVENTORY, sorted.as_slice(), "keep INVENTORY sorted for reviewable diffs");
}
