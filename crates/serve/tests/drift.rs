//! Drift-plane integration: a live server on every available I/O
//! backend, driven with clean and covariate-shifted traffic.
//!
//! Pins three properties end to end:
//!
//! 1. **Injected shift is detected.** Replaying the training rows keeps
//!    the PSI of the live score window near zero, while the same rows
//!    with feature 0 offset by +5.0 push the PSI past the 0.25
//!    "significant" band and make feature 0 the arg-max standardized
//!    feature shift — on both backends, via `GET /admin/drift/{name}`.
//! 2. **`POST /admin/drift/{name}/reset`** clears the live window (and
//!    only the live window: the train-time baseline survives) without
//!    touching other models' windows.
//! 3. **`POST /admin/reload/{name}` resets the streaming stats.** The
//!    live window describes the model that is serving; a hot swap must
//!    start a fresh window, and the next `/metrics` scrape must show the
//!    PSI gauge back at zero. (Regression test: the window used to be
//!    keyed only by name, so stale pre-swap samples survived a reload.)
//!
//! The metrics plane is process-global, so each test uses its own model
//! names and all assertions are per-name.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_data::Dataset;
use uadb_detectors::DetectorKind;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{persist, IoMode, ModelRegistry, Server, ServerConfig, ServerHandle};

/// The I/O backends this host can run, or the one `UADB_SERVE_IO` pins.
fn backends() -> Vec<IoMode> {
    match std::env::var("UADB_SERVE_IO").as_deref() {
        Ok("threads") => vec![IoMode::Threads],
        Ok("epoll") => vec![IoMode::Epoll],
        Ok(other) => panic!("UADB_SERVE_IO must be threads|epoll, got `{other}`"),
        Err(_) => {
            let mut all = vec![IoMode::Threads];
            if cfg!(target_os = "linux") {
                all.push(IoMode::Epoll);
            }
            all
        }
    }
}

/// Trains a model on the Fig. 5 clustered dataset and persists it, so
/// registry entries carry a source path and `/admin/reload` works.
fn trained_to_file(seed: u64, tag: &str) -> (Dataset, std::path::PathBuf) {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    let model =
        ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap();
    let path = std::env::temp_dir().join(format!("uadb-drift-{tag}-{}.uadb", std::process::id()));
    persist::save_file(&model, &path).unwrap();
    (data, path)
}

fn spawn(registry: Arc<ModelRegistry>, io: IoMode) -> ServerHandle {
    let config = ServerConfig { io, ..ServerConfig::default() };
    Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap()
}

/// One-shot `Connection: close` request; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let payload = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    writer.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("code").parse().expect("u16");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric Content-Length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("UTF-8"))
}

/// `{"rows": [...]}` from raw rows, with feature 0 offset by `shift`.
fn rows_json(data: &Dataset, shift: f64) -> String {
    let rows: Vec<Value> = (0..data.n_samples())
        .map(|r| {
            let mut row = data.x.row(r).to_vec();
            row[0] += shift;
            json::number_array(&row)
        })
        .collect();
    json::to_string(&json::object([("rows", Value::Array(rows))]))
}

/// Fetches and parses `GET /admin/drift/{name}`.
fn drift_report(addr: SocketAddr, name: &str) -> Value {
    let (status, body) = request(addr, "GET", &format!("/admin/drift/{name}"), None);
    assert_eq!(status, 200, "GET /admin/drift/{name}: {body}");
    json::parse(&body).expect("drift report JSON")
}

fn num(report: &Value, key: &str) -> f64 {
    report
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("`{key}` missing or non-numeric in {report:?}"))
}

/// The current value of the first `/metrics` series starting with `prefix`.
fn gauge_value(addr: SocketAddr, prefix: &str) -> f64 {
    let (status, body) = request(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let line = body
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no series starting with `{prefix}` in:\n{body}"));
    line.rsplit(' ').next().unwrap().parse().expect("numeric sample")
}

#[test]
fn injected_shift_raises_psi_and_reset_clears_the_live_window() {
    let (data, path) = trained_to_file(91, "inject");
    let n = data.n_samples() as f64;
    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        let pool = PoolConfig { workers: 2, shard_rows: 64 };
        registry.insert_from_file("drift-ctl", &path, pool.clone()).unwrap();
        registry.insert_from_file("drift-shift", &path, pool).unwrap();
        let handle = spawn(registry, io);
        let addr = handle.addr();

        // Clean traffic replays the training rows; shifted traffic is
        // the same rows with feature 0 offset far outside its support.
        let (status, body) =
            request(addr, "POST", "/score/drift-ctl", Some(&rows_json(&data, 0.0)));
        assert_eq!(status, 200, "[{}] {body}", io.name());
        let (status, body) =
            request(addr, "POST", "/score/drift-shift", Some(&rows_json(&data, 5.0)));
        assert_eq!(status, 200, "[{}] {body}", io.name());

        let ctl = drift_report(addr, "drift-ctl");
        let shifted = drift_report(addr, "drift-shift");
        assert_eq!(num(&ctl, "live_samples"), n, "[{}]", io.name());
        assert_eq!(num(&shifted, "live_samples"), n, "[{}]", io.name());

        // Replayed training rows score into the baseline's own
        // distribution: PSI stays under the 0.1 "stable" band. The
        // shifted window must blow past 0.25 ("significant") and name
        // feature 0 as the arg-max standardized shift.
        let ctl_psi = num(&ctl, "psi");
        let shift_psi = num(&shifted, "psi");
        assert!(ctl_psi < 0.1, "[{}] control PSI {ctl_psi}", io.name());
        assert!(shift_psi > 0.25, "[{}] shifted PSI {shift_psi}", io.name());
        assert!(shift_psi > ctl_psi, "[{}] {shift_psi} <= {ctl_psi}", io.name());
        assert_eq!(num(&shifted, "feature_drift_argmax"), 0.0, "[{}]", io.name());
        assert!(
            num(&shifted, "feature_drift_max") > num(&ctl, "feature_drift_max"),
            "[{}]",
            io.name()
        );

        // The all-models view carries both names.
        let (status, body) = request(addr, "GET", "/admin/drift", None);
        assert_eq!(status, 200);
        let models = json::parse(&body).unwrap();
        let models = models.get("models").and_then(Value::as_array).expect("models array");
        for name in ["drift-ctl", "drift-shift"] {
            assert!(
                models.iter().any(|m| m.get("model").and_then(Value::as_str) == Some(name)),
                "[{}] `{name}` missing from /admin/drift: {body}",
                io.name()
            );
        }

        // Reset clears the shifted live window — PSI back to "no data",
        // baseline intact — and leaves the control window untouched.
        let (status, body) = request(addr, "POST", "/admin/drift/drift-shift/reset", None);
        assert_eq!(status, 200, "[{}] {body}", io.name());
        let shifted = drift_report(addr, "drift-shift");
        assert_eq!(num(&shifted, "live_samples"), 0.0, "[{}]", io.name());
        assert!(
            matches!(shifted.get("psi"), Some(Value::Null)),
            "[{}] PSI should be null after reset: {shifted:?}",
            io.name()
        );
        assert!(num(&shifted, "baseline_samples") > 0.0, "[{}]", io.name());
        let ctl = drift_report(addr, "drift-ctl");
        assert_eq!(num(&ctl, "live_samples"), n, "[{}] reset leaked across models", io.name());

        // Unknown names are a 404 on both the report and the reset.
        let (status, _) = request(addr, "GET", "/admin/drift/no-such", None);
        assert_eq!(status, 404, "[{}]", io.name());
        let (status, _) = request(addr, "POST", "/admin/drift/no-such/reset", None);
        assert_eq!(status, 404, "[{}]", io.name());

        handle.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reload_starts_a_fresh_drift_window() {
    let (data, path) = trained_to_file(92, "reload");
    for io in backends() {
        let registry = Arc::new(ModelRegistry::new());
        registry
            .insert_from_file("drift-reload", &path, PoolConfig { workers: 2, shard_rows: 64 })
            .unwrap();
        let handle = spawn(registry, io);
        let addr = handle.addr();

        // Shifted traffic drives the PSI gauge well above zero.
        let (status, _) =
            request(addr, "POST", "/score/drift-reload", Some(&rows_json(&data, 5.0)));
        assert_eq!(status, 200);
        let before = drift_report(addr, "drift-reload");
        assert!(num(&before, "live_samples") > 0.0, "[{}]", io.name());
        let psi_series = "uadb_score_drift_psi{model=\"drift-reload\"}";
        let psi_before = gauge_value(addr, psi_series);
        assert!(psi_before > 0.25, "[{}] gauge {psi_before}", io.name());

        // Hot-swapping the model must start a fresh window: the swapped
        // model's live distribution is unrelated to the old traffic.
        let (status, body) = request(addr, "POST", "/admin/reload/drift-reload", None);
        assert_eq!(status, 200, "[{}] {body}", io.name());
        let after = drift_report(addr, "drift-reload");
        assert_eq!(
            num(&after, "live_samples"),
            0.0,
            "[{}] streaming stats survived /admin/reload",
            io.name()
        );
        assert!(matches!(after.get("psi"), Some(Value::Null)), "[{}]", io.name());
        // ...and the next scrape publishes the gauge back at zero.
        let psi_after = gauge_value(addr, psi_series);
        assert_eq!(psi_after, 0.0, "[{}] PSI gauge survived reload", io.name());

        handle.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}
