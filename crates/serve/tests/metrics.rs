//! Telemetry-plane integration: a live server scraped over HTTP on
//! every available I/O backend.
//!
//! Pins three properties end to end:
//!
//! 1. `GET /metrics` emits **well-formed Prometheus text exposition**
//!    (every line parses, histogram bucket invariants hold) containing
//!    the stage histograms, pool gauges and per-model counters — while
//!    concurrent scoring traffic returns scores **bit-identical** to
//!    in-process scoring (instrumentation never perturbs the math).
//! 2. Over-budget connections surface as `rejected_total` on both
//!    `/healthz` and `/metrics`.
//! 3. `GET /admin/slow` captures requests past the slow threshold with
//!    per-stage breakdowns.
//!
//! The metrics plane is process-global (`uadb_serve::metrics()`), and
//! all tests in this binary share one process: assertions are
//! presence/monotonicity-based, never exact-count, so tests compose in
//! any order and across backends.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{IoMode, ModelRegistry, Server, ServerConfig, ServerHandle};

fn trained_model(seed: u64) -> ServedModel {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap()
}

/// The I/O backends this host can run, or the one `UADB_SERVE_IO` pins.
fn backends() -> Vec<IoMode> {
    match std::env::var("UADB_SERVE_IO").as_deref() {
        Ok("threads") => vec![IoMode::Threads],
        Ok("epoll") => vec![IoMode::Epoll],
        Ok(other) => panic!("UADB_SERVE_IO must be threads|epoll, got `{other}`"),
        Err(_) => {
            let mut all = vec![IoMode::Threads];
            if cfg!(target_os = "linux") {
                all.push(IoMode::Epoll);
            }
            all
        }
    }
}

fn spawn_with(model: &Arc<ServedModel>, config: ServerConfig) -> ServerHandle {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("default", Arc::clone(model), PoolConfig { workers: 2, shard_rows: 16 })
        .unwrap();
    Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap()
}

/// One-shot `Connection: close` request; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let payload = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    writer.write_all(req.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("code").parse().expect("u16");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric Content-Length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("UTF-8"))
}

fn rows_json(x: &Matrix, rows: &[usize]) -> String {
    let rows: Vec<Value> = rows.iter().map(|&r| json::number_array(x.row(r))).collect();
    json::to_string(&json::object([("rows", Value::Array(rows))]))
}

fn parse_scores(body: &str) -> Vec<f64> {
    json::parse(body)
        .expect("valid JSON")
        .get("scores")
        .expect("scores")
        .as_array()
        .expect("array")
        .iter()
        .map(|v| v.as_f64().expect("numeric"))
        .collect()
}

/// Parses a text-exposition body into `series{labels} → value`,
/// asserting every line is well-formed along the way. This is the same
/// validation the CI scrape job performs.
fn parse_exposition(body: &str) -> BTreeMap<String, f64> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.bytes().enumerate().all(|(i, b)| {
                b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
            })
    }
    let mut series = BTreeMap::new();
    let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
    for line in body.lines() {
        assert!(!line.is_empty(), "exposition must not contain blank lines");
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap();
            let name = parts.next().unwrap_or_else(|| panic!("malformed comment: {line}"));
            assert!(valid_name(name), "bad metric name in comment: {line}");
            match keyword {
                "HELP" => {
                    assert!(parts.next().is_some(), "HELP without text: {line}");
                }
                "TYPE" => {
                    let ty = parts.next().unwrap_or_else(|| panic!("TYPE without type: {line}"));
                    assert!(
                        matches!(ty, "counter" | "gauge" | "histogram"),
                        "unknown TYPE `{ty}`: {line}"
                    );
                    typed.insert(name, ty);
                }
                other => panic!("unknown comment keyword `{other}`: {line}"),
            }
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        let value: f64 =
            value.parse().unwrap_or_else(|_| panic!("unparsable value `{value}`: {line}"));
        let name = key.split('{').next().unwrap();
        assert!(valid_name(name), "bad series name `{name}`: {line}");
        if key.contains('{') {
            assert!(key.ends_with('}'), "unterminated label set: {line}");
        }
        // Every series belongs to a family announced by a TYPE line.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains_key(f))
            .unwrap_or(name);
        assert!(typed.contains_key(family), "series `{name}` has no TYPE line");
        let prior = series.insert(key.to_string(), value);
        assert!(prior.is_none(), "duplicate series: {key}");
    }
    // Histogram invariants: per family+label-set, cumulative buckets
    // are monotonic in numeric `le` order, end at +Inf, and the +Inf
    // bucket agrees with that label-set's `_count`.
    let mut by_hist: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (key, value) in &series {
        let name = key.split('{').next().unwrap();
        if name.strip_suffix("_bucket").is_some() {
            let labels = key.split_once('{').map(|(_, l)| l).unwrap_or("");
            let le_start =
                labels.find("le=\"").unwrap_or_else(|| panic!("bucket without le: {key}"));
            let le = &labels[le_start + 4..];
            let le = &le[..le.find('"').unwrap()];
            let le: f64 = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap_or_else(|_| panic!("unparsable le `{le}`: {key}"))
            };
            // `le` is always the last label, so everything before it
            // (family + the other labels) identifies the label-set.
            let group = key[..key.find("le=\"").unwrap()].trim_end_matches(',').to_string();
            by_hist.entry(group).or_default().push((le, *value));
        }
    }
    for (group, mut buckets) in by_hist {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0;
        for (le, v) in &buckets {
            assert!(*v >= prev, "{group}: bucket le={le} not cumulative");
            prev = *v;
        }
        let (last_le, last_v) = *buckets.last().unwrap();
        assert_eq!(last_le, f64::INFINITY, "{group}: last bucket must be +Inf");
        // `group` is `family_bucket{other_labels...`; the matching
        // count series is `family_count{other_labels...}`.
        let count_key = {
            let k = group.replacen("_bucket", "_count", 1);
            if let Some(stripped) = k.strip_suffix('{') {
                stripped.to_string() // no labels besides le
            } else {
                format!("{k}}}")
            }
        };
        let count = series
            .get(&count_key)
            .unwrap_or_else(|| panic!("{group}: missing count series `{count_key}`"));
        assert_eq!(*count, last_v, "{group}: +Inf bucket != _count");
    }
    series
}

/// The value of the first series whose name+labels start with `prefix`.
fn series_with_prefix<'a>(
    series: &'a BTreeMap<String, f64>,
    prefix: &str,
) -> Option<(&'a String, f64)> {
    series.iter().find(|(k, _)| k.starts_with(prefix)).map(|(k, v)| (k, *v))
}

#[test]
fn metrics_scrape_under_load_is_valid_and_scores_stay_bit_identical() {
    let served = Arc::new(trained_model(71));
    let data = fig5_dataset(AnomalyType::Clustered, 71);
    let expected = served.score_rows(&data.x).unwrap();
    for io in backends() {
        let handle = spawn_with(&served, ServerConfig { io, ..ServerConfig::default() });
        let addr = handle.addr();

        // Concurrent scoring load; every response must match in-process
        // scoring bit for bit even with the telemetry plane recording
        // every stage.
        let slices: Vec<Vec<usize>> = vec![
            (0..data.n_samples()).collect(),
            (0..40).collect(),
            vec![7],
            (0..data.n_samples()).step_by(7).collect(),
        ];
        let mut threads = Vec::new();
        for slice in slices {
            let x = data.x.clone();
            let expected = expected.clone();
            threads.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    let (status, payload) =
                        request(addr, "POST", "/score", Some(&rows_json(&x, &slice)));
                    assert_eq!(status, 200, "body: {payload}");
                    let scores = parse_scores(&payload);
                    for (pos, &row) in slice.iter().enumerate() {
                        assert_eq!(scores[pos].to_bits(), expected[row].to_bits(), "row {row}");
                    }
                    // Interleave scrapes with the scoring load.
                    let (status, body) = request(addr, "GET", "/metrics", None);
                    assert_eq!(status, 200);
                    parse_exposition(&body);
                }
            }));
        }
        for t in threads {
            t.join().expect("client thread");
        }

        // A final scrape must carry every required series.
        let (status, body) = request(addr, "GET", "/metrics", None);
        assert_eq!(status, 200, "[{}]", io.name());
        let series = parse_exposition(&body);
        for required in [
            "uadb_request_duration_seconds_count",
            "uadb_stage_duration_seconds_bucket{stage=\"parse\"",
            "uadb_stage_duration_seconds_bucket{stage=\"score\"",
            "uadb_stage_duration_seconds_bucket{stage=\"queue_wait\"",
            "uadb_stage_duration_seconds_bucket{stage=\"serialize\"",
            "uadb_stage_duration_seconds_bucket{stage=\"write_flush\"",
            "uadb_http_requests_total",
            "uadb_http_connections_opened_total",
            "uadb_http_open_connections",
            "uadb_pool_queue_depth",
            "uadb_pool_shards_total",
            "uadb_pool_worker_busy_nanoseconds_total",
            "uadb_model_requests_total{model=\"default\",variant=\"booster\"}",
            "uadb_model_rows_total{model=\"default\",variant=\"booster\"}",
            "uadb_gemm_packs_built_total",
            "uadb_gemm_calls_total",
            "uadb_log_dropped_total",
        ] {
            assert!(
                series_with_prefix(&series, required).is_some(),
                "[{}] missing series `{required}` in:\n{body}",
                io.name()
            );
        }
        // The scoring load left its marks: requests counted, shards
        // scored, the queue drained back to a small steady state.
        let (_, reqs) =
            series_with_prefix(&series, "uadb_model_requests_total{model=\"default\"").unwrap();
        assert!(reqs >= 12.0, "[{}] model requests {reqs}", io.name());
        let (_, shards) = series_with_prefix(&series, "uadb_pool_shards_total").unwrap();
        assert!(shards >= 1.0, "[{}] pool shards {shards}", io.name());

        // /healthz grew latency percentiles and rejection counters.
        let (_, body) = request(addr, "GET", "/healthz", None);
        let health = json::parse(&body).unwrap();
        let p50 = health.get("latency_ms").and_then(|l| l.get("p50")).and_then(Value::as_f64);
        assert!(p50.is_some(), "[{}] /healthz latency_ms.p50 missing: {body}", io.name());
        let p99 = health.get("latency_ms").and_then(|l| l.get("p99")).and_then(Value::as_f64);
        assert!(p99.unwrap() >= p50.unwrap(), "[{}] p99 < p50", io.name());
        assert!(health.get("rejected_total").and_then(Value::as_f64).is_some());
        assert!(health.get("worker_panics_total").and_then(Value::as_f64).is_some());

        handle.shutdown();
    }
}

#[test]
fn over_budget_connections_count_as_rejections() {
    let served = Arc::new(trained_model(72));
    for io in backends() {
        let config = ServerConfig {
            max_connections: 1,
            max_requests_per_conn: 100,
            idle_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            io,
            shards: 1,
        };
        let handle = spawn_with(&served, config);
        let addr = handle.addr();

        let (_, body) = request(addr, "GET", "/healthz", None);
        let before =
            json::parse(&body).unwrap().get("rejected_total").and_then(Value::as_f64).unwrap();

        // Hold the whole budget with one idle keep-alive connection,
        // then connect again: 503, counted as an over-budget rejection.
        // The slot freed by the probe above may lag a moment, so retry
        // until a holder actually gets a 200 (rejected holders just add
        // to the over-budget count this test asserts on).
        let mut holder = None;
        for _ in 0..50 {
            let mut candidate = TcpStream::connect(addr).unwrap();
            candidate.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            candidate
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            let mut first = [0u8; 16];
            let n = candidate.read(&mut first).unwrap();
            if first[..n].starts_with(b"HTTP/1.1 200") {
                holder = Some(candidate);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let holder = holder.expect("budget slot never admitted the holder");
        let (status, _) = request(addr, "GET", "/healthz", None);
        assert_eq!(status, 503, "[{}]", io.name());
        drop(holder);

        // Poll until the freed slot admits us again, then check both
        // surfaces. (>= +1: other tests in this process may reject too.)
        let mut after = None;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(20));
            let stream = TcpStream::connect(addr);
            let Ok(mut s) = stream else { continue };
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            if s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n").is_err() {
                continue;
            }
            let mut body = String::new();
            if BufReader::new(s).read_to_string(&mut body).is_err() {
                continue;
            }
            if !body.starts_with("HTTP/1.1 200") {
                continue;
            }
            let json_start = body.find("\r\n\r\n").unwrap() + 4;
            after = json::parse(&body[json_start..])
                .ok()
                .and_then(|d| d.get("rejected_total").and_then(Value::as_f64));
            break;
        }
        let after = after.expect("budget slot never released");
        assert!(after >= before + 1.0, "[{}] rejected_total {before} -> {after}", io.name());

        let (_, body) = request(addr, "GET", "/metrics", None);
        let series = parse_exposition(&body);
        let (_, rejected) =
            series_with_prefix(&series, "uadb_http_rejected_total{reason=\"over_budget\"}")
                .expect("over_budget series");
        assert!(rejected >= 1.0);

        handle.shutdown();
    }
}

#[test]
fn slow_ring_captures_requests_with_stage_breakdowns() {
    let served = Arc::new(trained_model(73));
    let data = fig5_dataset(AnomalyType::Clustered, 73);
    // Process-global knob: capture everything. Concurrent tests in this
    // binary will also land in the ring; assertions only require OUR
    // entries to show up with sane shapes.
    uadb_serve::metrics().set_slow_threshold_ms(0);
    for io in backends() {
        let handle = spawn_with(&served, ServerConfig { io, ..ServerConfig::default() });
        let addr = handle.addr();

        let rows: Vec<usize> = (0..64).collect();
        let (status, _) = request(addr, "POST", "/score", Some(&rows_json(&data.x, &rows)));
        assert_eq!(status, 200);

        let (status, body) = request(addr, "GET", "/admin/slow", None);
        assert_eq!(status, 200, "[{}]", io.name());
        let doc = json::parse(&body).unwrap();
        let entries = doc.get("slow").and_then(Value::as_array).expect("slow array");
        assert!(!entries.is_empty(), "[{}] ring empty: {body}", io.name());
        // At least one captured entry is a scoring request against our
        // model with per-stage timings that sum to at most the total.
        let scored = entries.iter().find(|e| {
            e.get("model").and_then(Value::as_str) == Some("default")
                && e.get("rows").and_then(Value::as_f64) == Some(64.0)
        });
        let entry = scored.unwrap_or_else(|| panic!("[{}] no scored entry: {body}", io.name()));
        assert_eq!(entry.get("variant").and_then(Value::as_str), Some("booster"));
        assert_eq!(entry.get("status").and_then(Value::as_f64), Some(200.0));
        assert!(entry.get("trace").and_then(Value::as_f64).unwrap() >= 1.0);
        let total = entry.get("total_ms").and_then(Value::as_f64).unwrap();
        let stages = entry.get("stages_ms").expect("stages_ms");
        let score_ms = stages.get("score").and_then(Value::as_f64).unwrap_or(0.0);
        assert!(score_ms <= total, "[{}] score {score_ms} > total {total}", io.name());

        handle.shutdown();
    }
    // Restore the default so other tests' rings don't churn.
    uadb_serve::metrics().set_slow_threshold_ms(100);
}
