//! Hostile-network integration suite: the paths a well-behaved client
//! never exercises — slow-loris partial requests, clients that stop
//! reading while responses pile up (partial writes under a full socket
//! buffer), pipelined bursts, and connection-budget saturation with
//! idle keep-alive clients.
//!
//! Every test runs against each available I/O backend (threads
//! everywhere, epoll additionally on Linux; pin one with
//! `UADB_SERVE_IO=threads|epoll`), asserting identical observable
//! behaviour — and, for scoring, bit-identical response bytes.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::json::{self, Value};
use uadb_serve::model::ServedModel;
use uadb_serve::pool::PoolConfig;
use uadb_serve::{IoMode, ModelRegistry, Server, ServerConfig, ServerHandle};

fn trained_model(seed: u64) -> Arc<ServedModel> {
    let data = fig5_dataset(AnomalyType::Clustered, seed);
    Arc::new(
        ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap(),
    )
}

/// The I/O backends this host can run, or the one `UADB_SERVE_IO` pins.
fn backends() -> Vec<IoMode> {
    match std::env::var("UADB_SERVE_IO").as_deref() {
        Ok("threads") => vec![IoMode::Threads],
        Ok("epoll") => vec![IoMode::Epoll],
        Ok(other) => panic!("UADB_SERVE_IO must be threads|epoll, got `{other}`"),
        Err(_) => {
            let mut all = vec![IoMode::Threads];
            if cfg!(target_os = "linux") {
                all.push(IoMode::Epoll);
            }
            all
        }
    }
}

fn spawn_with(model: &Arc<ServedModel>, config: ServerConfig) -> ServerHandle {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("default", Arc::clone(model), PoolConfig { workers: 2, shard_rows: 64 })
        .unwrap();
    Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap()
}

fn score_request(x: &Matrix, rows: &[usize], close: bool) -> String {
    let rows_json: Vec<Value> = rows.iter().map(|&r| json::number_array(x.row(r))).collect();
    let body = json::to_string(&json::object([("rows", Value::Array(rows_json))]));
    format!(
        "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
}

/// Reads one `Content-Length`-framed response; returns `(status, body)`.
fn read_response(reader: &mut impl BufRead) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status line");
    assert!(status_line.starts_with("HTTP/1.1 "), "unexpected status line {status_line:?}");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric Content-Length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn parse_scores(body: &str) -> Vec<f64> {
    json::parse(body)
        .expect("valid JSON")
        .get("scores")
        .expect("scores field")
        .as_array()
        .expect("array")
        .iter()
        .map(|v| v.as_f64().expect("numeric"))
        .collect()
}

/// Reads until the server hangs up, tolerating response bytes before
/// the close. A connection reset *after* data was received counts as a
/// close too (a hostile-path reject can always race a late client
/// write); a reset before any response, or a read timeout, fails.
fn drain_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    let mut all = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return all,
            Ok(n) => all.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::ConnectionReset && !all.is_empty() => return all,
            Err(e) => panic!("expected EOF from server, got {e} after {} bytes", all.len()),
        }
    }
}

#[test]
fn slow_loris_partial_requests_are_reaped_without_pinning_the_server() {
    let model = trained_model(70);
    for io in backends() {
        let config = ServerConfig {
            max_connections: 8,
            max_requests_per_conn: 100,
            idle_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_millis(300),
            io,
            shards: 1,
        };
        let handle = spawn_with(&model, config);
        let addr = handle.addr();

        // Drip half a request head, then stall forever.
        let mut loris_head = TcpStream::connect(addr).unwrap();
        loris_head.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loris_head.write_all(b"POST /score HTTP/1.1\r\nContent-Le").unwrap();

        // Declare a body, deliver a tenth of it, stall.
        let mut loris_body = TcpStream::connect(addr).unwrap();
        loris_body.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loris_body
            .write_all(b"POST /score HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"rows\": ")
            .unwrap();

        // Both get the stalled-request answer and a close, well before
        // the idle timeout — the io timeout governs mid-request.
        let started = Instant::now();
        for (name, stream) in [("head", &mut loris_head), ("body", &mut loris_body)] {
            let leftovers = drain_to_eof(stream);
            let text = String::from_utf8_lossy(&leftovers);
            assert!(
                text.starts_with("HTTP/1.1 408 "),
                "[{} {name}] expected 408 before close, got {text:?}",
                io.name()
            );
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "[{}] slow-loris reap took the idle path, not the io path",
            io.name()
        );

        // The server is not pinned: a normal client still round-trips.
        let data = fig5_dataset(AnomalyType::Clustered, 70);
        let mut ok = TcpStream::connect(addr).unwrap();
        ok.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        ok.write_all(score_request(&data.x, &[0, 1, 2], true).as_bytes()).unwrap();
        let mut reader = BufReader::new(ok);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "[{}] body: {body}", io.name());

        handle.shutdown();
    }
}

/// Shrinks a socket's receive buffer before the window is negotiated so
/// the server hits a full send buffer after a few kilobytes — the
/// partial-write path on demand.
#[cfg(target_os = "linux")]
fn tiny_rcvbuf_client(addr: SocketAddr) -> TcpStream {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    // Connect first (std offers no pre-connect socket), then shrink:
    // the kernel clamps the advertised window growth from here on, so
    // the server-side stall still happens reliably.
    let stream = TcpStream::connect(addr).unwrap();
    let val: i32 = 4096;
    // SAFETY: `stream` keeps the fd alive across the call; `optval`
    // points at a live i32 whose exact size is passed as `optlen`.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
    stream
}

/// A client that pipelines many large scoring requests and refuses to
/// read for a while: the server's responses overrun the socket buffers,
/// forcing EAGAIN-aware partial-write resumption (epoll) / blocking
/// write completion (threads). Every byte must still arrive, in order,
/// bit-identical to sequential scoring.
#[cfg(target_os = "linux")]
#[test]
fn stalled_reader_gets_every_pipelined_response_after_partial_writes() {
    let model = trained_model(71);
    let data = fig5_dataset(AnomalyType::Clustered, 71);
    // 500-row responses are ~10KB of JSON each; ten of them overrun the
    // deliberately tiny client receive buffer many times over.
    let slice: Vec<usize> = (0..data.n_samples()).collect();
    let expected = model.score_rows(&data.x.select_rows(&slice)).unwrap();
    const PIPELINED: usize = 10;

    for io in backends() {
        let config = ServerConfig {
            max_connections: 8,
            max_requests_per_conn: 100,
            idle_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(10),
            io,
            shards: 1,
        };
        let handle = spawn_with(&model, config);
        let addr = handle.addr();

        let stream = tiny_rcvbuf_client(addr);
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let request = score_request(&data.x, &slice, false);
        // Write on a side thread: with the reader stalled, the requests
        // themselves can exceed what the server will buffer at once.
        let sender = std::thread::spawn(move || {
            for _ in 0..PIPELINED {
                writer.write_all(request.as_bytes()).expect("pipelined send");
            }
        });
        // Let responses pile into the full socket buffer.
        std::thread::sleep(Duration::from_millis(400));
        let mut reader = BufReader::new(stream);
        for i in 0..PIPELINED {
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200, "[{}] response {i}: {body}", io.name());
            let scores = parse_scores(&body);
            assert_eq!(scores.len(), expected.len());
            for (j, (a, b)) in scores.iter().zip(&expected).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "[{}] response {i} row {j} differs after partial writes",
                    io.name()
                );
            }
        }
        sender.join().expect("sender thread");
        handle.shutdown();
    }
}

#[test]
fn pipelined_burst_is_answered_in_order_and_bit_identical_to_sequential() {
    let model = trained_model(72);
    let data = fig5_dataset(AnomalyType::Clustered, 72);
    let slices: [&[usize]; 4] = [&[0, 1, 2], &[499], &[10, 20, 30, 40, 50], &[3]];
    for io in backends() {
        let handle = spawn_with(&model, ServerConfig { io, ..ServerConfig::default() });
        let addr = handle.addr();

        // Sequential reference on fresh connections.
        let mut sequential = Vec::new();
        for slice in slices {
            let mut one = TcpStream::connect(addr).unwrap();
            one.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            one.write_all(score_request(&data.x, slice, true).as_bytes()).unwrap();
            let mut reader = BufReader::new(one);
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            sequential.push(body);
        }

        // The same requests as ONE write, interleaved with a cheap
        // inline endpoint mid-burst.
        let mut burst = String::new();
        for slice in &slices[..2] {
            burst.push_str(&score_request(&data.x, slice, false));
        }
        burst.push_str("GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
        for slice in &slices[2..] {
            burst.push_str(&score_request(&data.x, slice, false));
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        // Responses come back in request order: two scores, the
        // healthz, two more scores — score bodies byte-identical to the
        // sequential reference.
        for (i, expected_body) in sequential.iter().enumerate() {
            if i == 2 {
                let (status, health) = read_response(&mut reader);
                assert_eq!(status, 200, "[{}] mid-burst healthz", io.name());
                assert!(health.contains("\"status\":\"ok\""));
            }
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(
                body,
                *expected_body,
                "[{}] pipelined response {i} differs from sequential",
                io.name()
            );
        }
        handle.shutdown();
    }
}

#[test]
fn idle_keepalive_connections_fill_the_budget_and_release_it() {
    let model = trained_model(73);
    const BUDGET: usize = 16;
    for io in backends() {
        let config = ServerConfig {
            max_connections: BUDGET,
            max_requests_per_conn: 100,
            idle_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(5),
            io,
            shards: 1,
        };
        let handle = spawn_with(&model, config);
        let addr = handle.addr();

        // Fill the whole budget with idle keep-alive connections (one
        // warm-up roundtrip each, then silence).
        let mut held = Vec::new();
        for i in 0..BUDGET {
            let mut c = TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut reader = BufReader::new(c);
            let (status, _) = read_response(&mut reader);
            assert_eq!(status, 200, "[{}] connection {i}", io.name());
            held.push(reader);
        }

        // The next client bounces with 503 even though every held
        // connection is idle.
        let mut extra = TcpStream::connect(addr).unwrap();
        extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        extra.write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let bytes = drain_to_eof(&mut extra);
        assert!(
            String::from_utf8_lossy(&bytes).starts_with("HTTP/1.1 503 "),
            "[{}] over-budget client was not turned away",
            io.name()
        );

        // Every held connection is still alive and serving.
        for (i, reader) in held.iter_mut().enumerate() {
            reader
                .get_mut()
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n")
                .unwrap();
            let (status, body) = read_response(reader);
            assert_eq!(status, 200, "[{}] held connection {i} died: {body}", io.name());
        }

        // Dropping one frees a slot for a newcomer.
        drop(held.pop());
        let mut admitted = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(20));
            let mut c = TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut reader = BufReader::new(c);
            if read_response(&mut reader).0 == 200 {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "[{}] freed budget slot never reused", io.name());

        handle.shutdown();
    }
}

/// The acceptance criterion of the reactor: a connection budget at
/// least 4× the threaded backend's default, held concurrently by live
/// keep-alive clients against a small fixed worker pool, on one event
/// loop. 1024 connections cost the reactor two buffers each — not 1024
/// OS threads.
#[cfg(target_os = "linux")]
#[test]
fn epoll_sustains_4x_the_threaded_default_connection_budget() {
    const CONNS: usize = 1024;
    assert!(
        CONNS >= 4 * ServerConfig::default().max_connections,
        "test must exercise ≥ 4× the threaded default budget"
    );
    let model = trained_model(74);
    let data = fig5_dataset(AnomalyType::Clustered, 74);
    let expected = model.score_rows(&data.x.select_rows(&[0, 1, 2])).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry
        .insert("default", Arc::clone(&model), PoolConfig { workers: 4, shard_rows: 64 })
        .unwrap();
    let config = ServerConfig {
        max_connections: CONNS,
        max_requests_per_conn: 1000,
        idle_timeout: Duration::from_secs(60),
        io_timeout: Duration::from_secs(10),
        io: IoMode::Epoll,
        shards: 4,
    };
    let handle = Server::bind("127.0.0.1:0", registry, config).unwrap().spawn().unwrap();
    let addr = handle.addr();

    // Open the full budget of keep-alive connections, each verified
    // live with a roundtrip.
    let mut held = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let mut c = match TcpStream::connect(addr) {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::WouldBlock => panic!("connect {i}: {e}"),
            Err(e) => panic!("connect {i} failed: {e}"),
        };
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reader = BufReader::new(c);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 200, "connection {i} rejected");
        held.push(reader);
    }

    // The server reports the full house…
    held[0].get_mut().write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let (_, body) = read_response(&mut held[0]);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("open_connections").and_then(Value::as_f64), Some(CONNS as f64));
    assert_eq!(doc.get("backend").and_then(Value::as_str), Some("epoll"));

    // …turns away connection CONNS+1…
    let mut extra = TcpStream::connect(addr).unwrap();
    extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    extra.write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let bytes = drain_to_eof(&mut extra);
    assert!(
        String::from_utf8_lossy(&bytes).starts_with("HTTP/1.1 503 "),
        "budget overflow not rejected at {CONNS} connections"
    );

    // …and still *scores* correctly on connections across the range
    // while the other ~thousand sit idle on the same event loop.
    for idx in [0usize, 1, CONNS / 2, CONNS - 2, CONNS - 1] {
        let reader = &mut held[idx];
        reader.get_mut().write_all(score_request(&data.x, &[0, 1, 2], false).as_bytes()).unwrap();
        let (status, body) = read_response(reader);
        assert_eq!(status, 200, "scoring on held connection {idx}: {body}");
        let scores = parse_scores(&body);
        for (j, (a, b)) in scores.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "connection {idx} row {j}");
        }
    }

    drop(held);
    handle.shutdown();
}

#[test]
fn eof_during_inflight_score_still_answers_the_truncated_leftover() {
    // A client sends one complete scoring request plus the *front half*
    // of a second one, then half-closes. Whatever backend, the score
    // must come back followed by a 400 for the truncated leftover, then
    // a clean close — even though the EOF lands while the score is
    // still on the pool.
    let model = trained_model(75);
    let data = fig5_dataset(AnomalyType::Clustered, 75);
    for io in backends() {
        let handle = spawn_with(&model, ServerConfig { io, ..ServerConfig::default() });

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut wire = score_request(&data.x, &[0, 1, 2, 3], false);
        wire.push_str("POST /score HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"rows");
        stream.write_all(wire.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        let mut reader = BufReader::new(stream);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "[{}] score response: {body}", io.name());
        assert_eq!(parse_scores(&body).len(), 4);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 400, "[{}] truncated leftover must be answered", io.name());
        let leftover = drain_to_eof(reader.get_mut());
        assert!(leftover.is_empty(), "[{}] expected clean close", io.name());

        handle.shutdown();
    }
}

// --------------------- binary wire protocol ----------------------

/// Wraps a raw body in a `POST /score` request negotiating the binary
/// rows payload via `Content-Type: application/x-uadb-rows`.
fn binary_request_raw(body: &[u8], close: bool) -> Vec<u8> {
    let mut wire = format!(
        "POST /score HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/x-uadb-rows\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    )
    .into_bytes();
    wire.extend_from_slice(body);
    wire
}

/// Encodes the binary header + row payload for `rows` of `x` at the
/// given dtype code (1 = f32, 2 = f64).
fn binary_body(x: &Matrix, rows: &[usize], dtype: u8) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(b"UROW");
    body.push(1); // version
    body.push(dtype);
    body.extend_from_slice(&0u16.to_le_bytes()); // reserved
    body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    body.extend_from_slice(&(x.cols() as u32).to_le_bytes());
    for &r in rows {
        for v in x.row(r) {
            match dtype {
                1 => body.extend_from_slice(&(*v as f32).to_le_bytes()),
                _ => body.extend_from_slice(&v.to_le_bytes()),
            }
        }
    }
    body
}

/// Reads one `Content-Length`-framed response without assuming a UTF-8
/// body; returns `(status, content_type, body)`.
fn read_binary_response(reader: &mut impl BufRead) -> (u16, String, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status line");
    assert!(status_line.starts_with("HTTP/1.1 "), "unexpected status line {status_line:?}");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    let mut content_type = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("numeric Content-Length");
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = value.trim().to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, content_type, body)
}

#[test]
fn binary_hostile_payloads_get_4xx_not_crash() {
    let model = trained_model(76);
    let data = fig5_dataset(AnomalyType::Clustered, 76);
    let cols = data.x.cols();
    let good = binary_body(&data.x, &[0, 1], 2);
    for io in backends() {
        let handle = spawn_with(&model, ServerConfig { io, ..ServerConfig::default() });
        let addr = handle.addr();

        let mut cases: Vec<(&str, Vec<u8>, u16)> = Vec::new();
        // Truncated header: fewer bytes than the fixed 16-byte prefix.
        cases.push(("truncated header", good[..10].to_vec(), 400));
        // Truncated row payload: the header declares two rows, the body
        // carries one.
        let mut short = good.clone();
        short.truncate(16 + cols * 8);
        cases.push(("truncated row payload", short, 400));
        // Declared dimensions whose product overflows / dwarfs the body
        // cap — must be rejected up front, never allocated.
        let mut huge = good[..16].to_vec();
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        huge[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        cases.push(("oversized declared length", huge, 400));
        // Unknown dtype code.
        let mut bad_dtype = good.clone();
        bad_dtype[5] = 9;
        cases.push(("unknown dtype", bad_dtype, 400));
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        cases.push(("bad magic", bad_magic, 400));
        // A well-formed payload whose width disagrees with the model:
        // decodes fine, rejected by scoring exactly like wrong-width
        // JSON rows.
        let mut wrong_width = Vec::new();
        wrong_width.extend_from_slice(b"UROW");
        wrong_width.push(1);
        wrong_width.push(2);
        wrong_width.extend_from_slice(&0u16.to_le_bytes());
        wrong_width.extend_from_slice(&2u32.to_le_bytes());
        wrong_width.extend_from_slice(&((cols + 1) as u32).to_le_bytes());
        for _ in 0..2 * (cols + 1) {
            wrong_width.extend_from_slice(&1.0f64.to_le_bytes());
        }
        cases.push(("width mismatch", wrong_width, 422));

        for (what, body, want_status) in cases {
            let mut c = TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            c.write_all(&binary_request_raw(&body, false)).unwrap();
            let mut reader = BufReader::new(c);
            let (status, _, _) = read_binary_response(&mut reader);
            assert_eq!(status, want_status, "[{}] {what}", io.name());
            // The connection survives the reject and still scores.
            reader.get_mut().write_all(&binary_request_raw(&good, true)).unwrap();
            let (status, ctype, scores) = read_binary_response(&mut reader);
            assert_eq!(status, 200, "[{}] follow-up after {what}", io.name());
            assert_eq!(ctype, "application/x-uadb-scores", "[{}] {what}", io.name());
            assert_eq!(scores.len(), 2 * 8, "[{}] {what}", io.name());
        }
        handle.shutdown();
    }
}

#[test]
fn binary_f64_scores_are_bit_identical_to_json() {
    let model = trained_model(77);
    let data = fig5_dataset(AnomalyType::Clustered, 77);
    let rows: Vec<usize> = (0..32).collect();
    let expected = model.score_rows(&data.x.select_rows(&rows)).unwrap();
    for io in backends() {
        let handle = spawn_with(&model, ServerConfig { io, ..ServerConfig::default() });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        c.write_all(score_request(&data.x, &rows, false).as_bytes()).unwrap();
        let mut reader = BufReader::new(c);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "[{}] JSON: {body}", io.name());
        let json_scores = parse_scores(&body);

        // Same connection, switching formats mid-stream (keep-alive).
        reader
            .get_mut()
            .write_all(&binary_request_raw(&binary_body(&data.x, &rows, 2), true))
            .unwrap();
        let (status, ctype, bytes) = read_binary_response(&mut reader);
        assert_eq!(status, 200, "[{}] binary", io.name());
        assert_eq!(ctype, "application/x-uadb-scores", "[{}]", io.name());
        assert_eq!(bytes.len(), rows.len() * 8, "[{}]", io.name());
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let bin = f64::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(bin.to_bits(), expected[i].to_bits(), "[{}] row {i} vs oracle", io.name());
            assert_eq!(bin.to_bits(), json_scores[i].to_bits(), "[{}] row {i} vs JSON", io.name());
        }
        handle.shutdown();
    }
}

#[test]
fn binary_f32_scores_equal_the_quantized_f64_pipeline() {
    // The documented f32 contract: rows quantize to f32 on the way in,
    // scores quantize to f32 on the way out, and in between runs the
    // identical f64 pipeline. So the oracle is exact, not approximate:
    // score the f32-rounded rows in f64, round the scores to f32.
    let model = trained_model(78);
    let data = fig5_dataset(AnomalyType::Clustered, 78);
    let rows: Vec<usize> = (0..16).collect();
    let cols = data.x.cols();
    let mut quantized = Vec::with_capacity(rows.len() * cols);
    for &r in &rows {
        for v in data.x.row(r) {
            quantized.push(f64::from(*v as f32));
        }
    }
    let quantized = Matrix::from_vec(rows.len(), cols, quantized).unwrap();
    let expected: Vec<f32> =
        model.score_rows(&quantized).unwrap().iter().map(|s| *s as f32).collect();
    for io in backends() {
        let handle = spawn_with(&model, ServerConfig { io, ..ServerConfig::default() });
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        c.write_all(&binary_request_raw(&binary_body(&data.x, &rows, 1), true)).unwrap();
        let mut reader = BufReader::new(c);
        let (status, ctype, bytes) = read_binary_response(&mut reader);
        assert_eq!(status, 200, "[{}]", io.name());
        assert_eq!(ctype, "application/x-uadb-scores", "[{}]", io.name());
        assert_eq!(bytes.len(), rows.len() * 4, "[{}]", io.name());
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let got = f32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(got.to_bits(), expected[i].to_bits(), "[{}] row {i}", io.name());
        }
        handle.shutdown();
    }
}

// ------------------------ accept fairness ------------------------

/// A connect flood must not starve in-flight connection I/O: the
/// reactor caps its accept burst per tick, so a scorer sharing the one
/// event loop with a saturating accept queue keeps making progress.
#[cfg(target_os = "linux")]
#[test]
fn connect_flood_does_not_starve_active_scorer() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let model = trained_model(79);
    let data = fig5_dataset(AnomalyType::Clustered, 79);
    let expected = model.score_rows(&data.x.select_rows(&[0, 1])).unwrap();
    let config = ServerConfig {
        max_connections: 4096,
        max_requests_per_conn: 10_000,
        idle_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_secs(10),
        io: IoMode::Epoll,
        shards: 1, // one loop: accepts and scorer I/O compete directly
    };
    let handle = spawn_with(&model, config);
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut opened = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(c) = TcpStream::connect(addr) {
                        drop(c);
                        opened += 1;
                    }
                }
                opened
            })
        })
        .collect();

    let scorer = TcpStream::connect(addr).unwrap();
    scorer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(scorer);
    let req = score_request(&data.x, &[0, 1], false);
    let mut worst = Duration::ZERO;
    for i in 0..30 {
        let t0 = Instant::now();
        reader.get_mut().write_all(req.as_bytes()).unwrap();
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "flooded request {i}: {body}");
        let scores = parse_scores(&body);
        for (j, (a, b)) in scores.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i} row {j}");
        }
        worst = worst.max(t0.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    let opened: u32 = flooders.into_iter().map(|f| f.join().unwrap()).sum();
    assert!(opened > 0, "flood never connected — the test proved nothing");
    // The 5s read timeout above is the hard gate; this documents the
    // margin actually observed.
    assert!(worst < Duration::from_secs(5), "scorer starved: worst roundtrip {worst:?}");
    handle.shutdown();
}
