//! Property test: persistence round-trips are lossless.
//!
//! For any trained model, `save → load` must reproduce scoring
//! **bit-identically** — raw weights travel as IEEE-754 bits, so not a
//! single ULP may move. The property is exercised across seeds, anomaly
//! types, teachers and query shapes.

use proptest::prelude::*;
use uadb::UadbConfig;
use uadb_data::synth::{fig5_dataset, AnomalyType};
use uadb_detectors::DetectorKind;
use uadb_serve::model::ServedModel;
use uadb_serve::persist;

fn anomaly_type(i: usize) -> AnomalyType {
    [AnomalyType::Local, AnomalyType::Global, AnomalyType::Clustered, AnomalyType::Dependency]
        [i % 4]
}

fn teacher(i: usize) -> DetectorKind {
    // A fast, deterministic-friendly subset spanning assumption families.
    [DetectorKind::Hbos, DetectorKind::IForest, DetectorKind::Pca, DetectorKind::Ecod][i % 4]
}

proptest! {
    #[test]
    fn save_load_scores_are_bit_identical(
        seed in 0u64..8,
        ty in 0usize..4,
        kind in 0usize..4,
        query in prop::collection::vec(0usize..200, 1..12),
    ) {
        let data = fig5_dataset(anomaly_type(ty), seed);
        let mut cfg = UadbConfig::fast_for_tests(seed);
        cfg.t_steps = 2; // keep the property cheap; persistence is scale-free
        cfg.epochs_per_step = 2;
        let served = ServedModel::train(&data, teacher(kind), cfg).unwrap();

        let mut bytes = Vec::new();
        persist::save(&served, &mut bytes).unwrap();
        let loaded = persist::load(&bytes[..]).unwrap();

        // Same provenance and constants.
        prop_assert_eq!(loaded.meta(), served.meta());
        prop_assert_eq!(loaded.standardizer(), served.standardizer());
        prop_assert_eq!(loaded.model().calibration(), served.model().calibration());

        // Bit-identical scores on the full training batch…
        let a = served.score_rows(&data.x).unwrap();
        let b = loaded.score_rows(&data.x).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        // …and on arbitrary row subsets (out-of-order, with repeats).
        let indices: Vec<usize> = query.iter().map(|&i| i % data.n_samples()).collect();
        let q = data.x.select_rows(&indices);
        let qa = served.score_rows(&q).unwrap();
        let qb = loaded.score_rows(&q).unwrap();
        for (i, (x, y)) in qa.iter().zip(&qb).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "query row {}", i);
        }
        // Subset scores equal the corresponding full-batch scores: the
        // pipeline is row-independent end to end.
        for (pos, &row) in indices.iter().enumerate() {
            prop_assert_eq!(qa[pos].to_bits(), a[row].to_bits());
        }
    }

    #[test]
    fn double_round_trip_is_stable(seed in 0u64..4) {
        let data = fig5_dataset(AnomalyType::Clustered, seed);
        let mut cfg = UadbConfig::fast_for_tests(seed);
        cfg.t_steps = 2;
        cfg.epochs_per_step = 2;
        let served = ServedModel::train(&data, DetectorKind::Hbos, cfg).unwrap();
        let mut first = Vec::new();
        persist::save(&served, &mut first).unwrap();
        let mut second = Vec::new();
        persist::save(&persist::load(&first[..]).unwrap(), &mut second).unwrap();
        // Serialisation is canonical: identical bytes both times.
        prop_assert_eq!(first, second);
    }
}
