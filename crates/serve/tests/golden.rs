//! Golden-format tests: checked-in fixture files pin today's on-disk
//! layout, so any future format drift breaks CI here instead of
//! breaking production loads.
//!
//! The fixtures live in `tests/golden/` and were generated once by
//! running this test with `UADB_REGEN_GOLDEN=1` (only needed again on a
//! *deliberate*, version-bumped format change — regenerate, re-commit,
//! and add a legacy-load test for the previous version). The assertions
//! are pure byte-level decoding — no float math — so they hold on any
//! platform:
//!
//! 1. the loader accepts the fixture and decodes the expected fields
//!    bit-exactly (spot-checked constants below), and
//! 2. re-serialising the loaded value reproduces the fixture **byte for
//!    byte** (the format is canonical, so load∘save is the identity).

use std::path::PathBuf;
use uadb::UadbConfig;
use uadb_data::Dataset;
use uadb_detectors::DetectorKind;
use uadb_linalg::Matrix;
use uadb_serve::model::ServedModel;
use uadb_serve::persist;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The deterministic tiny model the fixtures were generated from.
fn fixture_pair() -> (ServedModel, std::sync::Arc<uadb_serve::model::TeacherModel>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..30 {
        let t = i as f64;
        let anomalous = i >= 27;
        let off = if anomalous { 7.0 } else { 0.0 };
        rows.push(vec![(t * 0.37).sin() + off, (t * 0.53).cos() * 0.5 - off]);
        labels.push(u8::from(anomalous));
    }
    let data = Dataset::new("golden", Matrix::from_rows(&rows).unwrap(), labels, "Test");
    let mut cfg = UadbConfig::fast_for_tests(42);
    cfg.t_steps = 1;
    cfg.epochs_per_step = 1;
    ServedModel::train_with_teacher(&data, DetectorKind::Hbos, cfg).unwrap()
}

#[test]
fn golden_fixtures_load_bit_exactly_and_reencode_canonically() {
    let dir = golden_dir();
    let booster_path = dir.join("booster.uadb");
    let teacher_path = dir.join("teacher.uadb");

    if std::env::var_os("UADB_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        let (served, teacher) = fixture_pair();
        persist::save_file(&served, &booster_path).unwrap();
        persist::save_teacher_file(&teacher, &teacher_path).unwrap();
        eprintln!("regenerated {} and {}", booster_path.display(), teacher_path.display());
    }

    let booster_bytes = std::fs::read(&booster_path).expect(
        "tests/golden/booster.uadb is checked in; regenerate with UADB_REGEN_GOLDEN=1 \
         only on a deliberate format change",
    );
    let teacher_bytes = std::fs::read(&teacher_path).expect("tests/golden/teacher.uadb missing");

    // Header: magic, current version, record byte.
    assert_eq!(&booster_bytes[..4], b"UADB");
    assert_eq!(
        u32::from_le_bytes(booster_bytes[4..8].try_into().unwrap()),
        persist::FORMAT_VERSION,
        "fixture predates a version bump: regenerate it AND add a legacy-load test"
    );
    assert_eq!(booster_bytes[8], persist::RECORD_BOOSTER);
    assert_eq!(&teacher_bytes[..4], b"UADB");
    assert_eq!(teacher_bytes[8], persist::RECORD_TEACHER);

    // Decode and spot-check fields (pure byte decoding, no float math).
    let served = persist::load(&booster_bytes[..]).unwrap();
    assert_eq!(served.meta().dataset, "golden");
    assert_eq!(served.meta().teacher, "HBOS");
    assert_eq!(served.meta().n_train, 30);
    assert_eq!(served.input_dim(), 2);

    let teacher = persist::load_teacher(&teacher_bytes[..]).unwrap();
    assert_eq!(teacher.kind(), DetectorKind::Hbos);
    assert_eq!(teacher.meta(), served.meta());
    assert_eq!(teacher.input_dim(), 2);
    assert_eq!(teacher.standardizer(), served.standardizer());

    // Canonical re-encode: load∘save must be the identity on both
    // records — a single drifted byte in any field fails here.
    let mut booster_again = Vec::new();
    persist::save(&served, &mut booster_again).unwrap();
    assert_eq!(booster_again, booster_bytes, "booster re-encode drifted from fixture");
    let mut teacher_again = Vec::new();
    persist::save_teacher(&teacher, &mut teacher_again).unwrap();
    assert_eq!(teacher_again, teacher_bytes, "teacher re-encode drifted from fixture");
}

/// The version-2 fixtures (checked in before the v3 baseline section
/// existed) must keep loading forever: they are the committed proof
/// that old production files survive the format bump. A v2 booster has
/// no baseline; re-saving upgrades the container to the current
/// version.
#[test]
fn golden_v2_fixtures_still_load() {
    let dir = golden_dir();
    let booster_bytes = std::fs::read(dir.join("booster_v2.uadb"))
        .expect("tests/golden/booster_v2.uadb is a frozen legacy fixture; never regenerate it");
    let teacher_bytes = std::fs::read(dir.join("teacher_v2.uadb"))
        .expect("tests/golden/teacher_v2.uadb is a frozen legacy fixture; never regenerate it");
    assert_eq!(u32::from_le_bytes(booster_bytes[4..8].try_into().unwrap()), 2);

    let served = persist::load(&booster_bytes[..]).unwrap();
    assert_eq!(served.meta().dataset, "golden");
    assert_eq!(served.meta().n_train, 30);
    assert!(served.baseline().is_none(), "v2 files carry no model-quality baseline");
    let teacher = persist::load_teacher(&teacher_bytes[..]).unwrap();
    assert_eq!(teacher.kind(), DetectorKind::Hbos);

    // Re-save upgrades to the current container version and loads back.
    let mut upgraded = Vec::new();
    persist::save(&served, &mut upgraded).unwrap();
    assert_eq!(u32::from_le_bytes(upgraded[4..8].try_into().unwrap()), persist::FORMAT_VERSION);
    let reloaded = persist::load(&upgraded[..]).unwrap();
    assert_eq!(reloaded.meta(), served.meta());
    assert!(reloaded.baseline().is_none());
}
