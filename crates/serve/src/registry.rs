//! Named model registry: N servable boosters behind one server.
//!
//! ADBench's core finding — and UADB's premise — is that no single
//! detector wins everywhere, so a production deployment holds one
//! trained booster per dataset/teacher pair. [`ModelRegistry`] maps
//! URL-safe names to [`ServedModel`]s, each with its own
//! [`ScoringPool`], and supports **hot reload**: swapping a registry
//! entry for a freshly loaded model file atomically, without dropping
//! in-flight requests (they hold an `Arc` to the pool they started on
//! and finish against the old weights; the old pool is torn down when
//! its last request completes).
//!
//! Lock discipline: the registry's `RwLock` is held only to clone or
//! swap an `Arc` — never across model loading, pool construction or
//! scoring — so a reload cannot stall concurrent requests.

use crate::model::ServedModel;
use crate::persist::{self, PersistError};
use crate::pool::{PoolConfig, ScoringPool};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use uadb_telemetry::{log::logger, Level};

/// Longest accepted model name; names route in URLs, so they stay short.
pub const MAX_NAME_LEN: usize = 64;

struct Entry {
    pool: Arc<ScoringPool>,
    /// Where the model was loaded from, when it came from a file;
    /// reload without an explicit path re-reads this.
    source: Option<PathBuf>,
    /// Where the model's teacher snapshot was loaded from, if the entry
    /// serves one; reload re-reads this alongside `source`.
    teacher_source: Option<PathBuf>,
    pool_cfg: PoolConfig,
}

/// A concurrent name → scoring-pool map with a designated default.
pub struct ModelRegistry {
    entries: RwLock<BTreeMap<String, Entry>>,
    default_name: RwLock<Option<String>>,
    /// Per-model score-request counters, kept *outside* the entries so
    /// a hot reload or teacher attach/detach (which swaps the entry)
    /// never resets a model's count.
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
}

/// Errors from registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// The name is empty, too long, or contains non-URL-safe characters.
    InvalidName(String),
    /// No model is registered under this name.
    UnknownModel(String),
    /// Reload was requested for a model that was not loaded from a file
    /// and no replacement path was given.
    NoSourcePath(String),
    /// Teacher detach was requested for a model that has no teacher
    /// snapshot attached.
    NoTeacher(String),
    /// The entry was replaced (reload, re-insert) while a teacher
    /// attach/detach was preparing its swap; the operation was
    /// abandoned rather than re-publishing stale weights. Retry.
    ConcurrentSwap(String),
    /// Loading the model file failed.
    Load(PersistError),
    /// The teacher snapshot's feature width differs from its booster's;
    /// serving the pair would fail every `?variant=teacher` request.
    TeacherMismatch {
        /// The booster's feature width.
        expected: usize,
        /// The teacher snapshot's feature width.
        got: usize,
    },
    /// The teacher snapshot holds a different detector kind than the
    /// booster was distilled from; pairing them would serve a
    /// meaningless A/B comparison.
    TeacherKindMismatch {
        /// The detector kind the booster's metadata names.
        expected: String,
        /// The snapshot's actual detector kind.
        got: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => write!(
                f,
                "invalid model name `{name}` (want 1-{MAX_NAME_LEN} chars of [A-Za-z0-9._-])"
            ),
            RegistryError::UnknownModel(name) => write!(f, "no model named `{name}`"),
            RegistryError::NoSourcePath(name) => {
                write!(f, "model `{name}` has no source file to reload from")
            }
            RegistryError::NoTeacher(name) => {
                write!(f, "model `{name}` has no teacher snapshot attached")
            }
            RegistryError::ConcurrentSwap(name) => {
                write!(f, "model `{name}` was replaced concurrently; retry the operation")
            }
            RegistryError::Load(e) => write!(f, "loading model file: {e}"),
            RegistryError::TeacherMismatch { expected, got } => {
                write!(f, "teacher snapshot has {got} features, its booster expects {expected}")
            }
            RegistryError::TeacherKindMismatch { expected, got } => {
                write!(f, "teacher snapshot is a {got}, the booster was distilled from {expected}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for RegistryError {
    fn from(e: PersistError) -> Self {
        RegistryError::Load(e)
    }
}

/// Loads a booster file and, when given, attaches its teacher snapshot.
/// The pair must actually belong together: the snapshot's detector kind
/// must be the one the booster's metadata says it was distilled from,
/// and the feature widths must agree — a teacher from an unrelated
/// model would otherwise serve a silently meaningless A/B.
fn load_pair(path: &Path, teacher: Option<&Path>) -> Result<ServedModel, RegistryError> {
    let mut model = persist::load_file(path)?;
    if let Some(tp) = teacher {
        attach_validated(&mut model, tp)?;
    }
    Ok(model)
}

/// Loads a teacher snapshot file and attaches it to `model` after the
/// shared validation: the snapshot's detector kind must be the one the
/// booster's metadata says it was distilled from, and the feature
/// widths must agree. Used by startup loading, hot reload, and the
/// runtime `POST /admin/teacher/{name}` attach alike.
fn attach_validated(model: &mut ServedModel, teacher_path: &Path) -> Result<(), RegistryError> {
    let t = persist::load_teacher_file(teacher_path)?;
    if t.kind().name() != model.meta().teacher {
        return Err(RegistryError::TeacherKindMismatch {
            expected: model.meta().teacher.clone(),
            got: t.kind().name().to_string(),
        });
    }
    let (expected, got) = (model.input_dim(), t.input_dim());
    model.attach_teacher(Arc::new(t)).map_err(|_| RegistryError::TeacherMismatch { expected, got })
}

/// Starts a fresh drift window for `name` from the model about to serve
/// under it. Every entry mutation — insert, hot reload, teacher
/// attach/detach — funnels through this, so streaming drift sketches
/// never survive a model swap: the live window always describes traffic
/// scored by the *current* weights against *their* training baseline.
fn install_drift(name: &str, model: &ServedModel) {
    let s = model.standardizer();
    crate::telemetry::metrics().install_drift(name, s.means(), s.stds(), model.baseline());
}

/// Whether `name` can route in a URL path segment: non-empty, at most
/// [`MAX_NAME_LEN`] bytes, only ASCII alphanumerics and `.`/`_`/`-`.
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry. The first inserted model becomes the default
    /// unless [`ModelRegistry::set_default`] chooses otherwise.
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(BTreeMap::new()),
            default_name: RwLock::new(None),
            counters: RwLock::new(BTreeMap::new()),
        }
    }

    fn read_entries(&self) -> RwLockReadGuard<'_, BTreeMap<String, Entry>> {
        // Lock poisoning would mean a panic while *swapping an Arc*,
        // which cannot leave the map inconsistent; serving on is safe.
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_entries(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Entry>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or replaces) a model under `name`, spinning up its
    /// scoring pool. In-memory models have no source path and cannot be
    /// reloaded without one.
    pub fn insert(
        &self,
        name: &str,
        model: Arc<ServedModel>,
        pool_cfg: PoolConfig,
    ) -> Result<(), RegistryError> {
        self.insert_entry(name, model, None, None, pool_cfg)
    }

    /// Loads a model file and registers it under `name`, remembering the
    /// path so the entry can be hot-reloaded later.
    pub fn insert_from_file(
        &self,
        name: &str,
        path: impl AsRef<Path>,
        pool_cfg: PoolConfig,
    ) -> Result<(), RegistryError> {
        self.insert_from_files(name, path, None::<&Path>, pool_cfg)
    }

    /// Loads a booster file — and, when given, its frozen teacher
    /// snapshot — and registers the pair under `name`, remembering both
    /// paths for hot reload. A teacher whose feature width differs from
    /// the booster's is rejected with [`RegistryError::TeacherMismatch`]
    /// at load time, before any pool exists to crash.
    pub fn insert_from_files(
        &self,
        name: &str,
        path: impl AsRef<Path>,
        teacher_path: Option<impl AsRef<Path>>,
        pool_cfg: PoolConfig,
    ) -> Result<(), RegistryError> {
        let path = path.as_ref();
        let teacher_path = teacher_path.map(|p| p.as_ref().to_path_buf());
        let model = Arc::new(load_pair(path, teacher_path.as_deref())?);
        self.insert_entry(name, model, Some(path.to_path_buf()), teacher_path, pool_cfg)
    }

    fn insert_entry(
        &self,
        name: &str,
        model: Arc<ServedModel>,
        source: Option<PathBuf>,
        teacher_source: Option<PathBuf>,
        pool_cfg: PoolConfig,
    ) -> Result<(), RegistryError> {
        if !is_valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        // Pool construction (thread spawning) happens outside the lock.
        let teacher = if model.teacher().is_some() { "yes" } else { "no" };
        logger().log(
            Level::Info,
            "registry",
            "model registered",
            &[("model", name), ("teacher", teacher)],
        );
        install_drift(name, &model);
        let pool = Arc::new(ScoringPool::new(model, pool_cfg.clone()));
        self.write_entries()
            .insert(name.to_string(), Entry { pool, source, teacher_source, pool_cfg });
        self.counters
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default();
        let mut default = self.default_name.write().unwrap_or_else(|e| e.into_inner());
        if default.is_none() {
            *default = Some(name.to_string());
        }
        Ok(())
    }

    /// Attaches (or replaces) a frozen teacher snapshot on a live
    /// entry, loaded from `path`, with the same kind/width validation
    /// as startup. Like [`ModelRegistry::reload`], the replacement pool
    /// is fully built before the swap: requests in flight keep their
    /// old pool, a failed load leaves the entry untouched, and the new
    /// teacher path is remembered so a later reload re-reads it.
    /// Unlike a reload, the swapped-in bundle is *derived from* the
    /// snapshotted entry, so the swap is conditional: if a concurrent
    /// reload replaced the entry in between, the attach aborts with
    /// [`RegistryError::ConcurrentSwap`] instead of silently
    /// re-publishing the pre-reload weights.
    pub fn attach_teacher(&self, name: &str, path: &Path) -> Result<(), RegistryError> {
        let (seen_pool, pool_cfg, source) = self.entry_snapshot(name)?;
        // Clone the bundle outside every lock: the original keeps
        // serving until the swap below.
        let mut new_model = (*Arc::clone(seen_pool.model())).clone();
        attach_validated(&mut new_model, path)?;
        self.swap_entry(
            name,
            &seen_pool,
            Arc::new(new_model),
            source,
            Some(path.to_path_buf()),
            pool_cfg,
        )
    }

    /// Detaches the teacher snapshot from a live entry; afterwards
    /// `?variant=teacher|both` requests 404 again. In-flight requests
    /// finish against the old pool (which still holds the teacher).
    /// Conditional on the entry not having been replaced concurrently,
    /// like [`ModelRegistry::attach_teacher`].
    pub fn detach_teacher(&self, name: &str) -> Result<(), RegistryError> {
        let (seen_pool, pool_cfg, source) = self.entry_snapshot(name)?;
        if seen_pool.model().teacher().is_none() {
            return Err(RegistryError::NoTeacher(name.to_string()));
        }
        let mut new_model = (*Arc::clone(seen_pool.model())).clone();
        new_model.detach_teacher();
        self.swap_entry(name, &seen_pool, Arc::new(new_model), source, None, pool_cfg)
    }

    /// `(pool, pool config, source path)` of a live entry; the pool
    /// `Arc` doubles as the identity witness for the conditional swap.
    fn entry_snapshot(
        &self,
        name: &str,
    ) -> Result<(Arc<ScoringPool>, PoolConfig, Option<PathBuf>), RegistryError> {
        let entries = self.read_entries();
        let entry =
            entries.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        Ok((Arc::clone(&entry.pool), entry.pool_cfg.clone(), entry.source.clone()))
    }

    /// Builds a pool for `model` outside the lock, then swaps it in —
    /// but only if the entry still holds `seen_pool`. The swapped
    /// bundle was derived from that pool's model, so if anything
    /// replaced the entry in the meantime (reload, re-insert), applying
    /// the swap would resurrect stale weights; abort instead.
    fn swap_entry(
        &self,
        name: &str,
        seen_pool: &Arc<ScoringPool>,
        model: Arc<ServedModel>,
        source: Option<PathBuf>,
        teacher_source: Option<PathBuf>,
        pool_cfg: PoolConfig,
    ) -> Result<(), RegistryError> {
        let drift_model = Arc::clone(&model);
        let pool = Arc::new(ScoringPool::new(model, pool_cfg.clone()));
        let attached = teacher_source.is_some();
        let mut entries = self.write_entries();
        match entries.get_mut(name) {
            Some(entry) if Arc::ptr_eq(&entry.pool, seen_pool) => {
                *entry = Entry { pool, source, teacher_source, pool_cfg };
                drop(entries);
                // Only after the swap actually lands: an aborted swap
                // must not reset the serving model's drift window.
                install_drift(name, &drift_model);
                let action = if attached { "teacher attached" } else { "teacher detached" };
                logger().log(Level::Info, "registry", action, &[("model", name)]);
                Ok(())
            }
            _ => Err(RegistryError::ConcurrentSwap(name.to_string())),
        }
    }

    /// Bumps the score-request counter for `name` (the HTTP router
    /// calls this per scoring request).
    pub fn count_request(&self, name: &str) {
        // Names are counted even before/after their entry exists only
        // if a counter was created by insert; unknown names are a 404
        // upstream and never reach here.
        if let Some(counter) = self.counters.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-model score-request counts since startup (survives hot
    /// reloads and teacher attach/detach), sorted by name.
    pub fn request_counts(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, counter)| (name.clone(), counter.load(Ordering::Relaxed)))
            .collect()
    }

    /// Atomically replaces `name`'s model with one freshly loaded from
    /// `path` (or, when `path` is `None`, from the entry's remembered
    /// source file). The new pool is built before the swap and the old
    /// pool's `Arc` is only released, so requests scoring against the old
    /// model finish undisturbed and a failed load leaves the entry
    /// untouched.
    pub fn reload(&self, name: &str, path: Option<&Path>) -> Result<(), RegistryError> {
        let (resolved, teacher_source, pool_cfg) = {
            let entries = self.read_entries();
            let entry =
                entries.get(name).ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
            let resolved = match path {
                Some(p) => p.to_path_buf(),
                None => entry
                    .source
                    .clone()
                    .ok_or_else(|| RegistryError::NoSourcePath(name.to_string()))?,
            };
            (resolved, entry.teacher_source.clone(), entry.pool_cfg.clone())
        };
        // Load and spin up the replacement outside any lock; a teacher
        // snapshot, when the entry serves one, is re-read alongside.
        let model = Arc::new(load_pair(&resolved, teacher_source.as_deref())?);
        let drift_model = Arc::clone(&model);
        let pool = Arc::new(ScoringPool::new(model, pool_cfg.clone()));
        let mut entries = self.write_entries();
        match entries.get_mut(name) {
            // The entry may have been replaced concurrently; last write
            // wins, exactly as two concurrent reloads would.
            Some(entry) => {
                entry.pool = pool;
                entry.source = Some(resolved);
                entry.teacher_source = teacher_source;
                entry.pool_cfg = pool_cfg;
            }
            None => {
                entries.insert(
                    name.to_string(),
                    Entry { pool, source: Some(resolved), teacher_source, pool_cfg },
                );
            }
        }
        drop(entries);
        install_drift(name, &drift_model);
        logger().log(Level::Info, "registry", "model reloaded", &[("model", name)]);
        Ok(())
    }

    /// Marks an existing model as the one bare `/score` routes to.
    pub fn set_default(&self, name: &str) -> Result<(), RegistryError> {
        if !self.read_entries().contains_key(name) {
            return Err(RegistryError::UnknownModel(name.to_string()));
        }
        *self.default_name.write().unwrap_or_else(|e| e.into_inner()) = Some(name.to_string());
        Ok(())
    }

    /// Name of the default model, if any model is registered.
    pub fn default_name(&self) -> Option<String> {
        self.default_name.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The scoring pool registered under `name`. The returned `Arc` pins
    /// the pool (and its model) for the caller's lifetime even if the
    /// entry is hot-swapped mid-request.
    pub fn get(&self, name: &str) -> Option<Arc<ScoringPool>> {
        self.read_entries().get(name).map(|e| Arc::clone(&e.pool))
    }

    /// The default model's scoring pool.
    pub fn default_pool(&self) -> Option<Arc<ScoringPool>> {
        let name = self.default_name()?;
        self.get(&name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.read_entries().keys().cloned().collect()
    }

    /// The source file `name` was loaded from, if it came from disk.
    pub fn source(&self, name: &str) -> Option<PathBuf> {
        self.read_entries().get(name).and_then(|e| e.source.clone())
    }

    /// The teacher-snapshot file `name`'s teacher was loaded from, if
    /// the entry serves one.
    pub fn teacher_source(&self, name: &str) -> Option<PathBuf> {
        self.read_entries().get(name).and_then(|e| e.teacher_source.clone())
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::tiny_model;

    #[test]
    fn name_validation() {
        for good in ["a", "iforest-39_thyroid", "v2.1", "A-Z_0.9"] {
            assert!(is_valid_name(good), "{good} should be valid");
        }
        let long = "x".repeat(MAX_NAME_LEN + 1);
        for bad in ["", "a/b", "a b", "ü", "..%2f", long.as_str()] {
            assert!(!is_valid_name(bad), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn first_insert_becomes_default_and_routing_works() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.default_pool().is_none());
        reg.insert("alpha", Arc::new(tiny_model(31)), PoolConfig::default()).unwrap();
        reg.insert("beta", Arc::new(tiny_model(32)), PoolConfig::default()).unwrap();
        assert_eq!(reg.default_name().as_deref(), Some("alpha"));
        assert_eq!(reg.names(), vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(reg.len(), 2);
        assert!(reg.get("beta").is_some());
        assert!(reg.get("gamma").is_none());
        reg.set_default("beta").unwrap();
        assert_eq!(reg.default_name().as_deref(), Some("beta"));
        assert!(matches!(reg.set_default("gamma"), Err(RegistryError::UnknownModel(_))));
        assert!(matches!(
            reg.insert("bad/name", Arc::new(tiny_model(33)), PoolConfig::default()),
            Err(RegistryError::InvalidName(_))
        ));
    }

    #[test]
    fn reload_swaps_without_invalidating_held_pools() {
        let dir = std::env::temp_dir().join(format!("uadb_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.uadb");
        let first = tiny_model(34);
        crate::persist::save_file(&first, &path).unwrap();

        let reg = ModelRegistry::new();
        reg.insert_from_file("m", &path, PoolConfig { workers: 1, shard_rows: 64 }).unwrap();
        let held = reg.get("m").unwrap();
        let first_cal = first.model().calibration();

        // Overwrite the file with a different model and hot-reload.
        let second = tiny_model(35);
        let second_cal = second.model().calibration();
        assert_ne!(first_cal, second_cal, "seeds must produce distinguishable models");
        crate::persist::save_file(&second, &path).unwrap();
        reg.reload("m", None).unwrap();

        // The held Arc still scores against the *old* weights…
        assert_eq!(held.model().model().calibration(), first_cal);
        // …while new lookups see the new model.
        let fresh = reg.get("m").unwrap();
        assert_eq!(fresh.model().model().calibration(), second_cal);
        assert!(!Arc::ptr_eq(&held, &fresh));

        // Reload failure leaves the entry untouched.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(reg.reload("m", None), Err(RegistryError::Load(_))));
        assert!(Arc::ptr_eq(&reg.get("m").unwrap(), &fresh));

        assert!(matches!(reg.reload("nope", None), Err(RegistryError::UnknownModel(_))));
        let mem = ModelRegistry::new();
        mem.insert("ram", Arc::new(tiny_model(36)), PoolConfig::default()).unwrap();
        assert!(matches!(mem.reload("ram", None), Err(RegistryError::NoSourcePath(_))));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
