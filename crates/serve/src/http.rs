//! HTTP/1.1 scoring server with persistent connections, multi-model
//! routing, and pluggable I/O backends.
//!
//! Endpoints:
//!
//! * `POST /score` — score against the registry's default model; body
//!   `{"rows": [[f64, …], …]}`, response `{"scores": [f64, …], "n": k}`.
//!   Scores go through the model's shared [`ScoringPool`], so they match
//!   in-process [`crate::model::ServedModel::score_rows`] bit for bit.
//!   With `Content-Type: application/x-uadb-rows` the body is instead
//!   the length-prefixed binary row payload ([`wire`]): a 16-byte
//!   header (magic `UROW`, version, dtype f32/f64, row/col counts) and
//!   row-major little-endian floats, decoded straight into one
//!   row-major matrix — no per-row allocation, no decimal text. The
//!   response is then raw little-endian scores in the request's dtype
//!   (`application/x-uadb-scores`); errors stay JSON.
//! * `POST /score/{name}` — same, against a named model (404 unknown).
//!   `?variant=booster|teacher|both` picks the scoring side when the
//!   model carries a frozen teacher snapshot: `teacher` scores the
//!   fitted source detector, `both` returns paired
//!   `{"booster": […], "teacher": […]}` scores for the same rows in one
//!   response (online A/B). Requesting the teacher on a booster-only
//!   model is a 404.
//! * `GET /model` / `GET /model/{name}` — model metadata, including
//!   which variants are loaded.
//! * `GET /models` — names, default, and per-model metadata.
//! * `POST /admin/reload/{name}` — hot-swap a model from its source file
//!   (or from `{"path": "..."}` in the body) without dropping in-flight
//!   connections.
//! * `POST /admin/teacher/{name}` — attach (or replace) a frozen
//!   teacher snapshot at runtime from `{"path": "..."}`; the same
//!   kind/width validation as startup applies before any pool swaps.
//! * `DELETE /admin/teacher/{name}` — detach the teacher again.
//! * `GET /healthz` — liveness plus live serving stats: backend name,
//!   open connections vs. budget, per-model score-request counters.
//!
//! # Architecture: sans-io core, pluggable connection drivers
//!
//! Request parsing ([`parse_request`]) and response serialization
//! ([`Response::serialize_into`]) are pure functions over byte buffers
//! — no sockets, no blocking, no timeouts. Routing ([`route`]) maps a
//! parsed request to either a finished [`Response`] or a [`ScoreTask`]
//! that can run blocking (thread-per-connection backend) or be
//! submitted to the scoring pool with a completion callback (epoll
//! reactor). Everything socket-shaped lives in a [`ConnectionDriver`]:
//!
//! * [`IoMode::Threads`] — one handler thread per connection, blocking
//!   reads with idle/io timeouts. Portable; the non-Linux default.
//! * [`IoMode::Epoll`] — `crate::reactor`: N independent edge-triggered
//!   epoll shard loops (`ServerConfig::shards`, Linux only, the Linux
//!   default), each owning its accepted sockets, slab, timer wheel and
//!   wakeup pipe. With `SO_REUSEPORT` every shard gets its own
//!   listener on the shared address and the kernel load-balances
//!   accepts; without it, shard 0 accepts and hands connections off
//!   round-robin over the other shards' wake pipes. Connection budgets
//!   are no longer bounded by how many threads the host tolerates.
//!
//! Both drivers share the parser, the router, the serializer, the
//! connection budget and the keep-alive/idle/max-requests semantics, so
//! their responses are byte-identical — the invariant the integration
//! suite pins by running against both.
//!
//! Connection model: HTTP/1.1 keep-alive semantics — `Connection:
//! close` / `keep-alive` honoured per protocol version, a cap on
//! requests per connection, and an idle timeout between requests.
//! Pipelined requests are answered in order, with every response of a
//! readable burst serialized into one write buffer and flushed at once.
//! The number of concurrent connections is bounded
//! ([`ServerConfig::max_connections`]); over-budget clients get an
//! immediate `503` with `Connection: close`. Request heads and bodies
//! are size-capped before any allocation happens, and the CPU-heavy
//! scoring itself runs on each model's fixed worker pool, so the I/O
//! layer stays I/O-bound.

use crate::json::{self, Value};
use crate::model::{ScoreError, ServedModel, Variant};
use crate::pool::{PoolConfig, ScoreTiming, ScoringPool};
use crate::registry::{ModelRegistry, RegistryError};
use crate::telemetry::{
    metrics, DriftReport, ModelDrift, ModelStats, RejectReason, RequestTimer, Stage, VariantTag,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use uadb_linalg::Matrix;
use uadb_telemetry::{log::logger, now_ns, Level};

/// Upper bound on request head (request line + headers).
pub(crate) const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on request body.
pub(crate) const MAX_BODY: usize = 64 * 1024 * 1024;
/// Consecutive accept failures tolerated before the listener is declared
/// dead and the driver returns the error.
pub(crate) const MAX_ACCEPT_FAILURES: u32 = 100;

/// Which I/O backend drives client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// One blocking handler thread per connection (portable).
    Threads,
    /// Single-threaded epoll readiness loop (Linux only).
    Epoll,
}

impl IoMode {
    /// The default backend for this host: epoll on Linux, threads
    /// elsewhere.
    pub fn default_for_host() -> Self {
        if cfg!(target_os = "linux") {
            IoMode::Epoll
        } else {
            IoMode::Threads
        }
    }

    /// Parses a `--io` flag value.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(IoMode::Threads),
            "epoll" => Some(IoMode::Epoll),
            _ => None,
        }
    }

    /// The flag/metrics name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            IoMode::Threads => "threads",
            IoMode::Epoll => "epoll",
        }
    }

    /// Instantiates the backend, or errors on hosts that lack it.
    fn driver(self) -> io::Result<Box<dyn ConnectionDriver>> {
        match self {
            IoMode::Threads => Ok(Box::new(ThreadedDriver)),
            #[cfg(target_os = "linux")]
            IoMode::Epoll => Ok(Box::new(crate::reactor::EpollDriver)),
            #[cfg(not(target_os = "linux"))]
            IoMode::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the epoll backend requires Linux; use --io threads",
            )),
        }
    }
}

/// Connection-layer tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent connections; further clients get `503` +
    /// `Connection: close` until a slot frees up.
    pub max_connections: usize,
    /// Requests served on one connection before the server closes it
    /// (defends against a single client pinning a handler forever).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Read/write timeout *within* a request (headers, body, response):
    /// a stalled or silent client frees its resources instead of
    /// pinning them.
    pub io_timeout: Duration,
    /// Which I/O backend drives connections.
    pub io: IoMode,
    /// Epoll reactor shards: independent event loops, each with its own
    /// epoll instance, accept path (`SO_REUSEPORT` when available) and
    /// timer wheel, all sharing the connection budget and scoring
    /// pools. `0`/`1` means one loop (the pre-shard behaviour); the
    /// threaded backend ignores the field. The CLI defaults this to
    /// `min(cores, workers)`.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
            io: IoMode::default_for_host(),
            shards: 1,
        }
    }
}

/// Cooperative stop flag with backend-registered wakers — the threaded
/// backend polls the flag per request, each epoll reactor shard
/// registers a closure that writes its own wakeup pipe so a shutdown
/// interrupts every shard's `epoll_wait` immediately.
pub struct StopSignal {
    flag: AtomicBool,
    wakers: Mutex<Vec<Box<dyn Fn() + Send>>>,
}

impl Default for StopSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl StopSignal {
    /// A fresh, un-triggered signal.
    pub fn new() -> Self {
        Self { flag: AtomicBool::new(false), wakers: Mutex::new(Vec::new()) }
    }

    /// Whether the server should wind down.
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown and pokes every registered waker.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        for waker in &*self.wakers.lock().unwrap_or_else(|e| e.into_inner()) {
            waker();
        }
    }

    /// Registers a closure `trigger` calls to interrupt a blocked
    /// backend (e.g. writing a reactor shard's wakeup pipe). Every
    /// registered waker fires; shards each register their own.
    pub fn add_waker(&self, waker: Box<dyn Fn() + Send>) {
        self.wakers.lock().unwrap_or_else(|e| e.into_inner()).push(waker);
    }
}

/// Live serving counters shared between the driver (which maintains
/// them) and the router (which reports them on `GET /healthz`).
pub struct ServerStats {
    backend: &'static str,
    max_connections: usize,
    shards: usize,
    open: AtomicUsize,
}

impl ServerStats {
    fn new(backend: &'static str, max_connections: usize, shards: usize) -> Self {
        Self { backend, max_connections, shards, open: AtomicUsize::new(0) }
    }

    /// The active backend's name (`"threads"` / `"epoll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Reactor shard count (1 on the threaded backend).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Currently open client connections.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// The configured connection budget.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Claims a connection slot; the driver calls this on accept.
    pub(crate) fn conn_opened(&self) {
        self.open.fetch_add(1, Ordering::SeqCst);
        let m = metrics();
        m.connections_opened.inc();
        m.open_connections.inc();
    }

    /// Releases a connection slot; the driver calls this on close.
    pub(crate) fn conn_closed(&self) {
        self.open.fetch_sub(1, Ordering::SeqCst);
        let m = metrics();
        m.connections_closed.inc();
        m.open_connections.dec();
    }
}

/// Everything a connection driver needs to serve: the routing registry,
/// tuning, shared stats, and the stop signal.
pub struct DriverCtx {
    /// Models to route over.
    pub registry: Arc<ModelRegistry>,
    /// Connection-layer tuning.
    pub cfg: ServerConfig,
    /// Live counters, reported by `GET /healthz`.
    pub stats: Arc<ServerStats>,
    /// Cooperative shutdown.
    pub stop: Arc<StopSignal>,
}

/// A connection I/O backend: owns the accept loop and every client
/// socket, feeding bytes through the shared sans-io parser/router and
/// writing the serialized responses back out. Implementations must
/// honour the budget, keep-alive, idle-timeout and max-requests
/// semantics of [`ServerConfig`] identically — the integration suite
/// runs against every backend and expects byte-identical responses.
pub trait ConnectionDriver: Send {
    /// Backend name (matches [`IoMode::name`]).
    fn name(&self) -> &'static str;

    /// Serves until the stop signal triggers or the listener dies.
    /// `listeners` is never empty; the epoll backend may receive one
    /// listener per shard (an `SO_REUSEPORT` group bound to the same
    /// address), the threaded backend only ever uses the first.
    fn run(&self, listeners: Vec<TcpListener>, ctx: DriverCtx) -> io::Result<()>;
}

/// A bound scoring server (not yet accepting). `listeners[0]` is the
/// primary socket; extra listeners (one per additional reactor shard)
/// exist only when the whole group could be bound with `SO_REUSEPORT`.
pub struct Server {
    listeners: Vec<TcpListener>,
    registry: Arc<ModelRegistry>,
    cfg: ServerConfig,
}

/// Handle to a server running on a background thread (used by the CLI's
/// foreground mode indirectly and by tests directly).
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    stop: Arc<StopSignal>,
    stats: Arc<ServerStats>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener(s) over a model registry.
    ///
    /// A multi-shard epoll config tries to bind one `SO_REUSEPORT`
    /// listener per shard so the kernel load-balances accepts across
    /// the shard loops. Every socket in the group — including the
    /// first — must set the option *before* bind, which is why the
    /// primary goes through the raw-socket helper too. If the option
    /// is unavailable (or any bind in the group fails), serving falls
    /// back to a single listener; shard 0 then hands accepted
    /// connections off round-robin.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        // Fail at bind time, not at run time, when the configured
        // backend does not exist on this host.
        cfg.io.driver()?;
        let mut listeners = Vec::new();
        #[cfg(target_os = "linux")]
        if cfg.io == IoMode::Epoll
            && cfg.shards > 1
            && std::env::var_os("UADB_SERVE_NO_REUSEPORT").is_none()
        {
            listeners = bind_reuseport_group(&addr, cfg.shards);
        }
        if listeners.is_empty() {
            listeners.push(TcpListener::bind(addr)?);
        }
        Ok(Server { listeners, registry, cfg })
    }

    /// Convenience: binds a single-model server, registering `model`
    /// under the name `"default"` with its own scoring pool.
    pub fn bind_single(
        addr: impl ToSocketAddrs,
        model: Arc<ServedModel>,
        pool_cfg: PoolConfig,
    ) -> io::Result<Server> {
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("default", model, pool_cfg).expect("\"default\" is a valid registry name");
        Self::bind(addr, registry, ServerConfig::default())
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listeners[0].local_addr()
    }

    /// The registry this server routes over.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    fn parts(self) -> io::Result<(Vec<TcpListener>, Box<dyn ConnectionDriver>, DriverCtx)> {
        let driver = self.cfg.io.driver()?;
        let shards = if self.cfg.io == IoMode::Epoll { self.cfg.shards.max(1) } else { 1 };
        let stats = Arc::new(ServerStats::new(driver.name(), self.cfg.max_connections, shards));
        let ctx = DriverCtx {
            registry: self.registry,
            cfg: self.cfg,
            stats,
            stop: Arc::new(StopSignal::new()),
        };
        Ok((self.listeners, driver, ctx))
    }

    /// Accepts connections forever on the calling thread.
    pub fn run(self) -> io::Result<()> {
        let (listeners, driver, ctx) = self.parts()?;
        driver.run(listeners, ctx)
    }

    /// Runs the configured backend on a background thread and returns a
    /// handle that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let (listeners, driver, ctx) = self.parts()?;
        let registry = Arc::clone(&ctx.registry);
        let stop = Arc::clone(&ctx.stop);
        let stats = Arc::clone(&ctx.stats);
        let thread =
            std::thread::Builder::new().name("uadb-serve-io".to_string()).spawn(move || {
                if let Err(e) = driver.run(listeners, ctx) {
                    let err = e.to_string();
                    logger().log(Level::Error, "http", "I/O driver failed", &[("error", &err)]);
                }
            })?;
        Ok(ServerHandle { addr, registry, stop, stats, thread: Some(thread) })
    }
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the running server routes over (hot reload, tests).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live serving counters (what `GET /healthz` reports).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Stops the backend and joins the server thread. The threaded
    /// backend answers at most one more request per connection with
    /// `Connection: close`; the reactor tears down on its next wakeup.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.trigger();
        // Unblock a backend stuck in accept/epoll_wait. Connecting to
        // the *bound* address would hang forever for 0.0.0.0/::
        // (unspecified addresses are not routable connect targets on
        // every platform), so aim at the loopback of the same family
        // and port instead.
        let _ = TcpStream::connect_timeout(&unblock_addr(self.addr), Duration::from_secs(1));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The address used to wake up the backend during shutdown: the bound
/// address, with an unspecified IP (`0.0.0.0` / `::`) replaced by the
/// loopback of the same family.
fn unblock_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(v4) if v4.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(v6) if v6.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `shards` `SO_REUSEPORT` listeners to one address, or an empty
/// vec if the group cannot be completed (caller falls back to a single
/// std listener + round-robin handoff). All-or-nothing: a partial group
/// would silently skew the kernel's accept distribution.
#[cfg(target_os = "linux")]
fn bind_reuseport_group(addr: &impl ToSocketAddrs, shards: usize) -> Vec<TcpListener> {
    let Ok(addrs) = addr.to_socket_addrs() else { return Vec::new() };
    for candidate in addrs {
        let Ok(primary) = crate::reactor::bind_reuseport(candidate) else { continue };
        // Port 0 resolved at the first bind; the rest of the group
        // must join the *concrete* port.
        let Ok(concrete) = primary.local_addr() else { continue };
        let mut group = vec![primary];
        for _ in 1..shards {
            match crate::reactor::bind_reuseport(concrete) {
                Ok(l) => group.push(l),
                Err(_) => return Vec::new(),
            }
        }
        return group;
    }
    Vec::new()
}

// ======================== sans-io wire layer ==========================

/// A fully parsed request.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) body: Vec<u8>,
    /// The request's `Content-Type` header, verbatim (selects the
    /// binary scoring payload on the score endpoints).
    pub(crate) content_type: Option<String>,
    /// Whether the *client* allows the connection to stay open
    /// (HTTP/1.1 without `Connection: close`, or HTTP/1.0 with an
    /// explicit `Connection: keep-alive`).
    pub(crate) keep_alive: bool,
}

/// A response ready to serialize. The body is raw bytes so binary
/// score payloads and JSON documents share one serialization path.
pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) reason: &'static str,
    pub(crate) content_type: &'static str,
    pub(crate) body: Vec<u8>,
}

/// Response bodies up to this size are copied into the write buffer's
/// current chunk; larger bodies are queued as their own chunk (moved,
/// not copied) for the reactor's vectored flush.
pub(crate) const INLINE_BODY_MAX: usize = 4096;

impl Response {
    pub(crate) fn json(status: u16, reason: &'static str, value: &Value) -> Self {
        Self {
            status,
            reason,
            content_type: "application/json",
            body: json::to_string(value).into_bytes(),
        }
    }

    /// A non-JSON text response (the Prometheus exposition on
    /// `/metrics`).
    pub(crate) fn text(
        status: u16,
        reason: &'static str,
        content_type: &'static str,
        body: String,
    ) -> Self {
        Self { status, reason, content_type, body: body.into_bytes() }
    }

    /// A raw binary score payload ([`wire`] encoding).
    pub(crate) fn binary(body: Vec<u8>) -> Self {
        Self { status: 200, reason: "OK", content_type: wire::CONTENT_TYPE_SCORES, body }
    }

    pub(crate) fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self::json(status, reason, &json::object([("error", Value::String(message.to_string()))]))
    }

    fn head(&self, close: bool) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        )
    }

    /// Appends the serialized response (status line, headers, body) to
    /// `out` — pure buffer work, shared by every backend. Appending
    /// rather than overwriting is what lets a pipelined burst batch all
    /// its responses into one flush.
    pub(crate) fn serialize_into(&self, out: &mut Vec<u8>, close: bool) {
        out.extend_from_slice(self.head(close).as_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Queues the response onto a chunked write buffer (the reactor's
    /// vectored-flush path). Small bodies are appended to the current
    /// chunk so a pipelined burst of cheap responses stays one iovec;
    /// a large body (big binary/JSON score payloads) is *moved* in as
    /// its own chunk — zero copies between serialization and `writev`.
    pub(crate) fn queue_into(self, out: &mut std::collections::VecDeque<Vec<u8>>, close: bool) {
        let head = self.head(close);
        if out.back().is_none() {
            out.push_back(Vec::with_capacity(head.len() + self.body.len().min(INLINE_BODY_MAX)));
        }
        let back = out.back_mut().expect("pushed above");
        back.extend_from_slice(head.as_bytes());
        if self.body.len() <= INLINE_BODY_MAX {
            back.extend_from_slice(&self.body);
        } else {
            out.push_back(self.body);
        }
    }
}

/// The length-prefixed binary scoring payload, negotiated with
/// `Content-Type: application/x-uadb-rows`.
///
/// Request body layout (all integers little-endian):
///
/// ```text
/// offset  size  field
/// 0       4     magic  b"UROW"
/// 4       1     version (1)
/// 5       1     dtype   (1 = f32, 2 = f64)
/// 6       2     reserved (must be 0)
/// 8       4     n_rows  u32
/// 12      4     n_cols  u32
/// 16      …     n_rows × n_cols row-major little-endian floats
/// ```
///
/// The response is headerless: `n_rows` raw little-endian floats in
/// the request's dtype (for `variant=both`, the booster stream then
/// the teacher stream, `2 × n_rows` floats), with `Content-Type:
/// application/x-uadb-scores`. Errors are regular JSON responses.
pub(crate) mod wire {
    use uadb_linalg::Matrix;

    pub(crate) const MAGIC: [u8; 4] = *b"UROW";
    pub(crate) const VERSION: u8 = 1;
    pub(crate) const HEADER_LEN: usize = 16;
    pub(crate) const CONTENT_TYPE_ROWS: &str = "application/x-uadb-rows";
    pub(crate) const CONTENT_TYPE_SCORES: &str = "application/x-uadb-scores";

    /// Element type of the rows in a binary payload; the response
    /// mirrors the request's choice.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Dtype {
        F32,
        F64,
    }

    impl Dtype {
        pub(crate) fn from_code(code: u8) -> Option<Self> {
            match code {
                1 => Some(Dtype::F32),
                2 => Some(Dtype::F64),
                _ => None,
            }
        }

        fn width(self) -> usize {
            match self {
                Dtype::F32 => 4,
                Dtype::F64 => 8,
            }
        }
    }

    /// Whether a `Content-Type` header value selects the binary rows
    /// payload (parameters after `;` are ignored, match is
    /// case-insensitive per RFC 9110).
    pub(crate) fn is_binary_content_type(value: &str) -> bool {
        value.split(';').next().unwrap_or("").trim().eq_ignore_ascii_case(CONTENT_TYPE_ROWS)
    }

    /// Decodes a binary rows payload into a row-major [`Matrix`].
    /// Every framing defect — truncated header, truncated or oversized
    /// row payload, declared size past the body cap, bad magic /
    /// version / dtype — is a `400`-shaped error string, never a
    /// panic. The floats land in one row-major `Vec<f64>` feeding
    /// `Matrix::from_vec`: no per-row allocation.
    pub(crate) fn decode_rows(body: &[u8], max_body: usize) -> Result<(Matrix, Dtype), String> {
        if body.len() < HEADER_LEN {
            return Err(format!(
                "truncated binary header: {} bytes, need {HEADER_LEN}",
                body.len()
            ));
        }
        if body[0..4] != MAGIC {
            return Err("bad magic: binary rows payload must start with `UROW`".to_string());
        }
        if body[4] != VERSION {
            return Err(format!("unsupported binary payload version {} (want {VERSION})", body[4]));
        }
        let Some(dtype) = Dtype::from_code(body[5]) else {
            return Err(format!("unknown dtype code {} (1 = f32, 2 = f64)", body[5]));
        };
        if body[6] != 0 || body[7] != 0 {
            return Err("reserved header bytes must be zero".to_string());
        }
        let n_rows = u32::from_le_bytes([body[8], body[9], body[10], body[11]]) as usize;
        let n_cols = u32::from_le_bytes([body[12], body[13], body[14], body[15]]) as usize;
        if n_rows > 0 && n_cols == 0 {
            return Err("rows declared with zero columns".to_string());
        }
        let cells = n_rows
            .checked_mul(n_cols)
            .and_then(|c| c.checked_mul(dtype.width()))
            .ok_or_else(|| "declared row payload size overflows".to_string())?;
        if cells > max_body {
            return Err(format!("declared row payload of {cells} bytes exceeds {max_body}"));
        }
        let payload = &body[HEADER_LEN..];
        if payload.len() < cells {
            return Err(format!(
                "truncated row payload: {} bytes, header declares {cells}",
                payload.len()
            ));
        }
        if payload.len() > cells {
            return Err(format!(
                "{} trailing bytes after the declared row payload",
                payload.len() - cells
            ));
        }
        if n_rows == 0 {
            return Ok((Matrix::zeros(0, 0), dtype));
        }
        let mut data = Vec::with_capacity(n_rows * n_cols);
        match dtype {
            Dtype::F32 => {
                for c in payload.chunks_exact(4) {
                    data.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64);
                }
            }
            Dtype::F64 => {
                for c in payload.chunks_exact(8) {
                    data.push(f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]));
                }
            }
        }
        let matrix = Matrix::from_vec(n_rows, n_cols, data).map_err(|e| e.to_string())?;
        Ok((matrix, dtype))
    }

    /// Encodes score streams as raw little-endian floats in the
    /// request's dtype. `variant=both` passes `[booster, teacher]`;
    /// the streams concatenate in that order.
    pub(crate) fn encode_scores(dtype: Dtype, streams: &[&[f64]]) -> Vec<u8> {
        let n: usize = streams.iter().map(|s| s.len()).sum();
        let mut out = Vec::with_capacity(n * dtype.width());
        for stream in streams {
            for &x in *stream {
                match dtype {
                    Dtype::F32 => out.extend_from_slice(&(x as f32).to_le_bytes()),
                    Dtype::F64 => out.extend_from_slice(&x.to_le_bytes()),
                }
            }
        }
        out
    }
}

/// Outcome of attempting to parse one request off the front of a
/// buffer.
pub(crate) enum Parse {
    /// The buffer does not yet hold a complete request; read more.
    /// `head_complete` reports whether the header block has fully
    /// arrived (the remaining wait is body bytes) — what lets the
    /// connection layers split read latency into head-read vs.
    /// body-read stages without re-scanning the buffer.
    Partial {
        /// The header block is complete; only body bytes are missing.
        head_complete: bool,
    },
    /// One complete request, consuming the first `consumed` bytes.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer the request occupied.
        consumed: usize,
    },
    /// Malformed request (answer `400`, then close).
    Bad(String),
    /// Well-formed but unimplemented framing, e.g. `Transfer-Encoding:
    /// chunked` (answer `501`, then close).
    Unsupported(String),
}

/// Incremental HTTP/1.1 request parser over a plain byte buffer — no
/// sockets, no blocking. Call with everything unconsumed; on
/// [`Parse::Complete`] drop `consumed` bytes and call again for the
/// next pipelined request. Lines are `\n`-terminated with an optional
/// `\r` (same tolerance as the historical reader-based parser); the
/// head is capped at [`MAX_HEAD`], bodies at [`MAX_BODY`], both checked
/// before any body allocation happens.
pub(crate) fn parse_request(buf: &[u8]) -> Parse {
    // Locate the end of the head: the first empty line.
    let mut line_start = 0usize;
    let mut head_end = None;
    while let Some(rel) = buf[line_start..].iter().position(|&b| b == b'\n') {
        let nl = line_start + rel;
        let line = trim_cr(&buf[line_start..nl]);
        if line.is_empty() {
            if line_start == 0 {
                return Parse::Bad("empty request line".into());
            }
            head_end = Some(nl + 1);
            break;
        }
        line_start = nl + 1;
        if line_start > MAX_HEAD {
            return Parse::Bad("request head too large".into());
        }
    }
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD {
            return Parse::Bad("request head too large".into());
        }
        return Parse::Partial { head_complete: false };
    };
    if head_end > MAX_HEAD {
        return Parse::Bad("request head too large".into());
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Parse::Bad("request head is not valid UTF-8".into()),
    };

    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let Some(method) = parts.next() else {
        return Parse::Bad("empty request line".into());
    };
    let Some(path) = parts.next() else {
        return Parse::Bad("missing request path".into());
    };
    let Some(version) = parts.next() else {
        return Parse::Bad("missing HTTP version".into());
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Parse::Bad(format!("unsupported protocol {other}")),
    };

    let mut content_length: Option<usize> = None;
    let mut content_type: Option<String> = None;
    let mut connection_close = false;
    let mut connection_keep_alive = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.3: duplicate or conflicting Content-Length
            // headers are a framing attack vector (request smuggling);
            // reject them outright rather than picking one.
            let parsed: usize = match value.parse() {
                Ok(v) => v,
                Err(_) => return Parse::Bad(format!("invalid Content-Length `{value}`")),
            };
            if content_length.is_some() {
                return Parse::Bad("duplicate Content-Length header".into());
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // We never advertise chunked support; a body we cannot
            // frame must be refused, not silently read as length 0.
            return Parse::Unsupported(format!(
                "Transfer-Encoding `{value}` is not supported; send a Content-Length body"
            ));
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    connection_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    connection_keep_alive = true;
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Parse::Bad(format!("body exceeds {MAX_BODY} bytes"));
    }
    // Only the bytes that actually arrived are ever held: a client
    // declaring 64MB and then stalling grows nothing here.
    let total = head_end + content_length;
    if buf.len() < total {
        return Parse::Partial { head_complete: true };
    }
    let keep_alive =
        if http11 { !connection_close } else { connection_keep_alive && !connection_close };
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        body: buf[head_end..total].to_vec(),
        content_type,
        keep_alive,
    };
    Parse::Complete { request, consumed: total }
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((b'\r', rest)) => rest,
        _ => line,
    }
}

// ====================== threaded connection driver ====================

/// The classic thread-per-connection backend: blocking reads with
/// idle/io socket timeouts, one handler thread per client.
pub(crate) struct ThreadedDriver;

impl ConnectionDriver for ThreadedDriver {
    fn name(&self) -> &'static str {
        IoMode::Threads.name()
    }

    fn run(&self, listeners: Vec<TcpListener>, ctx: DriverCtx) -> io::Result<()> {
        // The threaded backend never shards accepts: one blocking
        // listener. Extra listeners are only ever created for epoll.
        let Some(listener) = listeners.into_iter().next() else {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no listener"));
        };
        let ctx = Arc::new(ctx);
        let mut consecutive_failures = 0u32;
        for conn in listener.incoming() {
            if ctx.stop.is_stopped() {
                break;
            }
            match conn {
                Ok(stream) => {
                    consecutive_failures = 0;
                    // Connection budget: never spawn more handler
                    // threads than configured. Over-budget clients get
                    // a fast, best-effort 503 on the accept thread
                    // (bounded by a short write timeout) rather than a
                    // silent reset.
                    if ctx.stats.open_connections() >= ctx.cfg.max_connections {
                        reject_over_budget(stream);
                        continue;
                    }
                    let guard = ConnGuard::enter(&ctx.stats);
                    let conn_ctx = Arc::clone(&ctx);
                    let spawned = std::thread::Builder::new()
                        .name("uadb-serve-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            handle_connection(stream, &conn_ctx);
                        });
                    // A failed spawn drops the guard, releasing the slot.
                    if let Err(e) = spawned {
                        let err = e.to_string();
                        logger().log(
                            Level::Error,
                            "http",
                            "spawning connection handler failed",
                            &[("error", &err)],
                        );
                    }
                }
                Err(e) => {
                    // Transient accept errors (aborted handshake, EMFILE
                    // under fd pressure) shed the connection and keep
                    // serving; the backoff keeps an exhaustion burst from
                    // spinning this loop hot. A long unbroken run of
                    // failures means the listener itself is dead — exit
                    // with the error so a supervisor can restart us.
                    consecutive_failures += 1;
                    if consecutive_failures >= MAX_ACCEPT_FAILURES {
                        return Err(e);
                    }
                    let err = e.to_string();
                    logger().log(Level::Warn, "http", "accept failed", &[("error", &err)]);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }
}

/// RAII slot in the connection budget.
struct ConnGuard {
    stats: Arc<ServerStats>,
}

impl ConnGuard {
    fn enter(stats: &Arc<ServerStats>) -> Self {
        stats.conn_opened();
        Self { stats: Arc::clone(stats) }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.stats.conn_closed();
    }
}

pub(crate) fn reject_over_budget(stream: TcpStream) {
    // This runs inline on the accept thread, so it must not block on a
    // hostile peer at all: ONE nonblocking read drains a typical
    // already-arrived request so the close after the 503 sends a clean
    // FIN (dropping a socket with unread input raises an RST that can
    // race ahead of the response), and the ~130-byte 503 always fits a
    // fresh socket's send buffer. A client still streaming gets its
    // RST after all. If the socket cannot even be made nonblocking,
    // just drop it.
    let mut stream = stream;
    if stream.set_nonblocking(true).is_ok() {
        let mut scratch = [0u8; 16 * 1024];
        let _ = stream.read(&mut scratch);
        let mut out = Vec::new();
        over_budget_response().serialize_into(&mut out, true);
        let _ = stream.write(&out);
    }
}

/// The 503 an over-budget client gets. Constructing it *is* the
/// rejection — both backends build it only on that path — so the
/// rejection counter lives here rather than at each call site.
pub(crate) fn over_budget_response() -> Response {
    metrics().reject(RejectReason::OverBudget);
    Response::error(503, "Service Unavailable", "connection budget exhausted")
}

/// The 400 a connection gets when its peer closed mid-request. Counted
/// as an `early_close` rejection, like the 503/408 constructors.
pub(crate) fn truncated_response() -> Response {
    metrics().reject(RejectReason::EarlyClose);
    Response::error(400, "Bad Request", "truncated request")
}

/// A socket timeout that is always *set*: `set_read_timeout(Some(ZERO))`
/// is an error in std (its result is deliberately discarded here), so a
/// zero configured duration would silently mean **no timeout at all** —
/// a silent client could then pin its handler thread and budget slot
/// forever. Clamp to 1ms instead: the closest honest reading of
/// "timeout: 0".
fn effective_timeout(d: Duration) -> Duration {
    d.max(Duration::from_millis(1))
}

/// One connection, one thread: read into a buffer, drain every request
/// the buffer holds through the shared parser/router, serialize all
/// their responses into one write buffer, flush once per burst.
fn handle_connection(mut stream: TcpStream, ctx: &DriverCtx) {
    let cfg = &ctx.cfg;
    let peer = stream.peer_addr().ok();
    let log_write_failed = |e: &io::Error| {
        if let Some(p) = peer {
            let peer = p.to_string();
            let err = e.to_string();
            logger().log(Level::Debug, "http", "write failed", &[("peer", &peer), ("error", &err)]);
        }
    };
    let _ = stream.set_write_timeout(Some(effective_timeout(cfg.io_timeout)));
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut served = 0usize;
    // Read-stage timestamps of the request currently arriving (0 =
    // unset): when its first byte landed, and when its header block
    // completed. Maintained at the existing read/parse transitions, so
    // the stage split costs two clock reads per request.
    let mut t_first = 0u64;
    let mut t_head = 0u64;
    'conn: loop {
        // Drain the pipelined burst already buffered: every complete
        // request is routed and its response appended to one write
        // buffer, flushed once below.
        let mut rpos = 0usize;
        loop {
            match parse_request(&rbuf[rpos..]) {
                Parse::Partial { head_complete } => {
                    if head_complete && t_head == 0 {
                        t_head = now_ns();
                    }
                    break;
                }
                Parse::Bad(msg) => {
                    Response::error(400, "Bad Request", &msg).serialize_into(&mut wbuf, true);
                    let _ = stream.write_all(&wbuf);
                    break 'conn;
                }
                Parse::Unsupported(msg) => {
                    Response::error(501, "Not Implemented", &msg).serialize_into(&mut wbuf, true);
                    let _ = stream.write_all(&wbuf);
                    break 'conn;
                }
                Parse::Complete { request, consumed } => {
                    rpos += consumed;
                    served += 1;
                    let t_parsed = now_ns();
                    let mut timer =
                        RequestTimer::start(if t_first != 0 { t_first } else { t_parsed });
                    if t_first != 0 {
                        let head_done = if t_head != 0 { t_head } else { t_parsed };
                        timer.add(Stage::HeadRead, head_done.saturating_sub(t_first));
                        timer.add(Stage::BodyRead, t_parsed.saturating_sub(head_done));
                    }
                    // The next pipelined request (if the buffer holds
                    // one) is considered to start now.
                    t_first = t_parsed;
                    t_head = 0;
                    // Close after this response if the client asked for
                    // it, the per-connection request budget is spent,
                    // or the server is shutting down.
                    let close = !request.keep_alive
                        || served >= cfg.max_requests_per_conn
                        || ctx.stop.is_stopped();
                    let route_ctx = RouteCtx { registry: &ctx.registry, stats: &ctx.stats };
                    let routed = route(&request, &route_ctx);
                    timer.add(Stage::Parse, now_ns().saturating_sub(t_parsed));
                    let response = match routed {
                        Routed::Ready(r) => r,
                        Routed::Score(task) => task.run_blocking(&mut timer),
                    };
                    let t_ser = now_ns();
                    response.serialize_into(&mut wbuf, close);
                    timer.add(Stage::Serialize, now_ns().saturating_sub(t_ser));
                    timer.finish(response.status);
                    if close {
                        let t_flush = now_ns();
                        if let Err(e) = stream.write_all(&wbuf) {
                            log_write_failed(&e);
                        }
                        metrics().record_stage(Stage::WriteFlush, now_ns().saturating_sub(t_flush));
                        break 'conn;
                    }
                }
            }
        }
        rbuf.drain(..rpos);
        if rbuf.is_empty() {
            // No partial request pending: the next request's first-byte
            // clock starts at its actual read.
            t_first = 0;
            t_head = 0;
        }
        if !wbuf.is_empty() {
            let t_flush = now_ns();
            if let Err(e) = stream.write_all(&wbuf) {
                log_write_failed(&e);
                break;
            }
            metrics().record_stage(Stage::WriteFlush, now_ns().saturating_sub(t_flush));
            wbuf.clear();
        }
        // Between requests the connection may idle up to `idle_timeout`;
        // once the first bytes of a request have landed, the stricter
        // `io_timeout` governs the rest of the head and the body.
        let timeout = if rbuf.is_empty() { cfg.idle_timeout } else { cfg.io_timeout };
        let _ = stream.set_read_timeout(Some(effective_timeout(timeout)));
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed. Mid-request that is a truncated request,
                // answered best-effort; between requests it is a clean
                // close.
                if !rbuf.is_empty() {
                    let mut out = Vec::new();
                    truncated_response().serialize_into(&mut out, true);
                    let _ = stream.write_all(&out);
                }
                break;
            }
            Ok(n) => {
                if t_first == 0 {
                    t_first = now_ns();
                }
                rbuf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if rbuf.is_empty() {
                    // Idle keep-alive connection ran out its grace
                    // period: close quietly.
                    break;
                }
                // Slow-loris: a request started but stalled mid-head or
                // mid-body. Answer and close rather than pinning the
                // thread.
                let mut out = Vec::new();
                stalled_response().serialize_into(&mut out, true);
                let _ = stream.write_all(&out);
                break;
            }
            Err(_) => break,
        }
    }
}

/// The answer both backends give a connection whose request stalled
/// mid-transfer past the io timeout. Counted as a `stalled` rejection.
pub(crate) fn stalled_response() -> Response {
    metrics().reject(RejectReason::Stalled);
    Response::error(408, "Request Timeout", "request stalled mid-transfer")
}

// ============================ routing =================================

/// What the router needs besides the request itself.
pub(crate) struct RouteCtx<'a> {
    pub(crate) registry: &'a Arc<ModelRegistry>,
    pub(crate) stats: &'a ServerStats,
}

/// Routing outcome: either a finished response, or a scoring task the
/// backend runs its own way (blocking thread vs. pool submission with a
/// completion callback).
pub(crate) enum Routed {
    /// The response is ready now.
    Ready(Response),
    /// CPU-heavy scoring still has to happen.
    Score(ScoreTask),
}

/// Which wire format the scoring response must use — decided at
/// routing from the request's `Content-Type`, carried through the pool
/// round-trip so completion callbacks build the right body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireFormat {
    /// The default JSON document (`{"scores": […], …}`).
    Json,
    /// Raw little-endian floats in the request's dtype ([`wire`]).
    Binary(wire::Dtype),
}

/// A validated scoring request: the target pool, the parsed shared
/// batch, which variant(s) to score, the response wire format, and the
/// telemetry identity of the model being scored (per-request counters
/// were bumped at routing).
pub(crate) struct ScoreTask {
    pool: Arc<ScoringPool>,
    batch: Arc<Matrix>,
    select: VariantSelect,
    format: WireFormat,
    stats: Arc<ModelStats>,
    tag: VariantTag,
    /// The model's live drift window, resolved at routing so completion
    /// callbacks feed the window of the model that actually scored —
    /// a concurrent reload installs a fresh window for *new* requests
    /// while this one keeps pointing at the instance it started with.
    drift: Option<Arc<ModelDrift>>,
}

/// Blocks on one pool submission and hands back both the result and
/// the pool's queue/score timing split.
fn score_blocking(
    pool: &ScoringPool,
    batch: &Arc<Matrix>,
    variant: Variant,
) -> (Result<Vec<f64>, ScoreError>, ScoreTiming) {
    let (tx, rx) = channel();
    pool.submit(
        batch,
        variant,
        Box::new(move |result, timing| {
            let _ = tx.send((result, timing));
        }),
    );
    rx.recv().unwrap_or((Err(ScoreError::WorkerPanicked), ScoreTiming::default()))
}

impl ScoreTask {
    /// Scores on the calling thread (threaded backend): blocks on the
    /// pool like any other in-process caller. Queue-wait and scoring
    /// time are folded into `timer` (for `both`, the two submissions
    /// accumulate).
    pub(crate) fn run_blocking(self, timer: &mut RequestTimer) -> Response {
        let ScoreTask { pool, batch, select, format, stats, tag, drift } = self;
        timer.set_scored(Arc::clone(&stats.name), tag, batch.rows());
        // Raw feature rows feed the drift window regardless of variant
        // or outcome: the question "what traffic is this model seeing"
        // is independent of which scores the caller asked for.
        if let Some(d) = &drift {
            d.record_rows(&batch);
        }
        match select {
            VariantSelect::Single(variant) => {
                let (result, timing) = score_blocking(&pool, &batch, variant);
                timer.add(Stage::QueueWait, timing.queue_ns);
                timer.add(Stage::Score, timing.score_ns);
                match result {
                    Ok(scores) => single_ok_response(format, variant, &scores, drift.as_deref()),
                    Err(e) => {
                        metrics().record_score_error(&stats, tag, &e, timer.trace_id);
                        score_error(&e)
                    }
                }
            }
            VariantSelect::Both => {
                // Teacher first: a booster-only model 404s before any
                // booster cycles are spent. Both sides score the same
                // shared batch, so the pair is row-aligned by
                // construction.
                let (teacher, t_timing) = score_blocking(&pool, &batch, Variant::Teacher);
                timer.add(Stage::QueueWait, t_timing.queue_ns);
                timer.add(Stage::Score, t_timing.score_ns);
                let teacher = match teacher {
                    Ok(s) => s,
                    Err(e) => {
                        metrics().record_score_error(&stats, tag, &e, timer.trace_id);
                        return score_error(&e);
                    }
                };
                let (booster, b_timing) = score_blocking(&pool, &batch, Variant::Booster);
                timer.add(Stage::QueueWait, b_timing.queue_ns);
                timer.add(Stage::Score, b_timing.score_ns);
                match booster {
                    Ok(booster) => both_response(format, &booster, &teacher, drift.as_deref()),
                    Err(e) => {
                        metrics().record_score_error(&stats, tag, &e, timer.trace_id);
                        score_error(&e)
                    }
                }
            }
        }
    }

    /// Submits the scoring work to the pool and returns immediately;
    /// `done` fires exactly once with the finished response and the
    /// request's timer (queue/score stages already folded in), on a
    /// pool worker thread (the reactor's completion callback enqueues
    /// it and writes the wakeup pipe). `both` chains teacher → booster
    /// through the pool without ever blocking a thread.
    pub(crate) fn run_async(
        self,
        mut timer: RequestTimer,
        done: Box<dyn FnOnce(Response, RequestTimer) + Send>,
    ) {
        let ScoreTask { pool, batch, select, format, stats, tag, drift } = self;
        timer.set_scored(Arc::clone(&stats.name), tag, batch.rows());
        if let Some(d) = &drift {
            d.record_rows(&batch);
        }
        match select {
            VariantSelect::Single(variant) => pool.submit(
                &batch,
                variant,
                Box::new(move |result, timing| {
                    timer.add(Stage::QueueWait, timing.queue_ns);
                    timer.add(Stage::Score, timing.score_ns);
                    let response = match result {
                        Ok(scores) => single_ok_response(format, variant, &scores, drift.as_deref()),
                        Err(e) => {
                            metrics().record_score_error(&stats, tag, &e, timer.trace_id);
                            score_error(&e)
                        }
                    };
                    done(response, timer);
                }),
            ),
            VariantSelect::Both => {
                let pool2 = Arc::clone(&pool);
                let batch2 = Arc::clone(&batch);
                // Teacher first, exactly like the blocking path.
                pool.submit(
                    &batch,
                    Variant::Teacher,
                    Box::new(move |teacher, t_timing| {
                        timer.add(Stage::QueueWait, t_timing.queue_ns);
                        timer.add(Stage::Score, t_timing.score_ns);
                        match teacher {
                            Err(e) => {
                                metrics().record_score_error(&stats, tag, &e, timer.trace_id);
                                done(score_error(&e), timer);
                            }
                            Ok(teacher) => pool2.submit(
                                &batch2,
                                Variant::Booster,
                                Box::new(move |booster, b_timing| {
                                    timer.add(Stage::QueueWait, b_timing.queue_ns);
                                    timer.add(Stage::Score, b_timing.score_ns);
                                    match booster {
                                        Err(e) => {
                                            metrics().record_score_error(
                                                &stats,
                                                tag,
                                                &e,
                                                timer.trace_id,
                                            );
                                            done(score_error(&e), timer);
                                        }
                                        Ok(booster) => done(
                                            both_response(
                                                format,
                                                &booster,
                                                &teacher,
                                                drift.as_deref(),
                                            ),
                                            timer,
                                        ),
                                    }
                                }),
                            ),
                        }
                    }),
                );
            }
        }
    }
}

fn single_ok_response(
    format: WireFormat,
    variant: Variant,
    scores: &[f64],
    drift: Option<&ModelDrift>,
) -> Response {
    // Only booster scores feed the live drift sketch: the training
    // baseline was built from booster-calibrated scores, so teacher
    // scores would shift PSI without any actual model drift.
    if variant == Variant::Booster {
        if let Some(d) = drift {
            d.record_scores(scores);
        }
    }
    match format {
        WireFormat::Json => Response::json(
            200,
            "OK",
            &json::object([
                ("scores", json::number_array(scores)),
                ("n", Value::Number(scores.len() as f64)),
                ("variant", Value::String(variant.name().to_string())),
            ]),
        ),
        WireFormat::Binary(dtype) => Response::binary(wire::encode_scores(dtype, &[scores])),
    }
}

fn both_response(
    format: WireFormat,
    booster: &[f64],
    teacher: &[f64],
    drift: Option<&ModelDrift>,
) -> Response {
    // Paired scores for the same rows are exactly the stream the
    // teacher–booster divergence gauges summarise — fed on both wire
    // formats, into the process-global gauges and (when a window is
    // installed) the per-model drift report.
    let batch_stats = metrics().observe_divergence(booster, teacher);
    if let Some(d) = drift {
        d.record_scores(booster);
        if let Some((mean_abs, max_abs, n)) = batch_stats {
            d.observe_divergence(mean_abs, max_abs, n);
        }
    }
    match format {
        WireFormat::Json => Response::json(
            200,
            "OK",
            &json::object([
                ("booster", json::number_array(booster)),
                ("teacher", json::number_array(teacher)),
                ("n", Value::Number(booster.len() as f64)),
                ("variant", Value::String("both".to_string())),
            ]),
        ),
        WireFormat::Binary(dtype) => {
            Response::binary(wire::encode_scores(dtype, &[booster, teacher]))
        }
    }
}

pub(crate) fn route(req: &Request, ctx: &RouteCtx) -> Routed {
    metrics().requests_total.inc();
    let registry = ctx.registry;
    // Routing is path-based; the query string only carries options
    // (currently `?variant=` on the score endpoints).
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let response = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(ctx),
        ("GET", ["metrics"]) => metrics_response(),
        ("GET", ["admin", "slow"]) => slow_response(),
        ("GET", ["admin", "drift"]) => drift_response(None),
        ("GET", ["admin", "drift", name]) => drift_response(Some(name)),
        ("POST", ["admin", "drift", name, "reset"]) => drift_reset(name),
        ("GET", ["models"]) => list_models(registry),
        ("GET", ["model"]) => match registry.default_pool() {
            Some(pool) => {
                Response::json(200, "OK", &model_info(pool.model(), Some(pool.n_workers())))
            }
            None => Response::error(404, "Not Found", "no default model registered"),
        },
        ("GET", ["model", name]) => match registry.get(name) {
            Some(pool) => {
                Response::json(200, "OK", &model_info(pool.model(), Some(pool.n_workers())))
            }
            None => unknown_model(name),
        },
        ("POST", ["score"]) => match registry.default_pool() {
            Some(pool) => {
                let name = registry.default_name().unwrap_or_else(|| "default".to_string());
                registry.count_request(&name);
                return score_routed(req, pool, query, &name);
            }
            None => Response::error(404, "Not Found", "no default model registered"),
        },
        ("POST", ["score", name]) => match registry.get(name) {
            Some(pool) => {
                registry.count_request(name);
                return score_routed(req, pool, query, name);
            }
            None => unknown_model(name),
        },
        ("POST", ["admin", "reload", name]) => reload_model(req, registry, name),
        ("POST", ["admin", "teacher", name]) => attach_teacher(req, registry, name),
        ("DELETE", ["admin", "teacher", name]) => detach_teacher(registry, name),
        ("GET", ["score"] | ["score", _]) => {
            Response::error(405, "Method Not Allowed", "use POST /score")
        }
        _ => Response::error(404, "Not Found", "unknown endpoint"),
    };
    Routed::Ready(response)
}

fn healthz(ctx: &RouteCtx) -> Response {
    let requests: BTreeMap<String, Value> = ctx
        .registry
        .request_counts()
        .into_iter()
        .map(|(name, n)| (name, Value::Number(n as f64)))
        .collect();
    let m = metrics();
    let lat = m.latency_snapshot();
    let pct =
        |q: f64| lat.quantile(q).map(|ns| Value::Number(ns as f64 / 1e6)).unwrap_or(Value::Null);
    Response::json(
        200,
        "OK",
        &json::object([
            ("status", Value::String("ok".to_string())),
            ("models", Value::Number(ctx.registry.len() as f64)),
            ("default", ctx.registry.default_name().map(Value::String).unwrap_or(Value::Null)),
            ("backend", Value::String(ctx.stats.backend().to_string())),
            ("shards", Value::Number(ctx.stats.shards() as f64)),
            ("open_connections", Value::Number(ctx.stats.open_connections() as f64)),
            ("max_connections", Value::Number(ctx.stats.max_connections() as f64)),
            ("requests", Value::Object(requests)),
            (
                "latency_ms",
                json::object([("p50", pct(0.50)), ("p95", pct(0.95)), ("p99", pct(0.99))]),
            ),
            ("rejected_total", Value::Number(m.rejected_total() as f64)),
            ("worker_panics_total", Value::Number(m.worker_panics.get() as f64)),
        ]),
    )
}

/// `GET /metrics` — the whole telemetry plane in Prometheus text
/// exposition format 0.0.4. Drift gauges are derived values, so they
/// are recomputed from the live sketches on every scrape rather than
/// on every scored batch.
fn metrics_response() -> Response {
    metrics().refresh_drift_gauges();
    Response::text(200, "OK", "text/plain; version=0.0.4", metrics().render())
}

/// One drift report as its `/admin/drift` JSON document.
fn drift_report_json(r: &DriftReport) -> Value {
    let num_array = |xs: &[f64]| Value::Array(xs.iter().map(|&x| Value::Number(x)).collect());
    let opt_num = |x: Option<f64>| x.map(Value::Number).unwrap_or(Value::Null);
    let quantile_obj = |q: &[f64; 3]| {
        json::object([
            ("p50", Value::Number(q[0])),
            ("p90", Value::Number(q[1])),
            ("p99", Value::Number(q[2])),
        ])
    };
    let (div_mean, div_max, div_n) = r.divergence;
    json::object([
        ("model", Value::String(r.name.to_string())),
        ("psi", opt_num(r.psi)),
        ("live_samples", Value::Number(r.live_samples as f64)),
        (
            "baseline_samples",
            r.baseline_samples.map(|n| Value::Number(n as f64)).unwrap_or(Value::Null),
        ),
        ("live_anomaly_rate", Value::Number(r.live_anomaly_rate)),
        ("train_anomaly_rate", opt_num(r.train_anomaly_rate)),
        ("threshold", Value::Number(r.threshold)),
        ("live_quantiles", quantile_obj(&r.live_quantiles)),
        (
            "baseline_quantiles",
            r.baseline_quantiles.as_ref().map(quantile_obj).unwrap_or(Value::Null),
        ),
        ("feature_shifts", num_array(&r.feature_shifts)),
        ("live_means", num_array(&r.live_means)),
        ("train_means", num_array(&r.train_means)),
        ("train_stds", num_array(&r.train_stds)),
        ("feature_rows", Value::Number(r.feature_rows as f64)),
        ("feature_drift_max", Value::Number(r.feature_max)),
        (
            "feature_drift_argmax",
            r.feature_argmax.map(|j| Value::Number(j as f64)).unwrap_or(Value::Null),
        ),
        (
            "divergence",
            json::object([
                ("mean", Value::Number(div_mean)),
                ("max", Value::Number(div_max)),
                ("samples", Value::Number(div_n as f64)),
            ]),
        ),
        ("window_age_seconds", Value::Number(r.window_age_seconds)),
    ])
}

/// `GET /admin/drift` (all models) and `GET /admin/drift/{name}` — the
/// model-quality view: live-vs-training score distribution (PSI,
/// quantiles, anomaly rates) and per-feature standardized mean shifts.
fn drift_response(name: Option<&str>) -> Response {
    let reports = metrics().drift_reports();
    match name {
        Some(name) => match reports.iter().find(|r| r.name.as_ref() == name) {
            Some(r) => Response::json(200, "OK", &drift_report_json(r)),
            None => unknown_model(name),
        },
        None => {
            let models: Vec<Value> = reports.iter().map(drift_report_json).collect();
            Response::json(200, "OK", &json::object([("models", Value::Array(models))]))
        }
    }
}

/// `POST /admin/drift/{name}/reset` — start a fresh live window for
/// `name` (the training baseline is kept; only streaming state clears).
fn drift_reset(name: &str) -> Response {
    if metrics().reset_drift(name) {
        Response::json(200, "OK", &json::object([("reset", Value::String(name.to_string()))]))
    } else {
        unknown_model(name)
    }
}

/// `GET /admin/slow` — the last captured slow requests, oldest first.
fn slow_response() -> Response {
    let entries: Vec<Value> = metrics()
        .slow_snapshot()
        .into_iter()
        .map(|e| {
            let stages: BTreeMap<String, Value> = Stage::all()
                .iter()
                .filter(|s| e.stages[**s as usize] != 0)
                .map(|s| (s.name().to_string(), Value::Number(e.stages[*s as usize] as f64 / 1e6)))
                .collect();
            json::object([
                ("trace", Value::Number(e.trace_id as f64)),
                ("total_ms", Value::Number(e.total_ns as f64 / 1e6)),
                ("status", Value::Number(e.status as f64)),
                (
                    "model",
                    e.model.as_deref().map(|m| Value::String(m.to_string())).unwrap_or(Value::Null),
                ),
                (
                    "variant",
                    e.variant.map(|v| Value::String(v.name().to_string())).unwrap_or(Value::Null),
                ),
                ("rows", Value::Number(e.rows as f64)),
                ("stages_ms", Value::Object(stages)),
            ])
        })
        .collect();
    Response::json(200, "OK", &json::object([("slow", Value::Array(entries))]))
}

fn unknown_model(name: &str) -> Response {
    Response::error(404, "Not Found", &format!("no model named `{name}` (see GET /models)"))
}

fn list_models(registry: &Arc<ModelRegistry>) -> Response {
    let models: Vec<Value> = registry
        .names()
        .into_iter()
        .filter_map(|name| {
            // An entry can be removed between names() and get(); skip it.
            let pool = registry.get(&name)?;
            let meta = pool.model().meta();
            Some(json::object([
                ("name", Value::String(name)),
                ("dataset", Value::String(meta.dataset.clone())),
                ("teacher", Value::String(meta.teacher.clone())),
                ("input_dim", Value::Number(pool.model().input_dim() as f64)),
                ("n_train", Value::Number(meta.n_train as f64)),
            ]))
        })
        .collect();
    Response::json(
        200,
        "OK",
        &json::object([
            ("default", registry.default_name().map(Value::String).unwrap_or(Value::Null)),
            ("models", Value::Array(models)),
        ]),
    )
}

/// Pulls a required `{"path": "..."}` out of an admin request body.
fn body_path(body: &[u8]) -> Result<Option<String>, Response> {
    if body.is_empty() {
        return Ok(None);
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "Bad Request", "body is not UTF-8"))?;
    let parsed =
        json::parse(text).map_err(|e| Response::error(400, "Bad Request", &e.to_string()))?;
    match parsed.get("path").map(|p| p.as_str()) {
        Some(Some(p)) => Ok(Some(p.to_string())),
        Some(None) => Err(Response::error(400, "Bad Request", "\"path\" must be a string")),
        None => Err(Response::error(400, "Bad Request", "expected {\"path\": \"...\"}")),
    }
}

fn registry_error(e: RegistryError) -> Response {
    match e {
        RegistryError::UnknownModel(_) | RegistryError::NoTeacher(_) => {
            Response::error(404, "Not Found", &e.to_string())
        }
        RegistryError::NoSourcePath(_)
        | RegistryError::InvalidName(_)
        | RegistryError::TeacherMismatch { .. }
        | RegistryError::TeacherKindMismatch { .. }
        | RegistryError::ConcurrentSwap(_) => Response::error(409, "Conflict", &e.to_string()),
        RegistryError::Load(_) => Response::error(422, "Unprocessable Entity", &e.to_string()),
    }
}

fn reload_model(req: &Request, registry: &Arc<ModelRegistry>, name: &str) -> Response {
    // Optional body: {"path": "/new/model/file"}. An empty body reloads
    // from the entry's remembered source file.
    let explicit_path = match body_path(&req.body) {
        Ok(p) => p,
        Err(response) => return response,
    };
    match registry.reload(name, explicit_path.as_deref().map(Path::new)) {
        Ok(()) => {
            let info = registry
                .get(name)
                .map(|pool| model_info(pool.model(), Some(pool.n_workers())))
                .unwrap_or(Value::Null);
            Response::json(
                200,
                "OK",
                &json::object([("reloaded", Value::String(name.to_string())), ("model", info)]),
            )
        }
        Err(e) => registry_error(e),
    }
}

/// `POST /admin/teacher/{name}` — attach (or replace) a frozen teacher
/// snapshot at runtime. The body names the snapshot file; the same
/// kind/width validation as startup (`--model NAME=FILE,TEACHER`) runs
/// before any pool is swapped, so a bad file can never break serving.
fn attach_teacher(req: &Request, registry: &Arc<ModelRegistry>, name: &str) -> Response {
    let path = match body_path(&req.body) {
        Ok(Some(p)) => p,
        Ok(None) => {
            return Response::error(400, "Bad Request", "expected {\"path\": \"...\"} body")
        }
        Err(response) => return response,
    };
    match registry.attach_teacher(name, Path::new(&path)) {
        Ok(()) => {
            let info = registry
                .get(name)
                .map(|pool| model_info(pool.model(), Some(pool.n_workers())))
                .unwrap_or(Value::Null);
            Response::json(
                200,
                "OK",
                &json::object([("attached", Value::String(name.to_string())), ("model", info)]),
            )
        }
        Err(e) => registry_error(e),
    }
}

/// `DELETE /admin/teacher/{name}` — detach the teacher snapshot;
/// afterwards `?variant=teacher|both` are 404s again.
fn detach_teacher(registry: &Arc<ModelRegistry>, name: &str) -> Response {
    match registry.detach_teacher(name) {
        Ok(()) => {
            let info = registry
                .get(name)
                .map(|pool| model_info(pool.model(), Some(pool.n_workers())))
                .unwrap_or(Value::Null);
            Response::json(
                200,
                "OK",
                &json::object([("detached", Value::String(name.to_string())), ("model", info)]),
            )
        }
        Err(e) => registry_error(e),
    }
}

/// Model metadata document. `workers` is the serving pool's resolved
/// worker-thread count when the model is behind a pool (`GET /model`);
/// the offline CLI `info` command has no pool and omits the field.
pub(crate) fn model_info(model: &ServedModel, workers: Option<usize>) -> Value {
    let meta = model.meta();
    let cfg = model.model().config();
    let cal = model.model().calibration();
    let mut fields = vec![
        ("dataset", Value::String(meta.dataset.clone())),
        ("teacher", Value::String(meta.teacher.clone())),
        ("n_train", Value::Number(meta.n_train as f64)),
        ("input_dim", Value::Number(model.input_dim() as f64)),
        ("ensemble_size", Value::Number(model.model().ensemble().len() as f64)),
        ("hidden", Value::Array(cfg.hidden.iter().map(|&h| Value::Number(h as f64)).collect())),
        ("t_steps", Value::Number(cfg.t_steps as f64)),
        ("seed", Value::Number(cfg.seed as f64)),
        (
            "calibration",
            json::object([("min", Value::Number(cal.min)), ("range", Value::Number(cal.range))]),
        ),
        ("format_version", Value::Number(crate::persist::FORMAT_VERSION as f64)),
    ];
    fields.push((
        "variants",
        Value::Array(model.variants().iter().map(|v| Value::String(v.to_string())).collect()),
    ));
    if let Some(teacher) = model.teacher() {
        let tcal = teacher.calibration();
        fields.push((
            "teacher_snapshot",
            json::object([
                ("kind", Value::String(teacher.kind().name().to_string())),
                (
                    "calibration",
                    json::object([
                        ("min", Value::Number(tcal.min)),
                        ("range", Value::Number(tcal.range)),
                    ]),
                ),
            ]),
        ));
    }
    if let Some(b) = model.baseline() {
        let snap = b.snapshot();
        fields.push((
            "baseline",
            json::object([
                ("samples", Value::Number(b.n as f64)),
                ("threshold", Value::Number(b.threshold)),
                ("anomaly_rate", Value::Number(b.anomaly_rate)),
                (
                    "score_quantiles",
                    json::object([
                        ("p50", Value::Number(snap.quantile(0.5))),
                        ("p90", Value::Number(snap.quantile(0.9))),
                        ("p99", Value::Number(snap.quantile(0.99))),
                    ]),
                ),
            ]),
        ));
    }
    if let Some(n) = workers {
        fields.push(("workers", Value::Number(n as f64)));
    }
    json::object(fields)
}

/// Teacher-snapshot metadata document (the CLI `info` command on a
/// teacher file; servers report teachers inline via `model_info`).
pub(crate) fn teacher_info(teacher: &crate::model::TeacherModel) -> Value {
    let meta = teacher.meta();
    let cal = teacher.calibration();
    json::object([
        ("record", Value::String("teacher".to_string())),
        ("dataset", Value::String(meta.dataset.clone())),
        ("teacher", Value::String(meta.teacher.clone())),
        ("kind", Value::String(teacher.kind().name().to_string())),
        ("n_train", Value::Number(meta.n_train as f64)),
        ("input_dim", Value::Number(teacher.input_dim() as f64)),
        (
            "calibration",
            json::object([("min", Value::Number(cal.min)), ("range", Value::Number(cal.range))]),
        ),
        ("format_version", Value::Number(crate::persist::FORMAT_VERSION as f64)),
    ])
}

/// The scoring target a request names via `?variant=`.
enum VariantSelect {
    Single(Variant),
    Both,
}

/// Parses `?variant=` out of a query string; absent means booster.
/// Unknown query keys are ignored; an unknown variant value is a 400.
fn parse_variant(query: Option<&str>) -> Result<VariantSelect, String> {
    let Some(query) = query else {
        return Ok(VariantSelect::Single(Variant::Booster));
    };
    let mut select = VariantSelect::Single(Variant::Booster);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "variant" {
            continue;
        }
        select = match value {
            "both" => VariantSelect::Both,
            other => match Variant::from_name(other) {
                Some(v) => VariantSelect::Single(v),
                None => {
                    return Err(format!("unknown variant `{other}` (want booster|teacher|both)"))
                }
            },
        };
    }
    Ok(select)
}

/// Maps a scoring failure to its HTTP shape: a missing teacher is a
/// 404 (the variant does not exist on this model), a dead worker is a
/// 500 (server bug), everything else is a request-level 422.
fn score_error(e: &ScoreError) -> Response {
    match e {
        ScoreError::TeacherNotLoaded => Response::error(404, "Not Found", &e.to_string()),
        ScoreError::WorkerPanicked => Response::error(500, "Internal Server Error", &e.to_string()),
        _ => Response::error(422, "Unprocessable Entity", &e.to_string()),
    }
}

/// Validates a score request (variant, body decode, matrix) into a
/// [`ScoreTask`], or short-circuits with the error response. The
/// request's `Content-Type` selects between the default JSON body and
/// the binary rows payload ([`wire`]); the response mirrors the
/// request's format. `name` keys the per-model × per-variant telemetry
/// counters.
fn score_routed(req: &Request, pool: Arc<ScoringPool>, query: Option<&str>, name: &str) -> Routed {
    let select = match parse_variant(query) {
        Ok(s) => s,
        Err(msg) => return Routed::Ready(Response::error(400, "Bad Request", &msg)),
    };
    let binary = req.content_type.as_deref().map(wire::is_binary_content_type).unwrap_or(false);
    let (matrix, format) = if binary {
        match wire::decode_rows(&req.body, MAX_BODY) {
            Ok((m, dtype)) => (m, WireFormat::Binary(dtype)),
            Err(msg) => return Routed::Ready(Response::error(400, "Bad Request", &msg)),
        }
    } else {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => {
                return Routed::Ready(Response::error(400, "Bad Request", "body is not UTF-8"))
            }
        };
        let parsed = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return Routed::Ready(Response::error(400, "Bad Request", &e.to_string())),
        };
        let rows = match parsed.get("rows").and_then(Value::as_array) {
            Some(r) => r,
            None => {
                return Routed::Ready(Response::error(
                    400,
                    "Bad Request",
                    "expected {\"rows\": [[...], ...]}",
                ))
            }
        };
        match rows_to_matrix(rows) {
            Ok(m) => (m, WireFormat::Json),
            Err(msg) => return Routed::Ready(Response::error(400, "Bad Request", &msg)),
        }
    };
    let tag = match select {
        VariantSelect::Single(v) => VariantTag::from_variant(v),
        VariantSelect::Both => VariantTag::Both,
    };
    let stats = metrics().model_stats(name);
    let counters = stats.variant(tag);
    counters.requests.inc();
    counters.rows.add(matrix.rows() as u64);
    let drift = metrics().drift(name);
    // Hand the parsed batch to the pool as-is: shards borrow row ranges
    // from this one shared allocation instead of copying.
    Routed::Score(ScoreTask { pool, batch: Arc::new(matrix), select, format, stats, tag, drift })
}

pub(crate) fn rows_to_matrix(rows: &[Value]) -> Result<Matrix, String> {
    if rows.is_empty() {
        return Ok(Matrix::zeros(0, 0));
    }
    let mut data: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut width: Option<usize> = None;
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().ok_or_else(|| format!("row {i} is not an array"))?;
        let parsed: Vec<f64> = cells
            .iter()
            .map(|c| c.as_f64().ok_or_else(|| format!("row {i} has a non-numeric cell")))
            .collect::<Result<_, _>>()?;
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(format!("row {i} has {} cells, expected {w}", parsed.len()))
            }
            _ => {}
        }
        data.push(parsed);
    }
    if width == Some(0) {
        return Err("rows are empty arrays".to_string());
    }
    Matrix::from_rows(&data).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parse::Complete { request, consumed } => (request, consumed),
            Parse::Partial { .. } => panic!("unexpectedly partial"),
            Parse::Bad(m) => panic!("unexpectedly bad: {m}"),
            Parse::Unsupported(m) => panic!("unexpectedly unsupported: {m}"),
        }
    }

    #[test]
    fn parser_handles_incremental_arrival() {
        let wire = b"POST /score HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let head_len = wire.len() - 4;
        // Every strict prefix is Partial — and the parser reports the
        // head/body boundary so callers can split read-stage timings.
        for cut in 0..wire.len() {
            match parse_request(&wire[..cut]) {
                Parse::Partial { head_complete } => {
                    assert_eq!(
                        head_complete,
                        cut >= head_len,
                        "prefix of {cut} bytes: wrong head_complete"
                    );
                }
                other => panic!(
                    "prefix of {cut} bytes should be partial, got {:?}",
                    std::mem::discriminant(&other)
                ),
            }
        }
        let (req, consumed) = complete(wire);
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/score");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn parser_consumes_pipelined_requests_one_at_a_time() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /models HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, used) = complete(wire);
        assert_eq!(first.path, "/healthz");
        assert!(first.keep_alive);
        let (second, used2) = complete(&wire[used..]);
        assert_eq!(second.path, "/models");
        assert!(!second.keep_alive);
        assert_eq!(used + used2, wire.len());
        assert!(matches!(parse_request(&wire[used + used2..]), Parse::Partial { .. }));
    }

    #[test]
    fn parser_tolerates_bare_lf_and_http10_semantics() {
        let (req, _) = complete(b"GET / HTTP/1.0\nConnection: keep-alive\n\n");
        assert!(req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
    }

    #[test]
    fn parser_rejects_framing_attacks_and_oversize() {
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n"),
            Parse::Bad(m) if m.contains("duplicate Content-Length")
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: 0, 0\r\n\r\n"),
            Parse::Bad(m) if m.contains("invalid Content-Length")
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Unsupported(_)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/2\r\n\r\n"),
            Parse::Bad(m) if m.contains("unsupported protocol")
        ));
        assert!(matches!(parse_request(b"\r\nGET / HTTP/1.1\r\n\r\n"), Parse::Bad(_)));
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_request(huge.as_bytes()), Parse::Bad(m) if m.contains("exceeds")));
        // An endless head is cut off at the cap even before the blank
        // line ever arrives.
        let mut endless = b"GET / HTTP/1.1\r\n".to_vec();
        while endless.len() <= MAX_HEAD {
            endless.extend_from_slice(b"X-Filler: yes\r\n");
        }
        assert!(matches!(parse_request(&endless), Parse::Bad(m) if m.contains("too large")));
    }

    #[test]
    fn response_serialization_appends() {
        let mut out = Vec::new();
        Response::error(404, "Not Found", "nope").serialize_into(&mut out, false);
        let first_len = out.len();
        Response::error(400, "Bad Request", "also nope").serialize_into(&mut out, true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text[first_len..].starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text[first_len..].contains("Connection: close\r\n"));
    }

    #[test]
    fn io_mode_names_round_trip() {
        for mode in [IoMode::Threads, IoMode::Epoll] {
            assert_eq!(IoMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(IoMode::from_name("uring"), None);
        #[cfg(target_os = "linux")]
        assert_eq!(IoMode::default_for_host(), IoMode::Epoll);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(IoMode::default_for_host(), IoMode::Threads);
    }
}
