//! HTTP/1.1 scoring server with persistent connections and multi-model
//! routing over `std::net::TcpListener`.
//!
//! Endpoints:
//!
//! * `POST /score` — score against the registry's default model; body
//!   `{"rows": [[f64, …], …]}`, response `{"scores": [f64, …], "n": k}`.
//!   Scores go through the model's shared [`ScoringPool`], so they match
//!   in-process [`crate::model::ServedModel::score_rows`] bit for bit.
//! * `POST /score/{name}` — same, against a named model (404 unknown).
//!   `?variant=booster|teacher|both` picks the scoring side when the
//!   model carries a frozen teacher snapshot: `teacher` scores the
//!   fitted source detector, `both` returns paired
//!   `{"booster": […], "teacher": […]}` scores for the same rows in one
//!   response (online A/B). Requesting the teacher on a booster-only
//!   model is a 404.
//! * `GET /model` / `GET /model/{name}` — model metadata, including
//!   which variants are loaded.
//! * `GET /models` — names, default, and per-model metadata.
//! * `POST /admin/reload/{name}` — hot-swap a model from its source file
//!   (or from `{"path": "..."}` in the body) without dropping in-flight
//!   connections.
//! * `GET /healthz` — liveness probe.
//!
//! Connection model: each accepted socket gets a handler thread running
//! a **request loop** with HTTP/1.1 keep-alive semantics — `Connection:
//! close` / `keep-alive` honoured per protocol version, a cap on
//! requests per connection, and an idle timeout between requests. The
//! number of concurrent connections is bounded ([`ServerConfig::
//! max_connections`]); over-budget clients get an immediate `503` with
//! `Connection: close` instead of an unbounded thread spawn. Request
//! heads and bodies are size-capped before any allocation happens, and
//! the CPU-heavy scoring itself runs on each model's fixed worker pool,
//! so handler threads stay I/O-bound.

use crate::json::{self, Value};
use crate::model::{ScoreError, ServedModel, Variant};
use crate::pool::{PoolConfig, ScoringPool};
use crate::registry::{ModelRegistry, RegistryError};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use uadb_linalg::Matrix;

/// Upper bound on request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on request body.
const MAX_BODY: usize = 64 * 1024 * 1024;
/// Consecutive accept failures tolerated before the listener is declared
/// dead and `run()` returns the error.
const MAX_ACCEPT_FAILURES: u32 = 100;

/// Connection-layer tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent connections; further clients get `503` +
    /// `Connection: close` until a slot frees up.
    pub max_connections: usize,
    /// Requests served on one connection before the server closes it
    /// (defends against a single client pinning a handler forever).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Read/write timeout *within* a request (headers, body, response):
    /// a stalled or silent client frees its thread instead of pinning it.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A bound scoring server (not yet accepting).
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    cfg: ServerConfig,
}

/// Handle to a server running on a background thread (used by the CLI's
/// foreground mode indirectly and by tests directly).
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener over a model registry.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, registry, cfg })
    }

    /// Convenience: binds a single-model server, registering `model`
    /// under the name `"default"` with its own scoring pool.
    pub fn bind_single(
        addr: impl ToSocketAddrs,
        model: Arc<ServedModel>,
        pool_cfg: PoolConfig,
    ) -> io::Result<Server> {
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("default", model, pool_cfg).expect("\"default\" is a valid registry name");
        Self::bind(addr, registry, ServerConfig::default())
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The registry this server routes over.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Accepts connections forever on the calling thread.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let registry = Arc::clone(&self.registry);
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let thread =
            std::thread::Builder::new().name("uadb-serve-accept".to_string()).spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })?;
        Ok(ServerHandle { addr, registry, stop, thread: Some(thread) })
    }

    fn accept_loop(&self, stop: &Arc<AtomicBool>) -> io::Result<()> {
        let mut consecutive_failures = 0u32;
        let active = Arc::new(AtomicUsize::new(0));
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    consecutive_failures = 0;
                    // Connection budget: never spawn more handler threads
                    // than configured. Over-budget clients get a fast,
                    // best-effort 503 on the accept thread (bounded by a
                    // short write timeout) rather than a silent reset.
                    if active.load(Ordering::SeqCst) >= self.cfg.max_connections {
                        reject_over_budget(stream);
                        continue;
                    }
                    let guard = ConnGuard::enter(&active);
                    let registry = Arc::clone(&self.registry);
                    let cfg = self.cfg.clone();
                    let conn_stop = Arc::clone(stop);
                    let spawned = std::thread::Builder::new()
                        .name("uadb-serve-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            handle_connection(stream, &registry, &cfg, &conn_stop);
                        });
                    // A failed spawn drops the guard, releasing the slot.
                    if let Err(e) = spawned {
                        eprintln!("uadb-serve: spawning connection handler failed: {e}");
                    }
                }
                Err(e) => {
                    // Transient accept errors (aborted handshake, EMFILE
                    // under fd pressure) shed the connection and keep
                    // serving; the backoff keeps an exhaustion burst from
                    // spinning this loop hot. A long unbroken run of
                    // failures means the listener itself is dead — exit
                    // with the error so a supervisor can restart us.
                    consecutive_failures += 1;
                    if consecutive_failures >= MAX_ACCEPT_FAILURES {
                        return Err(e);
                    }
                    eprintln!("uadb-serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }
}

/// RAII slot in the connection budget.
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl ConnGuard {
    fn enter(active: &Arc<AtomicUsize>) -> Self {
        active.fetch_add(1, Ordering::SeqCst);
        Self { active: Arc::clone(active) }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn reject_over_budget(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = Response::error(503, "Service Unavailable", "connection budget exhausted");
    let _ = write_response(&mut stream, &response, true);
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the running server routes over (hot reload, tests).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Stops the accept loop and joins the server thread. Connection
    /// handler threads see the stop flag after at most one more request
    /// and answer it with `Connection: close`.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call. Connecting to the *bound* address
        // would hang forever for 0.0.0.0/:: (unspecified addresses are
        // not routable connect targets on every platform), so aim at the
        // loopback of the same family and port instead.
        let _ = TcpStream::connect_timeout(&unblock_addr(self.addr), Duration::from_secs(1));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The address used to wake up `accept` during shutdown: the bound
/// address, with an unspecified IP (`0.0.0.0` / `::`) replaced by the
/// loopback of the same family.
fn unblock_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(v4) if v4.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(v6) if v6.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    /// Whether the *client* allows the connection to stay open
    /// (HTTP/1.1 without `Connection: close`, or HTTP/1.0 with an
    /// explicit `Connection: keep-alive`).
    keep_alive: bool,
}

struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, value: &Value) -> Self {
        Self { status, reason, body: json::to_string(value) }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self::json(status, reason, &json::object([("error", Value::String(message.to_string()))]))
    }
}

/// Why reading the next request off a connection stopped.
enum ReadError {
    /// Clean end: the peer closed the socket, or the idle timeout
    /// expired, before any byte of a new request arrived. Not an error —
    /// just close quietly.
    Closed,
    /// Malformed request (answered with `400`, then close).
    Bad(String),
    /// Well-formed but unimplemented framing, e.g. `Transfer-Encoding:
    /// chunked` (answered with `501`, then close).
    Unsupported(String),
}

fn handle_connection(
    stream: TcpStream,
    registry: &Arc<ModelRegistry>,
    cfg: &ServerConfig,
    stop: &AtomicBool,
) {
    let peer = stream.peer_addr().ok();
    let _ = stream.set_write_timeout(Some(effective_timeout(cfg.io_timeout)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        let request = match read_request(&mut reader, cfg) {
            Ok(req) => req,
            Err(ReadError::Closed) => break,
            Err(ReadError::Bad(msg)) => {
                let _ =
                    write_response(&mut writer, &Response::error(400, "Bad Request", &msg), true);
                break;
            }
            Err(ReadError::Unsupported(msg)) => {
                let response = Response::error(501, "Not Implemented", &msg);
                let _ = write_response(&mut writer, &response, true);
                break;
            }
        };
        served += 1;
        // Close after this response if the client asked for it, the
        // per-connection request budget is spent, or the server is
        // shutting down.
        let close = !request.keep_alive
            || served >= cfg.max_requests_per_conn
            || stop.load(Ordering::SeqCst);
        let response = route(&request, registry);
        if let Err(e) = write_response(&mut writer, &response, close) {
            if let Some(p) = peer {
                eprintln!("uadb-serve: write to {p} failed: {e}");
            }
            break;
        }
        if close {
            break;
        }
    }
}

fn write_response(w: &mut TcpStream, response: &Response, close: bool) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        response.reason,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(response.body.as_bytes())?;
    w.flush()
}

/// A socket timeout that is always *set*: `set_read_timeout(Some(ZERO))`
/// is an error in std (its result is deliberately discarded here), so a
/// zero configured duration would silently mean **no timeout at all** —
/// a silent client could then pin its handler thread and budget slot
/// forever. Clamp to 1ms instead: the closest honest reading of
/// "timeout: 0".
fn effective_timeout(d: Duration) -> Duration {
    d.max(Duration::from_millis(1))
}

fn read_request(
    reader: &mut BufReader<TcpStream>,
    cfg: &ServerConfig,
) -> Result<Request, ReadError> {
    // Between requests the connection may idle up to `idle_timeout`;
    // once the first byte of a request line lands, the stricter
    // `io_timeout` governs the rest of the head and the body.
    let _ = reader.get_ref().set_read_timeout(Some(effective_timeout(cfg.idle_timeout)));
    let mut line = String::new();
    take_request_line(reader, &mut line)?;
    let _ = reader.get_ref().set_read_timeout(Some(effective_timeout(cfg.io_timeout)));

    let mut parts = line.split_whitespace();
    let method =
        parts.next().ok_or_else(|| ReadError::Bad("empty request line".into()))?.to_string();
    let path =
        parts.next().ok_or_else(|| ReadError::Bad("missing request path".into()))?.to_string();
    let version = parts.next().ok_or_else(|| ReadError::Bad("missing HTTP version".into()))?;
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(ReadError::Bad(format!("unsupported protocol {other}"))),
    };

    let mut content_length: Option<usize> = None;
    let mut connection_close = false;
    let mut connection_keep_alive = false;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        take_line(reader, &mut line)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD {
            return Err(ReadError::Bad("request head too large".into()));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.3: duplicate or conflicting Content-Length
            // headers are a framing attack vector (request smuggling);
            // reject them outright rather than picking one.
            let parsed: usize = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("invalid Content-Length `{value}`")))?;
            if content_length.is_some() {
                return Err(ReadError::Bad("duplicate Content-Length header".into()));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // We never advertise chunked support; a body we cannot frame
            // must be refused, not silently read as length 0.
            return Err(ReadError::Unsupported(format!(
                "Transfer-Encoding `{value}` is not supported; send a Content-Length body"
            )));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    connection_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    connection_keep_alive = true;
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ReadError::Bad(format!("body exceeds {MAX_BODY} bytes")));
    }
    // Grow the body buffer with the bytes that actually arrive instead
    // of trusting Content-Length up front: a client declaring 64MB and
    // then stalling holds only what it sent, not the declared size.
    let mut body = Vec::new();
    Read::by_ref(reader)
        .take(content_length as u64)
        .read_to_end(&mut body)
        .map_err(|e| ReadError::Bad(format!("short body: {e}")))?;
    if body.len() != content_length {
        return Err(ReadError::Bad(format!(
            "short body: got {} of {content_length} declared bytes",
            body.len()
        )));
    }
    let keep_alive =
        if http11 { !connection_close } else { connection_keep_alive && !connection_close };
    Ok(Request { method, path, body, keep_alive })
}

/// Reads the request line, mapping "nothing arrived" (peer closed, or
/// idle timeout while keep-alive) to [`ReadError::Closed`].
fn take_request_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<(), ReadError> {
    let mut limited = Read::by_ref(reader).take(MAX_HEAD as u64 + 2);
    match limited.read_line(line) {
        Ok(0) => Err(ReadError::Closed),
        Ok(_) if !line.ends_with('\n') => Err(ReadError::Bad("truncated request line".into())),
        Ok(_) => {
            trim_line_ending(line);
            Ok(())
        }
        Err(e) => {
            if line.is_empty()
                && matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
            {
                // Idle keep-alive connection ran out its grace period.
                Err(ReadError::Closed)
            } else {
                Err(ReadError::Bad(format!("read failure: {e}")))
            }
        }
    }
}

/// Reads a header line (after the request line); any failure here is a
/// malformed request, not a clean close.
fn take_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), ReadError> {
    // Cap the line read so a malicious peer cannot grow memory.
    let mut limited = Read::by_ref(reader).take(MAX_HEAD as u64 + 2);
    limited.read_line(line).map_err(|e| ReadError::Bad(format!("read failure: {e}")))?;
    if !line.ends_with('\n') {
        return Err(ReadError::Bad("truncated header line".into()));
    }
    trim_line_ending(line);
    Ok(())
}

fn trim_line_ending(line: &mut String) {
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
}

fn route(req: &Request, registry: &Arc<ModelRegistry>) -> Response {
    // Routing is path-based; the query string only carries options
    // (currently `?variant=` on the score endpoints).
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            "OK",
            &json::object([
                ("status", Value::String("ok".to_string())),
                ("models", Value::Number(registry.len() as f64)),
                ("default", registry.default_name().map(Value::String).unwrap_or(Value::Null)),
            ]),
        ),
        ("GET", ["models"]) => list_models(registry),
        ("GET", ["model"]) => match registry.default_pool() {
            Some(pool) => {
                Response::json(200, "OK", &model_info(pool.model(), Some(pool.n_workers())))
            }
            None => Response::error(404, "Not Found", "no default model registered"),
        },
        ("GET", ["model", name]) => match registry.get(name) {
            Some(pool) => {
                Response::json(200, "OK", &model_info(pool.model(), Some(pool.n_workers())))
            }
            None => unknown_model(name),
        },
        ("POST", ["score"]) => match registry.default_pool() {
            Some(pool) => score(req, &pool, query),
            None => Response::error(404, "Not Found", "no default model registered"),
        },
        ("POST", ["score", name]) => match registry.get(name) {
            Some(pool) => score(req, &pool, query),
            None => unknown_model(name),
        },
        ("POST", ["admin", "reload", name]) => reload_model(req, registry, name),
        ("GET", ["score"] | ["score", _]) => {
            Response::error(405, "Method Not Allowed", "use POST /score")
        }
        _ => Response::error(404, "Not Found", "unknown endpoint"),
    }
}

fn unknown_model(name: &str) -> Response {
    Response::error(404, "Not Found", &format!("no model named `{name}` (see GET /models)"))
}

fn list_models(registry: &Arc<ModelRegistry>) -> Response {
    let models: Vec<Value> = registry
        .names()
        .into_iter()
        .filter_map(|name| {
            // An entry can be removed between names() and get(); skip it.
            let pool = registry.get(&name)?;
            let meta = pool.model().meta();
            Some(json::object([
                ("name", Value::String(name)),
                ("dataset", Value::String(meta.dataset.clone())),
                ("teacher", Value::String(meta.teacher.clone())),
                ("input_dim", Value::Number(pool.model().input_dim() as f64)),
                ("n_train", Value::Number(meta.n_train as f64)),
            ]))
        })
        .collect();
    Response::json(
        200,
        "OK",
        &json::object([
            ("default", registry.default_name().map(Value::String).unwrap_or(Value::Null)),
            ("models", Value::Array(models)),
        ]),
    )
}

fn reload_model(req: &Request, registry: &Arc<ModelRegistry>, name: &str) -> Response {
    // Optional body: {"path": "/new/model/file"}. An empty body reloads
    // from the entry's remembered source file.
    let explicit_path = if req.body.is_empty() {
        None
    } else {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
        };
        let parsed = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, "Bad Request", &e.to_string()),
        };
        match parsed.get("path").map(|p| p.as_str()) {
            Some(Some(p)) => Some(p.to_string()),
            Some(None) => return Response::error(400, "Bad Request", "\"path\" must be a string"),
            None => return Response::error(400, "Bad Request", "expected {\"path\": \"...\"}"),
        }
    };
    match registry.reload(name, explicit_path.as_deref().map(Path::new)) {
        Ok(()) => {
            let info = registry
                .get(name)
                .map(|pool| model_info(pool.model(), Some(pool.n_workers())))
                .unwrap_or(Value::Null);
            Response::json(
                200,
                "OK",
                &json::object([("reloaded", Value::String(name.to_string())), ("model", info)]),
            )
        }
        Err(e @ RegistryError::UnknownModel(_)) => {
            Response::error(404, "Not Found", &e.to_string())
        }
        Err(
            e @ (RegistryError::NoSourcePath(_)
            | RegistryError::InvalidName(_)
            | RegistryError::TeacherMismatch { .. }
            | RegistryError::TeacherKindMismatch { .. }),
        ) => Response::error(409, "Conflict", &e.to_string()),
        Err(e @ RegistryError::Load(_)) => {
            Response::error(422, "Unprocessable Entity", &e.to_string())
        }
    }
}

/// Model metadata document. `workers` is the serving pool's resolved
/// worker-thread count when the model is behind a pool (`GET /model`);
/// the offline CLI `info` command has no pool and omits the field.
pub(crate) fn model_info(model: &ServedModel, workers: Option<usize>) -> Value {
    let meta = model.meta();
    let cfg = model.model().config();
    let cal = model.model().calibration();
    let mut fields = vec![
        ("dataset", Value::String(meta.dataset.clone())),
        ("teacher", Value::String(meta.teacher.clone())),
        ("n_train", Value::Number(meta.n_train as f64)),
        ("input_dim", Value::Number(model.input_dim() as f64)),
        ("ensemble_size", Value::Number(model.model().ensemble().len() as f64)),
        ("hidden", Value::Array(cfg.hidden.iter().map(|&h| Value::Number(h as f64)).collect())),
        ("t_steps", Value::Number(cfg.t_steps as f64)),
        ("seed", Value::Number(cfg.seed as f64)),
        (
            "calibration",
            json::object([("min", Value::Number(cal.min)), ("range", Value::Number(cal.range))]),
        ),
        ("format_version", Value::Number(crate::persist::FORMAT_VERSION as f64)),
    ];
    fields.push((
        "variants",
        Value::Array(model.variants().iter().map(|v| Value::String(v.to_string())).collect()),
    ));
    if let Some(teacher) = model.teacher() {
        let tcal = teacher.calibration();
        fields.push((
            "teacher_snapshot",
            json::object([
                ("kind", Value::String(teacher.kind().name().to_string())),
                (
                    "calibration",
                    json::object([
                        ("min", Value::Number(tcal.min)),
                        ("range", Value::Number(tcal.range)),
                    ]),
                ),
            ]),
        ));
    }
    if let Some(n) = workers {
        fields.push(("workers", Value::Number(n as f64)));
    }
    json::object(fields)
}

/// Teacher-snapshot metadata document (the CLI `info` command on a
/// teacher file; servers report teachers inline via `model_info`).
pub(crate) fn teacher_info(teacher: &crate::model::TeacherModel) -> Value {
    let meta = teacher.meta();
    let cal = teacher.calibration();
    json::object([
        ("record", Value::String("teacher".to_string())),
        ("dataset", Value::String(meta.dataset.clone())),
        ("teacher", Value::String(meta.teacher.clone())),
        ("kind", Value::String(teacher.kind().name().to_string())),
        ("n_train", Value::Number(meta.n_train as f64)),
        ("input_dim", Value::Number(teacher.input_dim() as f64)),
        (
            "calibration",
            json::object([("min", Value::Number(cal.min)), ("range", Value::Number(cal.range))]),
        ),
        ("format_version", Value::Number(crate::persist::FORMAT_VERSION as f64)),
    ])
}

/// The scoring target a request names via `?variant=`.
enum VariantSelect {
    Single(Variant),
    Both,
}

/// Parses `?variant=` out of a query string; absent means booster.
/// Unknown query keys are ignored; an unknown variant value is a 400.
fn parse_variant(query: Option<&str>) -> Result<VariantSelect, String> {
    let Some(query) = query else {
        return Ok(VariantSelect::Single(Variant::Booster));
    };
    let mut select = VariantSelect::Single(Variant::Booster);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "variant" {
            continue;
        }
        select = match value {
            "both" => VariantSelect::Both,
            other => match Variant::from_name(other) {
                Some(v) => VariantSelect::Single(v),
                None => {
                    return Err(format!("unknown variant `{other}` (want booster|teacher|both)"))
                }
            },
        };
    }
    Ok(select)
}

/// Maps a scoring failure to its HTTP shape: a missing teacher is a
/// 404 (the variant does not exist on this model), everything else is
/// a request-level 422.
fn score_error(e: &ScoreError) -> Response {
    match e {
        ScoreError::TeacherNotLoaded => Response::error(404, "Not Found", &e.to_string()),
        _ => Response::error(422, "Unprocessable Entity", &e.to_string()),
    }
}

fn score(req: &Request, pool: &ScoringPool, query: Option<&str>) -> Response {
    let select = match parse_variant(query) {
        Ok(s) => s,
        Err(msg) => return Response::error(400, "Bad Request", &msg),
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let parsed = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "Bad Request", &e.to_string()),
    };
    let rows = match parsed.get("rows").and_then(Value::as_array) {
        Some(r) => r,
        None => return Response::error(400, "Bad Request", "expected {\"rows\": [[...], ...]}"),
    };
    let matrix = match rows_to_matrix(rows) {
        Ok(m) => m,
        Err(msg) => return Response::error(400, "Bad Request", &msg),
    };
    // Hand the parsed batch to the pool as-is: shards borrow row ranges
    // from this one shared allocation instead of copying.
    let batch = Arc::new(matrix);
    match select {
        VariantSelect::Single(variant) => match pool.score_shared_variant(&batch, variant) {
            Ok(scores) => Response::json(
                200,
                "OK",
                &json::object([
                    ("scores", json::number_array(&scores)),
                    ("n", Value::Number(scores.len() as f64)),
                    ("variant", Value::String(variant.name().to_string())),
                ]),
            ),
            Err(e) => score_error(&e),
        },
        VariantSelect::Both => {
            // Teacher first: a booster-only model 404s before any
            // booster cycles are spent. Both sides score the same shared
            // batch, so the pair is row-aligned by construction.
            let teacher = match pool.score_shared_variant(&batch, Variant::Teacher) {
                Ok(s) => s,
                Err(e) => return score_error(&e),
            };
            let booster = match pool.score_shared_variant(&batch, Variant::Booster) {
                Ok(s) => s,
                Err(e) => return score_error(&e),
            };
            Response::json(
                200,
                "OK",
                &json::object([
                    ("booster", json::number_array(&booster)),
                    ("teacher", json::number_array(&teacher)),
                    ("n", Value::Number(booster.len() as f64)),
                    ("variant", Value::String("both".to_string())),
                ]),
            )
        }
    }
}

pub(crate) fn rows_to_matrix(rows: &[Value]) -> Result<Matrix, String> {
    if rows.is_empty() {
        return Ok(Matrix::zeros(0, 0));
    }
    let mut data: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut width: Option<usize> = None;
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().ok_or_else(|| format!("row {i} is not an array"))?;
        let parsed: Vec<f64> = cells
            .iter()
            .map(|c| c.as_f64().ok_or_else(|| format!("row {i} has a non-numeric cell")))
            .collect::<Result<_, _>>()?;
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(format!("row {i} has {} cells, expected {w}", parsed.len()))
            }
            _ => {}
        }
        data.push(parsed);
    }
    if width == Some(0) {
        return Err("rows are empty arrays".to_string());
    }
    Matrix::from_rows(&data).map_err(|e| e.to_string())
}
