//! Minimal HTTP/1.1 JSON scoring server over `std::net::TcpListener`.
//!
//! Endpoints:
//!
//! * `POST /score` — body `{"rows": [[f64, …], …]}`, response
//!   `{"scores": [f64, …], "n": k}`. Scores go through the shared
//!   [`ScoringPool`], so they match in-process
//!   [`ServedModel::score_rows`] bit for bit.
//! * `GET /healthz` — liveness probe.
//! * `GET /model` — model metadata (provenance, dims, calibration).
//!
//! One thread per connection (`Connection: close` semantics); the
//! heavy lifting is sharded across the pool's fixed worker set, so
//! accept-side threads stay I/O-bound. Request headers and bodies are
//! size-capped before any allocation happens.

use crate::json::{self, Value};
use crate::model::ServedModel;
use crate::pool::{PoolConfig, ScoringPool};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use uadb_linalg::Matrix;

/// Upper bound on request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on request body.
const MAX_BODY: usize = 64 * 1024 * 1024;
/// Consecutive accept failures tolerated before the listener is declared
/// dead and `run()` returns the error.
const MAX_ACCEPT_FAILURES: u32 = 100;
/// Per-connection socket read/write timeout: a stalled or silent client
/// frees its thread instead of pinning it forever.
const IO_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// A bound scoring server (not yet accepting).
pub struct Server {
    listener: TcpListener,
    pool: Arc<ScoringPool>,
}

/// Handle to a server running on a background thread (used by the CLI's
/// foreground mode indirectly and by tests directly).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spins up the scoring pool.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: Arc<ServedModel>,
        pool_cfg: PoolConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(ScoringPool::new(model, pool_cfg));
        Ok(Server { listener, pool })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever on the calling thread.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let thread =
            std::thread::Builder::new().name("uadb-serve-accept".to_string()).spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })?;
        Ok(ServerHandle { addr, stop, thread: Some(thread) })
    }

    fn accept_loop(&self, stop: &AtomicBool) -> io::Result<()> {
        let mut consecutive_failures = 0u32;
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    consecutive_failures = 0;
                    let pool = Arc::clone(&self.pool);
                    // Thread-per-connection: requests are one-shot
                    // (Connection: close) and scoring itself runs on the
                    // fixed pool, so these threads are short-lived and
                    // I/O-bound.
                    let _ = std::thread::Builder::new()
                        .name("uadb-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &pool));
                }
                Err(e) => {
                    // Transient accept errors (aborted handshake, EMFILE
                    // under fd pressure) shed the connection and keep
                    // serving; the backoff keeps an exhaustion burst from
                    // spinning this loop hot. A long unbroken run of
                    // failures means the listener itself is dead — exit
                    // with the error so a supervisor can restart us.
                    consecutive_failures += 1;
                    if consecutive_failures >= MAX_ACCEPT_FAILURES {
                        return Err(e);
                    }
                    eprintln!("uadb-serve: accept failed: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
        Ok(())
    }
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// connection threads finish their single request independently.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, value: &Value) -> Self {
        Self { status, reason, body: json::to_string(value) }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self::json(status, reason, &json::object([("error", Value::String(message.to_string()))]))
    }
}

fn handle_connection(stream: TcpStream, pool: &ScoringPool) {
    let peer = stream.peer_addr().ok();
    // A peer that connects and goes silent must not hold this thread
    // hostage; timed-out reads surface as a 400/short-body error below.
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(req) => route(&req, pool),
        Err(e) => Response::error(400, "Bad Request", &e),
    };
    let mut stream = reader.into_inner();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason,
        response.body.len()
    );
    // The peer may have gone away; nothing useful to do about it.
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(response.body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| {
            if let Some(p) = peer {
                eprintln!("uadb-serve: write to {p} failed: {e}");
            }
        });
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut line = String::new();
    take_line(reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("missing request path")?.to_string();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        take_line(reader, &mut line)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD {
            return Err("request head too large".to_string());
        }
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| "invalid Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body exceeds {MAX_BODY} bytes"));
    }
    // Grow the body buffer with the bytes that actually arrive instead
    // of trusting Content-Length up front: a client declaring 64MB and
    // then stalling holds only what it sent, not the declared size.
    let mut body = Vec::new();
    Read::by_ref(reader)
        .take(content_length as u64)
        .read_to_end(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    if body.len() != content_length {
        return Err(format!("short body: got {} of {content_length} declared bytes", body.len()));
    }
    Ok(Request { method, path, body })
}

fn take_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> Result<(), String> {
    // Cap the line read so a malicious peer cannot grow memory.
    let mut limited = Read::by_ref(reader).take(MAX_HEAD as u64 + 2);
    limited.read_line(line).map_err(|e| format!("read failure: {e}"))?;
    if !line.ends_with('\n') {
        return Err("truncated request line".to_string());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(())
}

fn route(req: &Request, pool: &ScoringPool) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            "OK",
            &json::object([
                ("status", Value::String("ok".to_string())),
                ("model", Value::String(pool.model().meta().dataset.clone())),
            ]),
        ),
        ("GET", "/model") => Response::json(200, "OK", &model_info(pool.model())),
        ("POST", "/score") => score(req, pool),
        ("GET", "/score") => Response::error(405, "Method Not Allowed", "use POST /score"),
        _ => Response::error(404, "Not Found", "unknown endpoint"),
    }
}

pub(crate) fn model_info(model: &ServedModel) -> Value {
    let meta = model.meta();
    let cfg = model.model().config();
    let cal = model.model().calibration();
    json::object([
        ("dataset", Value::String(meta.dataset.clone())),
        ("teacher", Value::String(meta.teacher.clone())),
        ("n_train", Value::Number(meta.n_train as f64)),
        ("input_dim", Value::Number(model.input_dim() as f64)),
        ("ensemble_size", Value::Number(model.model().ensemble().len() as f64)),
        ("hidden", Value::Array(cfg.hidden.iter().map(|&h| Value::Number(h as f64)).collect())),
        ("t_steps", Value::Number(cfg.t_steps as f64)),
        ("seed", Value::Number(cfg.seed as f64)),
        (
            "calibration",
            json::object([("min", Value::Number(cal.min)), ("range", Value::Number(cal.range))]),
        ),
        ("format_version", Value::Number(crate::persist::FORMAT_VERSION as f64)),
    ])
}

fn score(req: &Request, pool: &ScoringPool) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "Bad Request", "body is not UTF-8"),
    };
    let parsed = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, "Bad Request", &e.to_string()),
    };
    let rows = match parsed.get("rows").and_then(Value::as_array) {
        Some(r) => r,
        None => return Response::error(400, "Bad Request", "expected {\"rows\": [[...], ...]}"),
    };
    let matrix = match rows_to_matrix(rows) {
        Ok(m) => m,
        Err(msg) => return Response::error(400, "Bad Request", &msg),
    };
    match pool.score(&matrix) {
        Ok(scores) => Response::json(
            200,
            "OK",
            &json::object([
                ("scores", json::number_array(&scores)),
                ("n", Value::Number(scores.len() as f64)),
            ]),
        ),
        Err(e) => Response::error(422, "Unprocessable Entity", &e.to_string()),
    }
}

pub(crate) fn rows_to_matrix(rows: &[Value]) -> Result<Matrix, String> {
    if rows.is_empty() {
        return Ok(Matrix::zeros(0, 0));
    }
    let mut data: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut width: Option<usize> = None;
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_array().ok_or_else(|| format!("row {i} is not an array"))?;
        let parsed: Vec<f64> = cells
            .iter()
            .map(|c| c.as_f64().ok_or_else(|| format!("row {i} has a non-numeric cell")))
            .collect::<Result<_, _>>()?;
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(format!("row {i} has {} cells, expected {w}", parsed.len()))
            }
            _ => {}
        }
        data.push(parsed);
    }
    if width == Some(0) {
        return Err("rows are empty arrays".to_string());
    }
    Matrix::from_rows(&data).map_err(|e| e.to_string())
}
