//! Minimal JSON support for the scoring API.
//!
//! The build environment has no registry access, so instead of `serde`
//! this module provides a small recursive-descent parser and writer for
//! the handful of shapes the server exchanges (`{"rows": [[f64, …], …]}`
//! in, `{"scores": [f64, …]}` out). Numbers round-trip exactly: Rust's
//! `f64` Display emits the shortest representation that parses back to
//! the same bits, which is what lets the HTTP integration tests demand
//! bit-identical scores.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by [`parse`] (stack-safety guard for
/// untrusted request bodies).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let s = p.bytes.get(p.pos..p.pos + 4).ok_or_else(|| p.err("truncated \\u escape"))?;
            // from_str_radix would accept a leading '+'; JSON requires
            // exactly four hex digits.
            if !s.iter().all(u8::is_ascii_hexdigit) {
                return Err(p.err("invalid \\u escape"));
            }
            let v = u32::from_str_radix(std::str::from_utf8(s).unwrap(), 16).unwrap();
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair handling.
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        // Enforce the JSON grammar exactly (RFC 8259 §6): Rust's f64
        // parser is more lenient (`01`, `1.`, `.5`), and accepting those
        // here would silently diverge from every conforming peer.
        let start = self.pos;
        let invalid = JsonError { offset: start, message: "invalid number" };
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(invalid); // leading zero (e.g. "01")
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(invalid), // bare "-" or no integer part
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(invalid); // "1."
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(invalid); // "1e" / "1e+"
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().ok().filter(|v| v.is_finite()).map(Value::Number).ok_or(invalid)
    }
}

/// Serialises a value to compact JSON. Non-finite numbers (which JSON
/// cannot represent) become `null`.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                // Rust's Display prints the shortest round-trip form; an
                // integral value gets a trailing ".0"-free form, which is
                // still valid JSON.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds `{"key": value}` objects without importing
/// `BTreeMap` at every call site.
pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a numeric array value.
pub fn number_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_score_request_shape() {
        let v = parse(r#"{"rows": [[1.0, -2.5e-3], [0, 4]]}"#).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_array().unwrap()[1].as_f64(), Some(-2.5e-3));
        assert_eq!(rows[1].as_array().unwrap()[0].as_f64(), Some(0.0));
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.797e308,
            -2.2250738585072014e-308,
            0.1 + 0.2,
        ] {
            let text = to_string(&Value::Number(x));
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x:?} via {text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\n\t\"quoted\" \\ 日本語 \u{0001}";
        let text = to_string(&Value::String(s.to_string()));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        assert!(parse(r#""\ud834""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,", "[1 2]", r#"{"a" 1}"#, "tru", "1.2.3", "[1]x", "\"\u{0007}\"", "nan"]
        {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn number_grammar_is_strict_json() {
        for ok in ["0", "-0.5", "1e5", "1E+3", "10.25e-2", "[0, 123]"] {
            assert!(parse(ok).is_ok(), "rejected valid: {ok}");
        }
        for bad in ["01", "1.", ".5", "-", "1e", "1e+", "+1", "0x10"] {
            assert!(parse(bad).is_err(), "accepted invalid: {bad}");
        }
    }

    #[test]
    fn unicode_escape_requires_four_hex_digits() {
        assert!(parse(r#""\u+041""#).is_err());
        assert!(parse(r#""\u00 1""#).is_err());
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_builder_and_writer() {
        let v = object([
            ("status", Value::String("ok".into())),
            ("n", Value::Number(3.0)),
            ("scores", number_array(&[0.5, 1.0])),
        ]);
        let text = to_string(&v);
        assert_eq!(text, r#"{"n":3,"scores":[0.5,1],"status":"ok"}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }
}
