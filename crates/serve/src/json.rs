//! Minimal JSON support for the scoring API.
//!
//! The build environment has no registry access, so instead of `serde`
//! this module provides a small recursive-descent parser and writer for
//! the handful of shapes the server exchanges (`{"rows": [[f64, …], …]}`
//! in, `{"scores": [f64, …]}` out). Numbers round-trip exactly: the
//! [`shortest`] formatter emits the shortest decimal representation
//! that parses back to the same bits — byte-identical to Rust's `f64`
//! `Display` (pinned by test against that oracle) but without routing
//! every score through the `core::fmt` machinery — which is what lets
//! the HTTP integration tests demand bit-identical scores.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by [`parse`] (stack-safety guard for
/// untrusted request bodies).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            let s = p.bytes.get(p.pos..p.pos + 4).ok_or_else(|| p.err("truncated \\u escape"))?;
            // from_str_radix would accept a leading '+'; JSON requires
            // exactly four hex digits.
            if !s.iter().all(u8::is_ascii_hexdigit) {
                return Err(p.err("invalid \\u escape"));
            }
            let v = u32::from_str_radix(std::str::from_utf8(s).unwrap(), 16).unwrap();
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair handling.
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xdc00..0xe000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        // Enforce the JSON grammar exactly (RFC 8259 §6): Rust's f64
        // parser is more lenient (`01`, `1.`, `.5`), and accepting those
        // here would silently diverge from every conforming peer.
        let start = self.pos;
        let invalid = JsonError { offset: start, message: "invalid number" };
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(invalid); // leading zero (e.g. "01")
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(invalid), // bare "-" or no integer part
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(invalid); // "1."
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                any = true;
            }
            if !any {
                return Err(invalid); // "1e" / "1e+"
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().ok().filter(|v| v.is_finite()).map(Value::Number).ok_or(invalid)
    }
}

/// Serialises a value to compact JSON. Non-finite numbers (which JSON
/// cannot represent) become `null`.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.is_finite() {
                // Shortest round-trip form; an integral value gets a
                // trailing ".0"-free form, which is still valid JSON.
                shortest::write_f64(out, *n);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) mod shortest {
    //! Shortest-round-trip `f64` → decimal formatter.
    //!
    //! Exact Steele & White digit generation (the algorithm behind
    //! Grisu/Ryu's slow paths and Rust's own `flt2dec` Dragon fallback)
    //! on a fixed-capacity big integer: for a finite `x = f × 2^e` it
    //! tracks the scaled value `R/S` together with the half-ulp
    //! boundaries `m⁻/S`, `m⁺/S` and emits decimal digits until the
    //! generated prefix uniquely identifies `x` among all doubles —
    //! i.e. the *shortest* decimal that parses back to the same bits,
    //! with the final digit correctly rounded. No precomputed power
    //! tables, no heap allocation, no `core::fmt` round-trip: all
    //! arithmetic happens in one stack-allocated limb array sized for
    //! the worst case (subnormal scaling needs ~1200 bits).
    //!
    //! The rendered text is pinned byte-identical to Rust's `Display`
    //! (the previous implementation) by an oracle test, so JSON
    //! responses are unchanged across the swap.

    /// 24 × 64 = 1536 bits; the worst case (±half-ulp arithmetic for a
    /// subnormal scaled by 10³²⁴ plus 18 digit-loop shifts) needs ~1200.
    const LIMBS: usize = 24;

    /// Fixed-capacity little-endian big unsigned integer.
    #[derive(Clone, Copy)]
    struct Big {
        limbs: [u64; LIMBS],
        /// Number of live limbs; limbs[len..] are zero.
        len: usize,
    }

    impl Big {
        fn from_u64(v: u64) -> Self {
            let mut limbs = [0u64; LIMBS];
            limbs[0] = v;
            Self { limbs, len: usize::from(v != 0) }
        }

        /// `self <<= n` bits.
        fn shl(&mut self, n: u32) {
            let (limb_shift, bit_shift) = ((n / 64) as usize, n % 64);
            if self.len == 0 {
                return;
            }
            let new_len = self.len + limb_shift + 1;
            debug_assert!(new_len <= LIMBS, "Big overflow in shl");
            let mut i = new_len;
            while i > 0 {
                i -= 1;
                let lo = i.checked_sub(limb_shift).map_or(0, |j| self.limbs[j]);
                let hi = if bit_shift == 0 {
                    0
                } else {
                    i.checked_sub(limb_shift + 1).map_or(0, |j| self.limbs[j] >> (64 - bit_shift))
                };
                self.limbs[i] = (lo << bit_shift) | hi;
            }
            self.len = new_len;
            self.trim();
        }

        /// `self *= m` for any u64 multiplier.
        fn mul_small(&mut self, m: u64) {
            let mut carry: u128 = 0;
            for i in 0..self.len {
                let prod = u128::from(self.limbs[i]) * u128::from(m) + carry;
                self.limbs[i] = prod as u64;
                carry = prod >> 64;
            }
            while carry != 0 {
                debug_assert!(self.len < LIMBS, "Big overflow in mul_small");
                self.limbs[self.len] = carry as u64;
                carry >>= 64;
                self.len += 1;
            }
            self.trim();
        }

        /// `self *= 10^n` in 19-digit chunks (10¹⁹ fits a u64).
        fn mul_pow10(&mut self, mut n: u32) {
            const POW10: [u64; 20] = {
                let mut t = [1u64; 20];
                let mut i = 1;
                while i < 20 {
                    t[i] = t[i - 1] * 10;
                    i += 1;
                }
                t
            };
            while n >= 19 {
                self.mul_small(POW10[19]);
                n -= 19;
            }
            if n > 0 {
                self.mul_small(POW10[n as usize]);
            }
        }

        fn trim(&mut self) {
            while self.len > 0 && self.limbs[self.len - 1] == 0 {
                self.len -= 1;
            }
        }

        fn cmp(&self, other: &Big) -> std::cmp::Ordering {
            if self.len != other.len {
                return self.len.cmp(&other.len);
            }
            for i in (0..self.len).rev() {
                if self.limbs[i] != other.limbs[i] {
                    return self.limbs[i].cmp(&other.limbs[i]);
                }
            }
            std::cmp::Ordering::Equal
        }

        /// `self += other`.
        fn add(&mut self, other: &Big) {
            let mut carry = false;
            let n = self.len.max(other.len);
            for i in 0..n {
                let (s, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
                let (s, c2) = s.overflowing_add(u64::from(carry));
                self.limbs[i] = s;
                carry = c1 || c2;
            }
            self.len = n;
            if carry {
                debug_assert!(self.len < LIMBS, "Big overflow in add");
                self.limbs[self.len] = 1;
                self.len += 1;
            }
        }

        /// `self -= other`; caller guarantees `self >= other`.
        fn sub(&mut self, other: &Big) {
            let mut borrow = false;
            for i in 0..self.len {
                let (d, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
                let (d, b2) = d.overflowing_sub(u64::from(borrow));
                self.limbs[i] = d;
                borrow = b1 || b2;
            }
            debug_assert!(!borrow, "Big underflow in sub");
            self.trim();
        }
    }

    /// Largest digit count a shortest f64 representation needs.
    const MAX_DIGITS: usize = 17;

    /// Generates the shortest correctly-rounded digits of a finite,
    /// positive `x`: returns `(digits, len, k)` with the value equal to
    /// `0.d₁d₂…d_len × 10^k`.
    fn digits(x: f64) -> ([u8; MAX_DIGITS + 1], usize, i32) {
        debug_assert!(x.is_finite() && x > 0.0);
        let bits = x.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // x = f × 2^e with the hidden bit folded in for normal values.
        let (f, e) =
            if exp_field == 0 { (frac, -1074) } else { (frac | (1u64 << 52), exp_field - 1075) };
        // Ties round to even significands, so an even `f` owns its
        // half-ulp boundaries (closed interval) and an odd one does not.
        let even = f & 1 == 0;
        // The lower gap halves at a binade boundary (except at the very
        // bottom, where the subnormal ulp equals the normal one).
        let asym = frac == 0 && exp_field > 1;

        // R/S = x, mp/S = upper half-gap, mm/S = lower half-gap.
        let mut r = Big::from_u64(f);
        let (mut s, mut mp, mut mm);
        if e >= 0 {
            if asym {
                r.shl(e as u32 + 2);
                s = Big::from_u64(4);
                mp = Big::from_u64(2);
                mp.shl(e as u32);
                mm = Big::from_u64(1);
                mm.shl(e as u32);
            } else {
                r.shl(e as u32 + 1);
                s = Big::from_u64(2);
                mp = Big::from_u64(1);
                mp.shl(e as u32);
                mm = mp;
            }
        } else if asym {
            r.shl(2);
            s = Big::from_u64(1);
            s.shl((2 - e) as u32);
            mp = Big::from_u64(2);
            mm = Big::from_u64(1);
        } else {
            r.shl(1);
            s = Big::from_u64(1);
            s.shl((1 - e) as u32);
            mp = Big::from_u64(1);
            mm = mp;
        }

        // Estimate k = ceil(log10(x)) from the binary magnitude
        // (1233/4096 ≈ log10(2)); a digit-position error in either
        // direction is corrected below / by leading-zero stripping.
        let log2x = 64 - f.leading_zeros() as i32 + e;
        let mut k = ((i64::from(log2x) * 1233) >> 12) as i32 + 1;
        if k > 0 {
            s.mul_pow10(k as u32);
        } else if k < 0 {
            let scale = (-k) as u32;
            r.mul_pow10(scale);
            mp.mul_pow10(scale);
            mm.mul_pow10(scale);
        }
        // Keep every generated digit in 0..=9.
        while r.cmp(&s) != std::cmp::Ordering::Less {
            s.mul_small(10);
            k += 1;
        }

        let within = |a: &Big, b: &Big| {
            let ord = a.cmp(b);
            ord == std::cmp::Ordering::Less || (even && ord == std::cmp::Ordering::Equal)
        };

        let mut buf = [0u8; MAX_DIGITS + 1];
        let mut n = 0usize;
        loop {
            r.mul_small(10);
            mp.mul_small(10);
            mm.mul_small(10);
            // Digit by bounded repeated subtraction (R < 10·S).
            let mut d = 0u8;
            while r.cmp(&s) != std::cmp::Ordering::Less {
                r.sub(&s);
                d += 1;
            }
            // low: rounding the emitted prefix down stays within a
            // half-gap of x; high: rounding up does.
            let low = within(&r, &mm);
            let high = {
                let mut t = r;
                t.add(&mp);
                within(&s, &t)
            };
            debug_assert!(n < buf.len(), "shortest f64 exceeded 18 digits");
            if !low && !high {
                buf[n] = d;
                n += 1;
                continue;
            }
            // Terminal digit: pick the nearer of d / d+1 (round up on
            // an exact tie, matching `flt2dec`).
            let round_up = match (low, high) {
                (true, false) => false,
                (false, true) => true,
                _ => {
                    let mut t = r;
                    t.shl(1);
                    t.cmp(&s) != std::cmp::Ordering::Less
                }
            };
            buf[n] = d;
            n += 1;
            if round_up {
                let mut i = n;
                loop {
                    if i == 0 {
                        // 999… rolled all the way over: value is 10^k.
                        buf[0] = 1;
                        n = 1;
                        k += 1;
                        break;
                    }
                    i -= 1;
                    if buf[i] < 9 {
                        buf[i] += 1;
                        n = i + 1;
                        break;
                    }
                    buf[i] = 0;
                }
            }
            break;
        }
        // A high k estimate shows up as leading zeros; stripping them
        // shifts the decimal point, never the value.
        let lead = buf[..n].iter().take_while(|&&d| d == 0).count();
        if lead > 0 {
            buf.copy_within(lead..n, 0);
            n -= lead;
            k -= lead as i32;
        }
        while n > 1 && buf[n - 1] == 0 {
            n -= 1;
        }
        (buf, n, k)
    }

    /// Appends the shortest round-trip decimal form of a finite `x`,
    /// byte-identical to `format!("{x}")` (positional notation, no
    /// exponent, integral values without a trailing `.0`).
    pub(crate) fn write_f64(out: &mut String, x: f64) {
        debug_assert!(x.is_finite());
        if x.is_sign_negative() {
            out.push('-');
        }
        if x == 0.0 {
            out.push('0');
            return;
        }
        let (buf, n, k) = digits(x.abs());
        let digit = |d: u8| (b'0' + d) as char;
        if k <= 0 {
            out.push_str("0.");
            for _ in 0..-k {
                out.push('0');
            }
            for &d in &buf[..n] {
                out.push(digit(d));
            }
        } else if (k as usize) >= n {
            for &d in &buf[..n] {
                out.push(digit(d));
            }
            for _ in 0..(k as usize - n) {
                out.push('0');
            }
        } else {
            for &d in &buf[..k as usize] {
                out.push(digit(d));
            }
            out.push('.');
            for &d in &buf[k as usize..n] {
                out.push(digit(d));
            }
        }
    }
}

/// Convenience: builds `{"key": value}` objects without importing
/// `BTreeMap` at every call site.
pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a numeric array value.
pub fn number_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_score_request_shape() {
        let v = parse(r#"{"rows": [[1.0, -2.5e-3], [0, 4]]}"#).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_array().unwrap()[1].as_f64(), Some(-2.5e-3));
        assert_eq!(rows[1].as_array().unwrap()[0].as_f64(), Some(0.0));
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.797e308,
            -2.2250738585072014e-308,
            0.1 + 0.2,
        ] {
            let text = to_string(&Value::Number(x));
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x:?} via {text}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "line\n\t\"quoted\" \\ 日本語 \u{0001}";
        let text = to_string(&Value::String(s.to_string()));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        assert!(parse(r#""\ud834""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,", "[1 2]", r#"{"a" 1}"#, "tru", "1.2.3", "[1]x", "\"\u{0007}\"", "nan"]
        {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn number_grammar_is_strict_json() {
        for ok in ["0", "-0.5", "1e5", "1E+3", "10.25e-2", "[0, 123]"] {
            assert!(parse(ok).is_ok(), "rejected valid: {ok}");
        }
        for bad in ["01", "1.", ".5", "-", "1e", "1e+", "+1", "0x10"] {
            assert!(parse(bad).is_err(), "accepted invalid: {bad}");
        }
    }

    #[test]
    fn unicode_escape_requires_four_hex_digits() {
        assert!(parse(r#""\u+041""#).is_err());
        assert!(parse(r#""\u00 1""#).is_err());
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_builder_and_writer() {
        let v = object([
            ("status", Value::String("ok".into())),
            ("n", Value::Number(3.0)),
            ("scores", number_array(&[0.5, 1.0])),
        ]);
        let text = to_string(&v);
        assert_eq!(text, r#"{"n":3,"scores":[0.5,1],"status":"ok"}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_serialises_as_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    fn fmt_shortest(x: f64) -> String {
        let mut out = String::new();
        shortest::write_f64(&mut out, x);
        out
    }

    #[test]
    fn shortest_formatter_matches_display_on_adversarial_values() {
        // Byte-identity with the previous `format!("{x}")` serialization
        // is a wire contract: JSON responses must not change across the
        // formatter swap. Cover zeros, subnormals, binade boundaries,
        // famous round-trip troublemakers, and the extremes.
        let cases: &[f64] = &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            3.0,
            0.1,
            0.2,
            0.1 + 0.2,
            1.0 / 3.0,
            2.0 / 3.0,
            0.5,
            1.5,
            2.5,
            9.999999999999999,
            1e16,
            1e17,
            123456789012345680.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0,
            5e-324,
            f64::MAX,
            f64::MIN,
            1.797e308,
            -2.2250738585072014e-308,
            2.0f64.powi(52),
            2.0f64.powi(53),
            2.0f64.powi(53) - 1.0,
            2.0f64.powi(-1022),
            1e300,
            1e-300,
            6.02e23,
            std::f64::consts::PI,
            std::f64::consts::E,
            1.7976931348623157e308,
            f64::from_bits(1),
            // Binade boundaries (asymmetric lower gap).
            2.0,
            4.0,
            2.0f64.powi(100),
            2.0f64.powi(-100),
            // Halfway-looking decimals.
            0.3,
            0.7,
            0.070949,
            123.456,
            8.988465674311579e307,
        ];
        for &x in cases {
            assert_eq!(fmt_shortest(x), format!("{x}"), "mismatch for {x:e}");
        }
    }

    #[test]
    fn shortest_formatter_matches_display_on_bit_pattern_sweep() {
        // A deterministic wide sweep over the bit space: every exponent
        // stratum gets pseudo-random mantissas (xorshift64*).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut checked = 0usize;
        for exp in 0..2047u64 {
            for _ in 0..8 {
                let bits = (exp << 52) | (next() & ((1u64 << 52) - 1)) | (next() & (1 << 63));
                let x = f64::from_bits(bits);
                assert!(x.is_finite());
                assert_eq!(fmt_shortest(x), format!("{x}"), "mismatch for bits {bits:#x}");
                checked += 1;
            }
        }
        assert!(checked > 16_000);
    }

    proptest::proptest! {
        #[test]
        fn formatted_f64_round_trips(
            exp in 0u64..2047,
            frac in 0u64..(1u64 << 52),
            neg in proptest::bool::ANY,
        ) {
            let bits = (u64::from(neg) << 63) | (exp << 52) | frac;
            let x = f64::from_bits(bits);
            let text = fmt_shortest(x);
            // parse() rejects "-0"? No: valid JSON. Round-trip must be
            // bit-exact, and the text must match the Display oracle.
            let back: f64 = text.parse().unwrap();
            proptest::prop_assert_eq!(back.to_bits(), x.to_bits(), "via {}", &text);
            proptest::prop_assert_eq!(&text, &format!("{x}"));
        }
    }
}
