//! Versioned binary persistence for [`ServedModel`] and
//! [`TeacherModel`] snapshots.
//!
//! Container layout (all integers and floats little-endian):
//!
//! ```text
//! magic   b"UADB"
//! version u32 (currently 3)
//! record  u8 — 1 = booster, 2 = teacher snapshot (version ≥ 2 only)
//! payload record-specific (below)
//! trailer b"BDAU"
//! ```
//!
//! Booster payload (record 1; also the entire body of legacy version-1
//! files, which predate the record byte and still load):
//!
//! ```text
//! meta     dataset: str, teacher: str, n_train: u64
//! scaler   d: u64, means: d×f64, stds: d×f64
//! calib    min: f64, range: f64
//! config   t_steps, epochs_per_step, batch_size, cv_folds, seed: u64,
//!          learning_rate: f64, hidden: u64-len + u64s,
//!          warm_start: u8, correction: u8
//! models   n_members: u64, then per member:
//!            activation: u8, n_layers: u64, per layer:
//!              in_dim: u64, out_dim: u64,
//!              weights: (in·out)×f64 row-major, bias: out×f64
//! baseline (version ≥ 3) present: u8, then when 1:
//!            n_buckets: u64, counts: n_buckets×u64,
//!            threshold: f64, anomaly_rate: f64, n: u64
//! ```
//!
//! The baseline section holds the train-time model-quality baseline
//! (calibrated score distribution + anomaly rate at the calibration
//! threshold) the drift plane compares live traffic against. It sits
//! **after** the ensemble so every earlier field keeps its version-2
//! offset; version ≤ 2 files load with no baseline and re-saving such a
//! model upgrades the file to version 3 (still baseline-less — a
//! baseline can only be captured at training time).
//!
//! Teacher payload (record 2):
//!
//! ```text
//! meta     dataset: str, teacher: str, n_train: u64
//! scaler   d: u64, means: d×f64, stds: d×f64
//! calib    min: f64, range: f64   (min-max over teacher train scores)
//! snapshot kind-tag: u8, then the detector's fitted-state payload
//!          (see uadb_detectors::snapshot for per-detector layouts)
//! ```
//!
//! Strings are `u64` byte length + UTF-8. Floats are stored as raw IEEE
//! bits, so a load reproduces scoring **bit-identically** (asserted by
//! the round-trip property tests in `tests/persistence.rs` and
//! `tests/teacher.rs`, and pinned against checked-in fixtures by
//! `tests/golden.rs`). The version field gates layout changes; readers
//! reject versions they do not know, and the trailer catches truncated
//! writes.

use crate::model::{ModelBaseline, ModelMeta, ServedModel, TeacherModel};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use uadb::{CorrectionScale, ScoreCalibration, UadbConfig, UadbModel};
use uadb_data::preprocess::Standardizer;
use uadb_detectors::snapshot::{self, SnapshotError};
use uadb_linalg::Matrix;
use uadb_nn::mlp::Activation;
use uadb_nn::{linear::Linear, Mlp};

/// File magic (start) and trailer (end).
pub const MAGIC: [u8; 4] = *b"UADB";
const TRAILER: [u8; 4] = *b"BDAU";

/// Current format version.
pub const FORMAT_VERSION: u32 = 3;

/// Record-type byte of a distilled booster bundle.
pub const RECORD_BOOSTER: u8 = 1;
/// Record-type byte of a fitted teacher snapshot.
pub const RECORD_TEACHER: u8 = 2;

/// Sanity caps while reading untrusted files: any length beyond these is
/// treated as corruption rather than an allocation request.
const MAX_STR: u64 = 1 << 20;
const MAX_DIM: u64 = 1 << 24;
const MAX_MEMBERS: u64 = 1 << 12;
const MAX_LAYERS: u64 = 1 << 8;
const MAX_BASELINE_BUCKETS: u64 = 1 << 10;

/// Errors from [`save`] / [`load`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `UADB` magic.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// Structurally invalid content (with a description of what).
    Corrupt(&'static str),
    /// The in-memory model is not servable and [`save`] /
    /// [`save_teacher`] refused to write it (e.g. non-finite calibration
    /// constants, NaN-bearing fitted teacher state). Writing it anyway
    /// would produce a file every loader rejects.
    InvalidModel(&'static str),
    /// The file holds a different record type than the caller asked for
    /// (e.g. a teacher snapshot passed where a booster is expected).
    WrongRecord {
        /// What the caller wanted (`"booster"` / `"teacher"`).
        expected: &'static str,
        /// What the file contains.
        found: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o failure: {e}"),
            PersistError::BadMagic => write!(f, "not a UADB model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "model format version {v} is newer than supported ({FORMAT_VERSION})")
            }
            PersistError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
            PersistError::InvalidModel(what) => {
                write!(f, "model is not servable and was not written: {what}")
            }
            PersistError::WrongRecord { expected, found } => {
                write!(f, "file holds a {found} record, expected a {expected}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => PersistError::Io(io),
            SnapshotError::UnknownKind(_) => PersistError::Corrupt("unknown detector kind tag"),
            SnapshotError::Corrupt(what) => PersistError::Corrupt(what),
            SnapshotError::InvalidState(what) => PersistError::InvalidModel(what),
        }
    }
}

/// Writes a model in the current format.
///
/// Refuses models that no loader would accept back — mirroring the
/// checks [`load`] applies — so corruption is caught at save time with
/// [`PersistError::InvalidModel`] rather than as a mysterious
/// `Corrupt` (or, historically, a panic) on the loading side.
pub fn save<W: Write>(model: &ServedModel, mut w: W) -> Result<(), PersistError> {
    if !model.model().calibration().is_valid() {
        return Err(PersistError::InvalidModel("non-finite calibration constants"));
    }
    let scaler = model.standardizer();
    validate_scaler_for_save(scaler)?;
    validate_baseline_for_save(model.baseline())?;
    w.write_all(&MAGIC)?;
    write_u32(&mut w, FORMAT_VERSION)?;
    w.write_all(&[RECORD_BOOSTER])?;
    write_meta(&mut w, model.meta())?;
    write_scaler(&mut w, scaler)?;
    // Calibration.
    let cal = model.model().calibration();
    write_f64(&mut w, cal.min)?;
    write_f64(&mut w, cal.range)?;
    // Config.
    let cfg = model.model().config();
    write_u64(&mut w, cfg.t_steps as u64)?;
    write_u64(&mut w, cfg.epochs_per_step as u64)?;
    write_u64(&mut w, cfg.batch_size as u64)?;
    write_u64(&mut w, cfg.cv_folds as u64)?;
    write_u64(&mut w, cfg.seed)?;
    write_f64(&mut w, cfg.learning_rate)?;
    write_u64(&mut w, cfg.hidden.len() as u64)?;
    for &h in &cfg.hidden {
        write_u64(&mut w, h as u64)?;
    }
    w.write_all(&[u8::from(cfg.warm_start)])?;
    w.write_all(&[match cfg.correction {
        CorrectionScale::Variance => 0u8,
        CorrectionScale::StdDev => 1u8,
    }])?;
    // Ensemble.
    let ensemble = model.model().ensemble();
    write_u64(&mut w, ensemble.len() as u64)?;
    for member in ensemble {
        w.write_all(&[match member.activation() {
            Activation::Sigmoid => 0u8,
            Activation::Identity => 1u8,
        }])?;
        write_u64(&mut w, member.n_layers() as u64)?;
        for layer in member.layers() {
            write_u64(&mut w, layer.input_dim() as u64)?;
            write_u64(&mut w, layer.output_dim() as u64)?;
            write_f64s(&mut w, layer.weights().as_slice())?;
            write_f64s(&mut w, layer.bias())?;
        }
    }
    // Baseline (version ≥ 3).
    match model.baseline() {
        None => w.write_all(&[0u8])?,
        Some(b) => {
            w.write_all(&[1u8])?;
            write_u64(&mut w, b.score_counts.len() as u64)?;
            for &c in &b.score_counts {
                write_u64(&mut w, c)?;
            }
            write_f64(&mut w, b.threshold)?;
            write_f64(&mut w, b.anomaly_rate)?;
            write_u64(&mut w, b.n)?;
        }
    }
    w.write_all(&TRAILER)?;
    w.flush()?;
    Ok(())
}

/// Writes a model to a file path.
pub fn save_file(model: &ServedModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    save(model, io::BufWriter::new(file))
}

/// Writes a fitted teacher snapshot in the current format.
///
/// Mirrors [`save`]'s validation contract for the teacher record:
/// non-finite standardiser constants, an invalid calibration, a
/// teacher-name/kind mismatch, or NaN-bearing fitted detector state are
/// all refused with [`PersistError::InvalidModel`] **before any byte is
/// written** (the detector payload is staged in memory first), so a
/// failed save never leaves a partial file.
pub fn save_teacher<W: Write>(teacher: &TeacherModel, mut w: W) -> Result<(), PersistError> {
    if !teacher.calibration().is_valid() {
        return Err(PersistError::InvalidModel("non-finite calibration constants"));
    }
    validate_scaler_for_save(teacher.standardizer())?;
    if teacher.meta().teacher != teacher.kind().name() {
        return Err(PersistError::InvalidModel("teacher metadata does not name its kind"));
    }
    // Stage the detector payload first: a NaN-poisoned fitted state
    // must abort the save with nothing written, and this is also where
    // an unfitted detector is caught.
    let mut detector_payload = Vec::new();
    snapshot::save(teacher.detector(), &mut detector_payload)?;

    w.write_all(&MAGIC)?;
    write_u32(&mut w, FORMAT_VERSION)?;
    w.write_all(&[RECORD_TEACHER])?;
    write_meta(&mut w, teacher.meta())?;
    write_scaler(&mut w, teacher.standardizer())?;
    let cal = teacher.calibration();
    write_f64(&mut w, cal.min)?;
    write_f64(&mut w, cal.range)?;
    w.write_all(&detector_payload)?;
    w.write_all(&TRAILER)?;
    w.flush()?;
    Ok(())
}

/// Writes a teacher snapshot to a file path.
pub fn save_teacher_file(
    teacher: &TeacherModel,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    save_teacher(teacher, io::BufWriter::new(file))
}

/// A decoded model file: whichever record type it holds.
pub enum Record {
    /// A distilled booster bundle.
    Booster(ServedModel),
    /// A fitted teacher snapshot.
    Teacher(TeacherModel),
}

impl Record {
    /// The record's wire name (matches the [`PersistError::WrongRecord`]
    /// vocabulary).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::Booster(_) => "booster",
            Record::Teacher(_) => "teacher",
        }
    }
}

/// Reads whichever record a model file holds, across all supported
/// format versions (version-1 files are always boosters).
pub fn load_record<R: Read>(mut r: R) -> Result<Record, PersistError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version == 0 || version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    // Version 1 predates the record byte: the payload is a booster.
    let record = if version == 1 { RECORD_BOOSTER } else { read_u8(&mut r)? };
    match record {
        RECORD_BOOSTER => Ok(Record::Booster(load_booster_payload(&mut r, version)?)),
        RECORD_TEACHER => Ok(Record::Teacher(load_teacher_payload(&mut r)?)),
        _ => Err(PersistError::Corrupt("unknown record type")),
    }
}

/// Reads whichever record a model file holds, from a path.
pub fn load_record_file(path: impl AsRef<Path>) -> Result<Record, PersistError> {
    let file = std::fs::File::open(path)?;
    load_record(io::BufReader::new(file))
}

/// Reads a booster model written by any supported format version.
/// A teacher-snapshot file is refused with [`PersistError::WrongRecord`].
pub fn load<R: Read>(r: R) -> Result<ServedModel, PersistError> {
    match load_record(r)? {
        Record::Booster(model) => Ok(model),
        found => Err(PersistError::WrongRecord { expected: "booster", found: found.kind_name() }),
    }
}

/// Reads a teacher snapshot. A booster file is refused with
/// [`PersistError::WrongRecord`].
pub fn load_teacher<R: Read>(r: R) -> Result<TeacherModel, PersistError> {
    match load_record(r)? {
        Record::Teacher(teacher) => Ok(teacher),
        found => Err(PersistError::WrongRecord { expected: "teacher", found: found.kind_name() }),
    }
}

/// Reads a teacher snapshot from a file path.
pub fn load_teacher_file(path: impl AsRef<Path>) -> Result<TeacherModel, PersistError> {
    let file = std::fs::File::open(path)?;
    load_teacher(io::BufReader::new(file))
}

/// Reads the booster payload (everything between the record byte and
/// the trailer). `version` gates the trailing sections added after
/// format v2.
fn load_booster_payload<R: Read>(mut r: R, version: u32) -> Result<ServedModel, PersistError> {
    let (meta, standardizer) = read_meta_and_scaler(&mut r)?;
    let calibration = read_calibration(&mut r)?;
    // Config.
    let t_steps = read_u64(&mut r)? as usize;
    let epochs_per_step = read_u64(&mut r)? as usize;
    let batch_size = read_u64(&mut r)? as usize;
    let cv_folds = read_u64(&mut r)? as usize;
    let seed = read_u64(&mut r)?;
    let learning_rate = read_f64(&mut r)?;
    let n_hidden = read_len(&mut r, MAX_LAYERS, "hidden layer count")?;
    let mut hidden = Vec::with_capacity(n_hidden);
    for _ in 0..n_hidden {
        hidden.push(read_len(&mut r, MAX_DIM, "hidden width")?);
    }
    let warm_start = read_bool(&mut r)?;
    let correction = match read_u8(&mut r)? {
        0 => CorrectionScale::Variance,
        1 => CorrectionScale::StdDev,
        _ => return Err(PersistError::Corrupt("unknown correction scale")),
    };
    let cfg = UadbConfig {
        t_steps,
        epochs_per_step,
        batch_size,
        learning_rate,
        hidden,
        cv_folds,
        warm_start,
        correction,
        seed,
        progress: None,
    };
    // Ensemble.
    let n_members = read_len(&mut r, MAX_MEMBERS, "ensemble size")?;
    if n_members == 0 {
        return Err(PersistError::Corrupt("empty ensemble"));
    }
    let mut ensemble = Vec::with_capacity(n_members);
    for _ in 0..n_members {
        let activation = match read_u8(&mut r)? {
            0 => Activation::Sigmoid,
            1 => Activation::Identity,
            _ => return Err(PersistError::Corrupt("unknown activation")),
        };
        let n_layers = read_len(&mut r, MAX_LAYERS, "layer count")?;
        if n_layers == 0 {
            return Err(PersistError::Corrupt("member with no layers"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut expected_in: Option<usize> = None;
        for _ in 0..n_layers {
            let in_dim = read_len(&mut r, MAX_DIM, "layer input width")?;
            let out_dim = read_len(&mut r, MAX_DIM, "layer output width")?;
            if in_dim == 0 || out_dim == 0 {
                return Err(PersistError::Corrupt("zero layer dimension"));
            }
            if let Some(e) = expected_in {
                if e != in_dim {
                    return Err(PersistError::Corrupt("layer dimensions do not chain"));
                }
            }
            expected_in = Some(out_dim);
            if (in_dim as u64).saturating_mul(out_dim as u64) > MAX_DIM {
                return Err(PersistError::Corrupt("layer too large"));
            }
            let weights = read_f64s(&mut r, in_dim * out_dim)?;
            let bias = read_f64s(&mut r, out_dim)?;
            let w = Matrix::from_vec(in_dim, out_dim, weights)
                .map_err(|_| PersistError::Corrupt("weight shape mismatch"))?;
            layers.push(Linear::from_parts(w, bias));
        }
        // Booster members are scorers: anything but a single output
        // column would make `predict_vec` silently interleave columns.
        if expected_in != Some(1) {
            return Err(PersistError::Corrupt("final layer must have one output"));
        }
        ensemble.push(Mlp::from_layers(layers, activation));
    }
    let dim0 = ensemble[0].input_dim();
    if ensemble.iter().any(|m| m.input_dim() != dim0) || dim0 != standardizer.n_features() {
        return Err(PersistError::Corrupt("input widths disagree"));
    }
    // Baseline (version ≥ 3; earlier files simply have none).
    let baseline = if version >= 3 { read_baseline(&mut r)? } else { None };
    read_trailer(&mut r)?;
    let model = UadbModel::from_parts(ensemble, cfg, calibration);
    let mut served = ServedModel::new(model, standardizer, meta);
    served.set_baseline(baseline);
    Ok(served)
}

/// Reads the optional model-quality baseline section.
fn read_baseline<R: Read>(r: &mut R) -> Result<Option<ModelBaseline>, PersistError> {
    if !read_bool(r).map_err(|_| PersistError::Corrupt("invalid baseline presence byte"))? {
        return Ok(None);
    }
    let n_buckets = read_len(r, MAX_BASELINE_BUCKETS, "baseline bucket count")?;
    if n_buckets == 0 {
        return Err(PersistError::Corrupt("baseline with no buckets"));
    }
    let mut score_counts = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        score_counts.push(read_u64(r)?);
    }
    let threshold = read_f64(r)?;
    let anomaly_rate = read_f64(r)?;
    let n = read_u64(r)?;
    if !(0.0..=1.0).contains(&threshold) || !(0.0..=1.0).contains(&anomaly_rate) {
        return Err(PersistError::Corrupt("baseline rates out of range"));
    }
    if score_counts.iter().sum::<u64>() != n {
        return Err(PersistError::Corrupt("baseline counts disagree with sample total"));
    }
    Ok(Some(ModelBaseline { score_counts, anomaly_rate, threshold, n }))
}

/// Reads the teacher payload (everything between the record byte and
/// the trailer).
fn load_teacher_payload<R: Read>(mut r: R) -> Result<TeacherModel, PersistError> {
    let (meta, standardizer) = read_meta_and_scaler(&mut r)?;
    let cal = read_calibration(&mut r)?;
    let detector = snapshot::load(&mut r)?;
    if detector.fitted_dim() != standardizer.n_features() {
        return Err(PersistError::Corrupt("teacher width differs from standardizer"));
    }
    if detector.kind().name() != meta.teacher {
        return Err(PersistError::Corrupt("teacher metadata does not name its kind"));
    }
    read_trailer(&mut r)?;
    Ok(TeacherModel::new(detector, standardizer, cal, meta))
}

/// Reads a booster model from a file path.
pub fn load_file(path: impl AsRef<Path>) -> Result<ServedModel, PersistError> {
    let file = std::fs::File::open(path)?;
    load(io::BufReader::new(file))
}

// Shared record-section codecs -----------------------------------------

fn validate_baseline_for_save(baseline: Option<&ModelBaseline>) -> Result<(), PersistError> {
    let Some(b) = baseline else { return Ok(()) };
    if b.score_counts.is_empty() || b.score_counts.len() as u64 > MAX_BASELINE_BUCKETS {
        return Err(PersistError::InvalidModel("baseline bucket count out of range"));
    }
    if !(0.0..=1.0).contains(&b.threshold) || !(0.0..=1.0).contains(&b.anomaly_rate) {
        return Err(PersistError::InvalidModel("baseline rates out of range"));
    }
    if b.score_counts.iter().sum::<u64>() != b.n {
        return Err(PersistError::InvalidModel("baseline counts disagree with sample total"));
    }
    Ok(())
}

fn validate_scaler_for_save(scaler: &Standardizer) -> Result<(), PersistError> {
    if !scaler.means().iter().all(|m| m.is_finite()) {
        return Err(PersistError::InvalidModel("non-finite standardizer mean"));
    }
    if !scaler.stds().iter().all(|s| *s > 0.0 && s.is_finite()) {
        return Err(PersistError::InvalidModel("non-positive standardizer std"));
    }
    Ok(())
}

fn write_meta<W: Write>(w: &mut W, meta: &ModelMeta) -> io::Result<()> {
    write_str(w, &meta.dataset)?;
    write_str(w, &meta.teacher)?;
    write_u64(w, meta.n_train)
}

fn write_scaler<W: Write>(w: &mut W, scaler: &Standardizer) -> io::Result<()> {
    write_u64(w, scaler.n_features() as u64)?;
    write_f64s(w, scaler.means())?;
    write_f64s(w, scaler.stds())
}

fn read_meta_and_scaler<R: Read>(r: &mut R) -> Result<(ModelMeta, Standardizer), PersistError> {
    let dataset = read_str(r)?;
    let teacher = read_str(r)?;
    let n_train = read_u64(r)?;
    let d = read_len(r, MAX_DIM, "feature count")?;
    let means = read_f64s(r, d)?;
    let stds = read_f64s(r, d)?;
    if !means.iter().all(|m| m.is_finite()) {
        // A NaN mean would silently turn every standardised feature —
        // and therefore every served score — into NaN.
        return Err(PersistError::Corrupt("non-finite standardizer mean"));
    }
    if !stds.iter().all(|s| *s > 0.0 && s.is_finite()) {
        return Err(PersistError::Corrupt("non-positive standard deviation"));
    }
    Ok((ModelMeta { dataset, teacher, n_train }, Standardizer::from_parts(means, stds)))
}

fn read_calibration<R: Read>(r: &mut R) -> Result<ScoreCalibration, PersistError> {
    let cal_min = read_f64(r)?;
    let cal_range = read_f64(r)?;
    if !(cal_min.is_finite() && cal_range > 0.0 && cal_range.is_finite()) {
        return Err(PersistError::Corrupt("invalid calibration constants"));
    }
    Ok(ScoreCalibration::from_parts(cal_min, cal_range))
}

fn read_trailer<R: Read>(r: &mut R) -> Result<(), PersistError> {
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    if trailer != TRAILER {
        return Err(PersistError::Corrupt("missing trailer (truncated write?)"));
    }
    Ok(())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn write_f64s<W: Write>(w: &mut W, vs: &[f64]) -> io::Result<()> {
    for &v in vs {
        write_f64(w, v)?;
    }
    Ok(())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_bool<R: Read>(r: &mut R) -> Result<bool, PersistError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(PersistError::Corrupt("invalid boolean")),
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    Ok(f64::from_bits(read_u64(r)?))
}

fn read_len<R: Read>(r: &mut R, cap: u64, what: &'static str) -> Result<usize, PersistError> {
    let v = read_u64(r)?;
    if v > cap {
        return Err(PersistError::Corrupt(what));
    }
    Ok(v as usize)
}

fn read_f64s<R: Read>(r: &mut R, n: usize) -> Result<Vec<f64>, PersistError> {
    // Cap the up-front reservation: `n` comes from an untrusted length
    // field, and a tiny crafted file must not force a huge allocation
    // before EOF is discovered. Genuine data grows the vec as it reads.
    let mut out = Vec::with_capacity(n.min(8192));
    for _ in 0..n {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

fn read_str<R: Read>(r: &mut R) -> Result<String, PersistError> {
    let len = read_len(r, MAX_STR, "string length")?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| PersistError::Corrupt("invalid UTF-8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::tiny_model;

    fn save_to_vec(m: &ServedModel) -> Vec<u8> {
        let mut buf = Vec::new();
        save(m, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = tiny_model(7);
        let bytes = save_to_vec(&m);
        let loaded = load(&bytes[..]).unwrap();
        assert_eq!(loaded.meta(), m.meta());
        assert_eq!(loaded.baseline(), m.baseline());
        assert_eq!(loaded.standardizer(), m.standardizer());
        assert_eq!(loaded.model().calibration(), m.model().calibration());
        assert_eq!(loaded.model().config().hidden, m.model().config().hidden);
        assert_eq!(loaded.model().ensemble().len(), m.model().ensemble().len());
        // Bit-identical parameters.
        for (a, b) in loaded.model().ensemble().iter().zip(m.model().ensemble()) {
            for (la, lb) in a.layers().iter().zip(b.layers()) {
                assert_eq!(la.weights().as_slice(), lb.weights().as_slice());
                assert_eq!(la.bias(), lb.bias());
            }
        }
    }

    #[test]
    fn multi_output_final_layer_is_rejected_on_load() {
        // A file whose member ends in a 2-wide layer would make
        // predict_vec interleave columns into nonsense scores; load()
        // must refuse it outright.
        let m = tiny_model(12);
        let wide = Mlp::new(&uadb_nn::MlpConfig {
            input_dim: m.input_dim(),
            hidden: vec![4],
            output_dim: 2,
            activation: Activation::Sigmoid,
            seed: 0,
        });
        let bad = ServedModel::new(
            UadbModel::from_parts(vec![wide], m.model().config().clone(), m.model().calibration()),
            m.standardizer().clone(),
            m.meta().clone(),
        );
        let mut bytes = Vec::new();
        save(&bad, &mut bytes).unwrap();
        assert!(matches!(
            load(&bytes[..]),
            Err(PersistError::Corrupt("final layer must have one output"))
        ));
    }

    #[test]
    fn save_refuses_non_finite_calibration() {
        let m = tiny_model(13);
        let poisoned = ServedModel::new(
            UadbModel::from_parts(
                m.model().ensemble().to_vec(),
                m.model().config().clone(),
                ScoreCalibration { min: f64::NEG_INFINITY, range: f64::INFINITY },
            ),
            m.standardizer().clone(),
            m.meta().clone(),
        );
        let mut sink = Vec::new();
        assert!(matches!(
            save(&poisoned, &mut sink),
            Err(PersistError::InvalidModel("non-finite calibration constants"))
        ));
        // Nothing was written: a failed save must not leave a partial file.
        assert!(sink.is_empty());
    }

    #[test]
    fn poisoned_training_scores_still_round_trip() {
        // An inf-contaminated training run fits *finite* calibration
        // constants (ScoreCalibration::fit filters non-finite scores), so
        // the resulting model saves and loads cleanly.
        let m = tiny_model(14);
        let cal = ScoreCalibration::fit(&[0.1, f64::INFINITY, 0.9, f64::NAN, f64::NEG_INFINITY]);
        assert!(cal.is_valid());
        let served = ServedModel::new(
            UadbModel::from_parts(m.model().ensemble().to_vec(), m.model().config().clone(), cal),
            m.standardizer().clone(),
            m.meta().clone(),
        );
        let bytes = save_to_vec(&served);
        let loaded = load(&bytes[..]).unwrap();
        assert_eq!(loaded.model().calibration(), cal);
        let probe = Matrix::zeros(3, served.input_dim());
        assert_eq!(loaded.score_rows(&probe).unwrap(), served.score_rows(&probe).unwrap());
    }

    #[test]
    fn on_disk_non_finite_calibration_is_an_error_not_a_panic() {
        // A file corrupted (or written by a pre-validation build) with
        // inf calibration constants must surface as Corrupt from load();
        // historically this path could reach from_parts' assertion.
        let m = tiny_model(15);
        let mut bytes = save_to_vec(&m);
        let cal_offset = 4 + 4 + 1 // magic + version + record type
            + 8 + m.meta().dataset.len() + 8 + m.meta().teacher.len() + 8 // meta
            + 8 + 16 * m.input_dim(); // scaler: d + means + stds
        bytes[cal_offset..cal_offset + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        assert!(matches!(
            load(&bytes[..]),
            Err(PersistError::Corrupt("invalid calibration constants"))
        ));
        // Likewise a NaN standardizer mean (which would otherwise load
        // fine and silently serve NaN scores).
        let mut bytes = save_to_vec(&m);
        let mean_offset = cal_offset - 16 * m.input_dim();
        bytes[mean_offset..mean_offset + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            load(&bytes[..]),
            Err(PersistError::Corrupt("non-finite standardizer mean"))
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let m = tiny_model(8);
        let mut bytes = save_to_vec(&m);
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(load(&wrong[..]), Err(PersistError::BadMagic)));
        // Future version.
        bytes[4] = 99;
        assert!(matches!(load(&bytes[..]), Err(PersistError::UnsupportedVersion(99))));
    }

    #[test]
    fn truncation_is_detected() {
        let m = tiny_model(9);
        let bytes = save_to_vec(&m);
        // Cutting anywhere strictly inside the payload must error, never
        // panic or return a half-model. (Step by a prime to keep the
        // test fast while covering every region of the layout.)
        for cut in (4..bytes.len() - 1).step_by(97) {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Missing trailer only.
        assert!(matches!(
            load(&bytes[..bytes.len() - 4]),
            Err(PersistError::Io(_)) | Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_lengths_are_corruption_not_allocation() {
        let m = tiny_model(10);
        let mut bytes = save_to_vec(&m);
        // The dataset-name length sits right after magic+version+record.
        bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(load(&bytes[..]), Err(PersistError::Corrupt("string length"))));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(3).to_string().contains('3'));
        assert!(PersistError::Corrupt("x").to_string().contains('x'));
        let wrong = PersistError::WrongRecord { expected: "booster", found: "teacher" };
        assert!(wrong.to_string().contains("booster") && wrong.to_string().contains("teacher"));
    }

    /// Strips the version-3 baseline section (presence byte + optional
    /// payload, sitting just before the trailer) from a saved file —
    /// used to synthesise the older layouts, which end at the ensemble.
    fn strip_baseline_section(v3: &[u8]) -> Vec<u8> {
        let body_end = v3.len() - TRAILER.len();
        // present: u8 + n_buckets u64 + counts + threshold +
        // anomaly_rate + n.
        let section = 1 + 8 + 8 * uadb_telemetry::SCORE_BUCKETS + 8 + 8 + 8;
        let start = body_end - section;
        assert_eq!(v3[start], 1, "helper expects a baseline-bearing file");
        let mut out = v3[..start].to_vec();
        out.extend_from_slice(&TRAILER);
        out
    }

    #[test]
    fn legacy_v1_booster_files_still_load() {
        let m = tiny_model(16);
        let v3 = save_to_vec(&m);
        // Synthesise the version-1 layout: version field patched to 1,
        // no record byte, and no baseline section (both postdate v1).
        let stripped = strip_baseline_section(&v3);
        let mut v1 = Vec::new();
        v1.extend_from_slice(&stripped[..4]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&stripped[9..]);
        let loaded = load(&v1[..]).unwrap();
        assert_eq!(loaded.meta(), m.meta());
        assert!(loaded.baseline().is_none(), "v1 files carry no baseline");
        let probe = Matrix::zeros(3, m.input_dim());
        assert_eq!(loaded.score_rows(&probe).unwrap(), m.score_rows(&probe).unwrap());
        // Re-saving a legacy file upgrades it to the current version —
        // byte-for-byte the v3 layout with an absent-baseline marker in
        // place of the baseline it never had.
        let mut resaved = Vec::new();
        save(&loaded, &mut resaved).unwrap();
        let mut expected = stripped[..stripped.len() - TRAILER.len()].to_vec();
        expected.push(0); // baseline absent
        expected.extend_from_slice(&TRAILER);
        assert_eq!(resaved, expected);
        assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), FORMAT_VERSION);
    }

    #[test]
    fn v2_files_load_without_baseline_and_resave_upgrades() {
        let m = tiny_model(18);
        assert!(m.baseline().is_some());
        let v3 = save_to_vec(&m);
        // Synthesise the version-2 layout: record byte present, no
        // baseline section, version field 2.
        let mut v2 = strip_baseline_section(&v3);
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let loaded = load(&v2[..]).unwrap();
        assert!(loaded.baseline().is_none(), "v2 files carry no baseline");
        let probe = Matrix::zeros(3, m.input_dim());
        assert_eq!(loaded.score_rows(&probe).unwrap(), m.score_rows(&probe).unwrap());
        // Re-save upgrades the container version; the model still has
        // no baseline (one can only be captured at training time).
        let mut resaved = Vec::new();
        save(&loaded, &mut resaved).unwrap();
        assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), FORMAT_VERSION);
        assert!(load(&resaved[..]).unwrap().baseline().is_none());
    }

    #[test]
    fn v3_round_trips_baseline_bit_identically() {
        let m = tiny_model(19);
        let bytes = save_to_vec(&m);
        let loaded = load(&bytes[..]).unwrap();
        assert_eq!(loaded.baseline(), m.baseline());
        assert!(loaded.baseline().is_some());
        // save → load → save is byte-identical.
        let mut again = Vec::new();
        save(&loaded, &mut again).unwrap();
        assert_eq!(again, bytes);
    }

    #[test]
    fn corrupt_baseline_sections_are_rejected() {
        let m = tiny_model(20);
        let bytes = save_to_vec(&m);
        let presence_at = bytes.len()
            - TRAILER.len()
            - (1 + 8 + 8 * uadb_telemetry::SCORE_BUCKETS + 8 + 8 + 8);
        assert_eq!(bytes[presence_at], 1);
        // Absurd bucket count: corruption, not an allocation request.
        let mut absurd = bytes.clone();
        absurd[presence_at + 1..presence_at + 9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load(&absurd[..]),
            Err(PersistError::Corrupt("baseline bucket count"))
        ));
        // Invalid presence byte.
        let mut badflag = bytes.clone();
        badflag[presence_at] = 7;
        assert!(matches!(
            load(&badflag[..]),
            Err(PersistError::Corrupt("invalid baseline presence byte"))
        ));
        // A doctored anomaly rate outside [0, 1] is refused.
        let rate_at = bytes.len() - TRAILER.len() - 16;
        let mut badrate = bytes.clone();
        badrate[rate_at..rate_at + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            load(&badrate[..]),
            Err(PersistError::Corrupt("baseline rates out of range"))
        ));
        // And save refuses an in-memory baseline that would be rejected
        // on load (mirror-validation contract).
        let mut poisoned = m.clone();
        let mut b = poisoned.baseline().unwrap().clone();
        b.n += 1;
        poisoned.set_baseline(Some(b));
        let mut sink = Vec::new();
        assert!(matches!(
            save(&poisoned, &mut sink),
            Err(PersistError::InvalidModel("baseline counts disagree with sample total"))
        ));
        assert!(sink.is_empty());
    }

    #[test]
    fn unknown_record_type_is_corrupt_and_version_zero_rejected() {
        let m = tiny_model(17);
        let mut bytes = save_to_vec(&m);
        bytes[8] = 99; // record byte
        assert!(matches!(load(&bytes[..]), Err(PersistError::Corrupt("unknown record type"))));
        let mut zeroed = save_to_vec(&m);
        zeroed[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(load(&zeroed[..]), Err(PersistError::UnsupportedVersion(0))));
    }
}
