//! The servable unit: a fitted booster plus everything inference needs.
//!
//! UADB's deployment story (paper §III) is that the student MLP
//! *replaces* the teacher as the production detector. What the teacher
//! leaves behind is baked in at training time: the pseudo-label scale
//! the ensemble was distilled onto, the z-score constants of the
//! training features, and the score calibration. [`ServedModel`] bundles
//! all of it so a request row travels the exact numeric path a training
//! row did.
//!
//! The paper's *evaluation* story, though, is booster **versus**
//! teacher — so a served name can optionally carry the frozen fitted
//! teacher next to the booster ([`TeacherModel`], attached via
//! [`ServedModel::attach_teacher`]) and requests pick a [`Variant`]:
//! the distilled booster (default), the teacher, or both paired for
//! online A/B.

use std::fmt;
use std::sync::Arc;
use uadb::{ScoreCalibration, ScoreScratch, Uadb, UadbConfig, UadbModel};
use uadb_data::preprocess::Standardizer;
use uadb_data::Dataset;
use uadb_detectors::snapshot::{self, DetectorSnapshot};
use uadb_detectors::{DetectorError, DetectorKind};
use uadb_linalg::Matrix;
use uadb_telemetry::{ScoreSketch, SketchSnapshot};

/// Per-worker reusable scoring workspace: standardised-feature buffer,
/// output staging, and the booster's forward scratch. Grown once, then
/// reused for every request a worker handles — the steady-state scoring
/// path performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct ScoreWorkspace {
    std_rows: Vec<f64>,
    scores: Vec<f64>,
    nn: ScoreScratch,
}

/// Provenance carried in the model file and reported by `GET /model`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Training dataset name.
    pub dataset: String,
    /// Teacher detector display name (e.g. `"IForest"`).
    pub teacher: String,
    /// Number of training rows.
    pub n_train: u64,
}

/// Train-time model-quality baseline: what the calibrated score
/// distribution looked like on the training set, and the anomaly rate
/// at the calibration threshold. The drift plane compares live traffic
/// against this; per-feature train means/variances come from the
/// persisted [`Standardizer`], so the baseline only carries what the
/// standardiser doesn't already hold.
///
/// Captured automatically by every `train*` path and persisted as an
/// optional trailing section of the model container (format v3) —
/// models loaded from older files simply have no baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBaseline {
    /// Calibrated training-score counts over
    /// [`uadb_telemetry::SCORE_BUCKETS`] uniform `[0, 1]` buckets.
    pub score_counts: Vec<u64>,
    /// Fraction of training scores at or above `threshold`.
    pub anomaly_rate: f64,
    /// The anomaly threshold the rate was measured at.
    pub threshold: f64,
    /// Training rows the baseline was computed over.
    pub n: u64,
}

impl ModelBaseline {
    /// The calibration-space anomaly threshold baselines are measured
    /// at: the midpoint of the calibrated `[0, 1]` score range, which
    /// lands exactly on a sketch bucket edge.
    pub const DEFAULT_THRESHOLD: f64 = 0.5;

    /// Sketches a calibrated training-score slice into a baseline.
    pub fn from_scores(calibrated: &[f64]) -> Self {
        let sketch = ScoreSketch::new();
        sketch.record_batch(calibrated);
        let snap = sketch.snapshot();
        Self {
            anomaly_rate: snap.fraction_at_or_above(Self::DEFAULT_THRESHOLD),
            threshold: Self::DEFAULT_THRESHOLD,
            n: snap.total(),
            score_counts: snap.counts,
        }
    }

    /// The baseline score distribution as a sketch snapshot (what PSI
    /// is computed against).
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot::from_counts(self.score_counts.clone())
    }
}

/// Which side of the teacher/booster pair a request scores against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The distilled booster ensemble (the default serving path).
    Booster,
    /// The frozen fitted teacher detector.
    Teacher,
}

impl Variant {
    /// Parses the `?variant=` query value ("both" is handled a level up:
    /// it fans out into one request per variant).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "booster" => Some(Variant::Booster),
            "teacher" => Some(Variant::Teacher),
            _ => None,
        }
    }

    /// The wire name of the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Booster => "booster",
            Variant::Teacher => "teacher",
        }
    }
}

/// A deployable UADB model: booster ensemble + train-time feature
/// standardisation + score calibration + provenance — and optionally
/// the frozen teacher it was distilled from, for teacher/booster A/B.
///
/// `Clone` copies the booster weights (the teacher snapshot is shared
/// via `Arc`); the registry uses it to build a modified bundle — e.g.
/// attach or detach a teacher at runtime — while requests in flight
/// keep scoring against the original.
#[derive(Debug, Clone)]
pub struct ServedModel {
    model: UadbModel,
    standardizer: Standardizer,
    meta: ModelMeta,
    teacher: Option<Arc<TeacherModel>>,
    baseline: Option<ModelBaseline>,
}

/// Errors from scoring raw request rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// Request width differs from the trained feature count.
    DimensionMismatch {
        /// Feature count the model was trained with.
        expected: usize,
        /// Feature count of the request rows.
        got: usize,
    },
    /// A request cell is NaN or infinite.
    NonFiniteFeature {
        /// Row index within the request.
        row: usize,
    },
    /// The teacher variant was requested on a model serving only its
    /// booster.
    TeacherNotLoaded,
    /// The frozen teacher itself failed to score.
    Teacher(DetectorError),
    /// A scoring worker died (panicked) while the batch was in flight.
    /// A server bug, not a request-level condition — reported as an
    /// error instead of hanging or panicking the caller.
    WorkerPanicked,
}

impl ScoreError {
    /// Stable, low-cardinality name for this error class — what the
    /// structured logs and per-model error counters tag failures with
    /// (the `Display` text carries request-specific numbers and would
    /// explode label cardinality).
    pub fn metric_label(&self) -> &'static str {
        match self {
            ScoreError::DimensionMismatch { .. } => "dimension_mismatch",
            ScoreError::NonFiniteFeature { .. } => "non_finite_feature",
            ScoreError::TeacherNotLoaded => "teacher_not_loaded",
            ScoreError::Teacher(_) => "teacher_failed",
            ScoreError::WorkerPanicked => "worker_panicked",
        }
    }
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::DimensionMismatch { expected, got } => {
                write!(f, "rows have {got} features, model expects {expected}")
            }
            ScoreError::NonFiniteFeature { row } => {
                write!(f, "row {row} contains a non-finite feature")
            }
            ScoreError::TeacherNotLoaded => {
                write!(f, "no teacher snapshot is loaded for this model")
            }
            ScoreError::Teacher(e) => write!(f, "teacher failed to score: {e}"),
            ScoreError::WorkerPanicked => {
                write!(f, "a scoring worker died while the batch was in flight")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// A frozen fitted teacher, servable next to its distilled booster: the
/// detector's snapshot-restored state, the train-time standardiser, and
/// the min-max calibration fitted on the teacher's training scores (the
/// paper's pseudo-label normalisation — so teacher and booster scores
/// land on the same `[0,1]`-anchored scale and are directly comparable
/// in an A/B response).
pub struct TeacherModel {
    detector: Box<dyn DetectorSnapshot>,
    standardizer: Standardizer,
    calibration: ScoreCalibration,
    meta: ModelMeta,
}

impl fmt::Debug for TeacherModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeacherModel")
            .field("kind", &self.detector.kind().name())
            .field("input_dim", &self.input_dim())
            .field("meta", &self.meta)
            .finish()
    }
}

impl TeacherModel {
    /// Bundles a fitted, snapshot-capable detector with its train-time
    /// preprocessing and score calibration.
    ///
    /// # Panics
    /// If the detector's fitted width differs from the standardiser's.
    pub fn new(
        detector: Box<dyn DetectorSnapshot>,
        standardizer: Standardizer,
        calibration: ScoreCalibration,
        meta: ModelMeta,
    ) -> Self {
        assert_eq!(
            standardizer.n_features(),
            detector.fitted_dim(),
            "standardizer width must match the teacher's fitted width"
        );
        Self { detector, standardizer, calibration, meta }
    }

    /// The wrapped fitted detector.
    pub fn detector(&self) -> &dyn DetectorSnapshot {
        self.detector.as_ref()
    }

    /// The teacher's detector kind.
    pub fn kind(&self) -> DetectorKind {
        self.detector.kind()
    }

    /// The stored train-time standardiser.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The min-max calibration fitted on the teacher's training scores.
    pub fn calibration(&self) -> ScoreCalibration {
        self.calibration
    }

    /// Provenance metadata.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Feature count a request row must have.
    pub fn input_dim(&self) -> usize {
        self.standardizer.n_features()
    }

    /// Scores the raw row range `lo..hi`: validates, standardises with
    /// the stored constants, runs the frozen detector, and applies the
    /// stored calibration. Per-row like the booster path, so results are
    /// independent of batch composition and sharding.
    /// [`ScoreError::NonFiniteFeature`] reports the **batch-global** row
    /// index.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn score_range(&self, raw: &Matrix, lo: usize, hi: usize) -> Result<Vec<f64>, ScoreError> {
        assert!(lo <= hi && hi <= raw.rows(), "row range {lo}..{hi} out of bounds");
        let expected = self.standardizer.n_features();
        if raw.cols() != expected && raw.rows() > 0 {
            return Err(ScoreError::DimensionMismatch { expected, got: raw.cols() });
        }
        if raw.rows() == 0 || lo == hi {
            return Ok(Vec::new());
        }
        for r in lo..hi {
            if raw.row(r).iter().any(|v| !v.is_finite()) {
                return Err(ScoreError::NonFiniteFeature { row: r });
            }
        }
        let mut std_rows = Vec::new();
        self.standardizer.transform_rows_into(raw, lo, hi, &mut std_rows);
        let x = Matrix::from_vec(hi - lo, expected, std_rows)
            .expect("standardised range has the declared shape");
        let mut scores = self.detector.score(&x).map_err(|e| match e {
            DetectorError::DimensionMismatch { expected, got } => {
                ScoreError::DimensionMismatch { expected, got }
            }
            other => ScoreError::Teacher(other),
        })?;
        self.calibration.apply_vec(&mut scores);
        Ok(scores)
    }

    /// Scores whole raw rows (wrapper over [`TeacherModel::score_range`]).
    pub fn score_rows(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        self.score_range(raw, 0, raw.rows())
    }
}

impl ServedModel {
    /// Bundles a fitted model with its train-time preprocessing.
    ///
    /// # Panics
    /// If the standardiser width differs from the ensemble input width.
    pub fn new(model: UadbModel, standardizer: Standardizer, meta: ModelMeta) -> Self {
        assert_eq!(
            standardizer.n_features(),
            model.ensemble()[0].input_dim(),
            "standardizer width must match ensemble input width"
        );
        Self { model, standardizer, meta, teacher: None, baseline: None }
    }

    /// Trains a booster end to end on a dataset's **raw** features:
    /// fits the standardiser, standardises, runs the teacher, distils
    /// the booster, and returns the deployable bundle (teacher dropped).
    pub fn train(
        data: &Dataset,
        teacher: DetectorKind,
        cfg: UadbConfig,
    ) -> Result<Self, DetectorError> {
        let (mut served, _) = Self::train_with_teacher(data, teacher, cfg)?;
        served.teacher = None;
        Ok(served)
    }

    /// Like [`ServedModel::train`], but keeps the fitted teacher: the
    /// returned [`ServedModel`] has the teacher attached (so
    /// `?variant=teacher|both` serve immediately) and the same teacher
    /// is returned separately for snapshotting to its own file. The
    /// teacher's calibration is min-max fitted on its training scores —
    /// exactly the pseudo-label normalisation the booster was distilled
    /// against, making the A/B scales comparable.
    pub fn train_with_teacher(
        data: &Dataset,
        teacher: DetectorKind,
        cfg: UadbConfig,
    ) -> Result<(Self, Arc<TeacherModel>), DetectorError> {
        Self::train_with_teacher_workers(data, teacher, cfg, 1)
    }

    /// [`ServedModel::train_with_teacher`] with `train_workers`
    /// data-parallel threads inside each booster fit (`1` = serial,
    /// `0` = all available cores). The trained model is bit-identical
    /// for every worker count, so the flag never needs persisting.
    pub fn train_with_teacher_workers(
        data: &Dataset,
        teacher: DetectorKind,
        cfg: UadbConfig,
        train_workers: usize,
    ) -> Result<(Self, Arc<TeacherModel>), DetectorError> {
        // Datasets with no rows or no feature columns (e.g. a 1-column
        // CSV whose only column was the label) must error cleanly, not
        // panic inside a teacher or the booster.
        if data.n_samples() == 0 || data.n_features() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let standardizer = Standardizer::fit(&data.x);
        let x = standardizer.transform(&data.x);
        let seed = cfg.seed;
        let mut detector = snapshot::build(teacher, seed);
        let teacher_scores = detector.fit_score(&x)?;
        // Training-loop observability: every epoch of every member fit
        // bumps the process epoch counter, refreshes the per-model
        // last-loss gauge, and emits a debug-level structured log line.
        // A hook the caller already installed is chained, not replaced.
        let mut cfg = cfg;
        let caller_hook = cfg.progress.take();
        let model_name: Arc<str> = Arc::from(data.name.as_str());
        cfg.progress = Some(uadb_nn::ProgressHook::new(move |epoch, loss, ms| {
            crate::telemetry::metrics().observe_train_epoch(&model_name, loss);
            let epoch_s = epoch.to_string();
            let loss_s = format!("{loss:.6}");
            let ms_s = ms.to_string();
            uadb_telemetry::log::logger().log(
                uadb_telemetry::Level::Debug,
                "train",
                "epoch finished",
                &[("model", &model_name), ("epoch", &epoch_s), ("loss", &loss_s), ("ms", &ms_s)],
            );
            if let Some(hook) = &caller_hook {
                hook.call(epoch, loss, ms);
            }
        }));
        let model = Uadb::new(cfg)
            .fit_with(&x, &teacher_scores, train_workers)
            .expect("teacher produced aligned scores");
        let meta = ModelMeta {
            dataset: data.name.clone(),
            teacher: teacher.name().to_string(),
            n_train: data.n_samples() as u64,
        };
        let teacher_model = Arc::new(TeacherModel::new(
            detector,
            standardizer.clone(),
            ScoreCalibration::fit(&teacher_scores),
            meta.clone(),
        ));
        let mut served = Self::new(model, standardizer, meta);
        // Capture the model-quality baseline while the training scores
        // are still in hand: the calibrated score distribution live
        // traffic will be PSI-compared against.
        let mut calibrated = served.model.scores().to_vec();
        served.model.calibration().apply_vec(&mut calibrated);
        served.baseline = Some(ModelBaseline::from_scores(&calibrated));
        served.teacher = Some(Arc::clone(&teacher_model));
        Ok((served, teacher_model))
    }

    /// Attaches a frozen teacher so `?variant=teacher|both` can serve.
    /// Rejects a teacher whose feature width differs from the booster's
    /// (scoring it would be meaningless and every request would fail).
    pub fn attach_teacher(&mut self, teacher: Arc<TeacherModel>) -> Result<(), ScoreError> {
        if teacher.input_dim() != self.input_dim() {
            return Err(ScoreError::DimensionMismatch {
                expected: self.input_dim(),
                got: teacher.input_dim(),
            });
        }
        self.teacher = Some(teacher);
        Ok(())
    }

    /// Detaches the frozen teacher, returning it if one was loaded;
    /// afterwards `?variant=teacher|both` requests are 404s again.
    pub fn detach_teacher(&mut self) -> Option<Arc<TeacherModel>> {
        self.teacher.take()
    }

    /// The attached frozen teacher, if one is loaded.
    pub fn teacher(&self) -> Option<&Arc<TeacherModel>> {
        self.teacher.as_ref()
    }

    /// Names of the loaded variants (`booster` always; `teacher` when a
    /// snapshot is attached) — what `GET /model/{name}` reports.
    pub fn variants(&self) -> Vec<&'static str> {
        if self.teacher.is_some() {
            vec![Variant::Booster.name(), Variant::Teacher.name()]
        } else {
            vec![Variant::Booster.name()]
        }
    }

    /// Scores raw (unstandardised) rows: applies the stored train-time
    /// standardisation, the ensemble forward pass, and the stored score
    /// calibration. Every step is per-row, so results are independent of
    /// batch composition and sharding. Thin wrapper over
    /// [`ServedModel::score_range_into`] with a one-shot workspace.
    pub fn score_rows(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        let mut ws = ScoreWorkspace::default();
        self.score_range_into(raw, 0, raw.rows(), &mut ws)?;
        Ok(std::mem::take(&mut ws.scores))
    }

    /// Allocation-free scoring of the borrowed row range `lo..hi` of
    /// `raw`: validates, standardises into the workspace, runs the
    /// forward pass through the workspace scratch, calibrates in place,
    /// and returns the calibrated scores as a borrowed slice of length
    /// `hi - lo`. [`ScoreError::NonFiniteFeature`] reports the
    /// **batch-global** row index.
    ///
    /// Scores are bit-identical to [`ServedModel::score_rows`] on the
    /// same rows — the shard-independence property the scoring pool
    /// relies on.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn score_range_into<'w>(
        &self,
        raw: &Matrix,
        lo: usize,
        hi: usize,
        ws: &'w mut ScoreWorkspace,
    ) -> Result<&'w [f64], ScoreError> {
        assert!(lo <= hi && hi <= raw.rows(), "row range {lo}..{hi} out of bounds");
        let expected = self.standardizer.n_features();
        if raw.cols() != expected && raw.rows() > 0 {
            return Err(ScoreError::DimensionMismatch { expected, got: raw.cols() });
        }
        if raw.rows() == 0 {
            ws.scores.clear();
            return Ok(&ws.scores);
        }
        for r in lo..hi {
            if raw.row(r).iter().any(|v| !v.is_finite()) {
                return Err(ScoreError::NonFiniteFeature { row: r });
            }
        }
        self.standardizer.transform_rows_into(raw, lo, hi, &mut ws.std_rows);
        self.model.score_calibrated_rows_into(&ws.std_rows, hi - lo, &mut ws.nn, &mut ws.scores);
        Ok(&ws.scores)
    }

    /// The wrapped booster model.
    pub fn model(&self) -> &UadbModel {
        &self.model
    }

    /// The stored train-time standardiser.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Provenance metadata.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// The train-time model-quality baseline, if this model carries one
    /// (fresh training always captures it; files persisted before
    /// format v3 load without one until re-saved).
    pub fn baseline(&self) -> Option<&ModelBaseline> {
        self.baseline.as_ref()
    }

    /// Installs (or clears) the persisted baseline — the load path's
    /// counterpart to the capture in `train_with_teacher_workers`.
    pub fn set_baseline(&mut self, baseline: Option<ModelBaseline>) {
        self.baseline = baseline;
    }

    /// Feature count a request row must have.
    pub fn input_dim(&self) -> usize {
        self.standardizer.n_features()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    pub(crate) fn tiny_model(seed: u64) -> ServedModel {
        let data = fig5_dataset(AnomalyType::Clustered, seed);
        ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap()
    }

    #[test]
    fn train_then_score_matches_training_scores() {
        let data = fig5_dataset(AnomalyType::Clustered, 1);
        let served =
            ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(1)).unwrap();
        // Scoring the raw training rows reproduces the calibrated
        // training scores exactly (same standardisation constants).
        let again = served.score_rows(&data.x).unwrap();
        let x_std = served.standardizer().transform(&data.x);
        assert_eq!(again, served.model().score_calibrated(&x_std));
        assert_eq!(again.len(), data.n_samples());
    }

    #[test]
    fn single_row_scores_match_batch_scores() {
        let data = fig5_dataset(AnomalyType::Global, 2);
        let served = tiny_model(2);
        let batch = served.score_rows(&data.x).unwrap();
        for i in [0usize, 7, data.n_samples() - 1] {
            let single = served.score_rows(&data.x.select_rows(&[i])).unwrap();
            assert_eq!(single[0].to_bits(), batch[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn training_captures_a_baseline() {
        let served = tiny_model(5);
        let b = served.baseline().expect("fresh training captures a baseline");
        assert_eq!(b.n, served.meta().n_train, "every training row is sketched");
        assert_eq!(b.score_counts.iter().sum::<u64>(), b.n);
        assert_eq!(b.threshold, ModelBaseline::DEFAULT_THRESHOLD);
        assert!((0.0..=1.0).contains(&b.anomaly_rate));
        // The sketch matches a from-scratch sketch of the calibrated
        // training scores (capture is deterministic).
        let mut cal = served.model().scores().to_vec();
        served.model().calibration().apply_vec(&mut cal);
        assert_eq!(b, &ModelBaseline::from_scores(&cal));
    }

    #[test]
    fn zero_width_training_data_errors_cleanly() {
        use uadb_linalg::Matrix;
        let empty = Dataset::new("empty", Matrix::zeros(5, 0), vec![0; 5], "Test");
        let r = ServedModel::train(&empty, DetectorKind::IForest, UadbConfig::fast_for_tests(0));
        assert!(matches!(r, Err(DetectorError::EmptyInput)));
        let none = Dataset::new("none", Matrix::zeros(0, 3), vec![], "Test");
        let r = ServedModel::train(&none, DetectorKind::Hbos, UadbConfig::fast_for_tests(0));
        assert!(matches!(r, Err(DetectorError::EmptyInput)));
    }

    #[test]
    fn dimension_and_finiteness_errors() {
        let served = tiny_model(3);
        let wrong = Matrix::zeros(2, served.input_dim() + 1);
        assert!(matches!(served.score_rows(&wrong), Err(ScoreError::DimensionMismatch { .. })));
        let mut bad = Matrix::zeros(2, served.input_dim());
        bad.set(1, 0, f64::NAN);
        assert_eq!(served.score_rows(&bad), Err(ScoreError::NonFiniteFeature { row: 1 }));
        assert_eq!(served.score_rows(&Matrix::zeros(0, 0)), Ok(vec![]));
    }
}
