//! The servable unit: a fitted booster plus everything inference needs.
//!
//! UADB's deployment story (paper §III) is that the student MLP
//! *replaces* the teacher as the production detector. What the teacher
//! leaves behind is baked in at training time: the pseudo-label scale
//! the ensemble was distilled onto, the z-score constants of the
//! training features, and the score calibration. [`ServedModel`] bundles
//! all of it so a request row travels the exact numeric path a training
//! row did.

use std::fmt;
use uadb::{ScoreScratch, Uadb, UadbConfig, UadbModel};
use uadb_data::preprocess::Standardizer;
use uadb_data::Dataset;
use uadb_detectors::{DetectorError, DetectorKind};
use uadb_linalg::Matrix;

/// Per-worker reusable scoring workspace: standardised-feature buffer,
/// output staging, and the booster's forward scratch. Grown once, then
/// reused for every request a worker handles — the steady-state scoring
/// path performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct ScoreWorkspace {
    std_rows: Vec<f64>,
    scores: Vec<f64>,
    nn: ScoreScratch,
}

/// Provenance carried in the model file and reported by `GET /model`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMeta {
    /// Training dataset name.
    pub dataset: String,
    /// Teacher detector display name (e.g. `"IForest"`).
    pub teacher: String,
    /// Number of training rows.
    pub n_train: u64,
}

/// A deployable UADB model: booster ensemble + train-time feature
/// standardisation + score calibration + provenance.
#[derive(Debug)]
pub struct ServedModel {
    model: UadbModel,
    standardizer: Standardizer,
    meta: ModelMeta,
}

/// Errors from scoring raw request rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// Request width differs from the trained feature count.
    DimensionMismatch {
        /// Feature count the model was trained with.
        expected: usize,
        /// Feature count of the request rows.
        got: usize,
    },
    /// A request cell is NaN or infinite.
    NonFiniteFeature {
        /// Row index within the request.
        row: usize,
    },
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::DimensionMismatch { expected, got } => {
                write!(f, "rows have {got} features, model expects {expected}")
            }
            ScoreError::NonFiniteFeature { row } => {
                write!(f, "row {row} contains a non-finite feature")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

impl ServedModel {
    /// Bundles a fitted model with its train-time preprocessing.
    ///
    /// # Panics
    /// If the standardiser width differs from the ensemble input width.
    pub fn new(model: UadbModel, standardizer: Standardizer, meta: ModelMeta) -> Self {
        assert_eq!(
            standardizer.n_features(),
            model.ensemble()[0].input_dim(),
            "standardizer width must match ensemble input width"
        );
        Self { model, standardizer, meta }
    }

    /// Trains a booster end to end on a dataset's **raw** features:
    /// fits the standardiser, standardises, runs the teacher, distils
    /// the booster, and returns the deployable bundle.
    pub fn train(
        data: &Dataset,
        teacher: DetectorKind,
        cfg: UadbConfig,
    ) -> Result<Self, DetectorError> {
        // Datasets with no rows or no feature columns (e.g. a 1-column
        // CSV whose only column was the label) must error cleanly, not
        // panic inside a teacher or the booster.
        if data.n_samples() == 0 || data.n_features() == 0 {
            return Err(DetectorError::EmptyInput);
        }
        let standardizer = Standardizer::fit(&data.x);
        let x = standardizer.transform(&data.x);
        let seed = cfg.seed;
        let teacher_scores = teacher.build(seed).fit_score(&x)?;
        let model =
            Uadb::new(cfg).fit(&x, &teacher_scores).expect("teacher produced aligned scores");
        let meta = ModelMeta {
            dataset: data.name.clone(),
            teacher: teacher.name().to_string(),
            n_train: data.n_samples() as u64,
        };
        Ok(Self::new(model, standardizer, meta))
    }

    /// Scores raw (unstandardised) rows: applies the stored train-time
    /// standardisation, the ensemble forward pass, and the stored score
    /// calibration. Every step is per-row, so results are independent of
    /// batch composition and sharding. Thin wrapper over
    /// [`ServedModel::score_range_into`] with a one-shot workspace.
    pub fn score_rows(&self, raw: &Matrix) -> Result<Vec<f64>, ScoreError> {
        let mut ws = ScoreWorkspace::default();
        self.score_range_into(raw, 0, raw.rows(), &mut ws)?;
        Ok(std::mem::take(&mut ws.scores))
    }

    /// Allocation-free scoring of the borrowed row range `lo..hi` of
    /// `raw`: validates, standardises into the workspace, runs the
    /// forward pass through the workspace scratch, calibrates in place,
    /// and returns the calibrated scores as a borrowed slice of length
    /// `hi - lo`. [`ScoreError::NonFiniteFeature`] reports the
    /// **batch-global** row index.
    ///
    /// Scores are bit-identical to [`ServedModel::score_rows`] on the
    /// same rows — the shard-independence property the scoring pool
    /// relies on.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn score_range_into<'w>(
        &self,
        raw: &Matrix,
        lo: usize,
        hi: usize,
        ws: &'w mut ScoreWorkspace,
    ) -> Result<&'w [f64], ScoreError> {
        assert!(lo <= hi && hi <= raw.rows(), "row range {lo}..{hi} out of bounds");
        let expected = self.standardizer.n_features();
        if raw.cols() != expected && raw.rows() > 0 {
            return Err(ScoreError::DimensionMismatch { expected, got: raw.cols() });
        }
        if raw.rows() == 0 {
            ws.scores.clear();
            return Ok(&ws.scores);
        }
        for r in lo..hi {
            if raw.row(r).iter().any(|v| !v.is_finite()) {
                return Err(ScoreError::NonFiniteFeature { row: r });
            }
        }
        self.standardizer.transform_rows_into(raw, lo, hi, &mut ws.std_rows);
        self.model.score_calibrated_rows_into(&ws.std_rows, hi - lo, &mut ws.nn, &mut ws.scores);
        Ok(&ws.scores)
    }

    /// The wrapped booster model.
    pub fn model(&self) -> &UadbModel {
        &self.model
    }

    /// The stored train-time standardiser.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Provenance metadata.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }

    /// Feature count a request row must have.
    pub fn input_dim(&self) -> usize {
        self.standardizer.n_features()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use uadb_data::synth::{fig5_dataset, AnomalyType};

    pub(crate) fn tiny_model(seed: u64) -> ServedModel {
        let data = fig5_dataset(AnomalyType::Clustered, seed);
        ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(seed)).unwrap()
    }

    #[test]
    fn train_then_score_matches_training_scores() {
        let data = fig5_dataset(AnomalyType::Clustered, 1);
        let served =
            ServedModel::train(&data, DetectorKind::Hbos, UadbConfig::fast_for_tests(1)).unwrap();
        // Scoring the raw training rows reproduces the calibrated
        // training scores exactly (same standardisation constants).
        let again = served.score_rows(&data.x).unwrap();
        let x_std = served.standardizer().transform(&data.x);
        assert_eq!(again, served.model().score_calibrated(&x_std));
        assert_eq!(again.len(), data.n_samples());
    }

    #[test]
    fn single_row_scores_match_batch_scores() {
        let data = fig5_dataset(AnomalyType::Global, 2);
        let served = tiny_model(2);
        let batch = served.score_rows(&data.x).unwrap();
        for i in [0usize, 7, data.n_samples() - 1] {
            let single = served.score_rows(&data.x.select_rows(&[i])).unwrap();
            assert_eq!(single[0].to_bits(), batch[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn zero_width_training_data_errors_cleanly() {
        use uadb_linalg::Matrix;
        let empty = Dataset::new("empty", Matrix::zeros(5, 0), vec![0; 5], "Test");
        let r = ServedModel::train(&empty, DetectorKind::IForest, UadbConfig::fast_for_tests(0));
        assert!(matches!(r, Err(DetectorError::EmptyInput)));
        let none = Dataset::new("none", Matrix::zeros(0, 3), vec![], "Test");
        let r = ServedModel::train(&none, DetectorKind::Hbos, UadbConfig::fast_for_tests(0));
        assert!(matches!(r, Err(DetectorError::EmptyInput)));
    }

    #[test]
    fn dimension_and_finiteness_errors() {
        let served = tiny_model(3);
        let wrong = Matrix::zeros(2, served.input_dim() + 1);
        assert!(matches!(served.score_rows(&wrong), Err(ScoreError::DimensionMismatch { .. })));
        let mut bad = Matrix::zeros(2, served.input_dim());
        bad.set(1, 0, f64::NAN);
        assert_eq!(served.score_rows(&bad), Err(ScoreError::NonFiniteFeature { row: 1 }));
        assert_eq!(served.score_rows(&Matrix::zeros(0, 0)), Ok(vec![]));
    }
}
