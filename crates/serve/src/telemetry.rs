//! Process-global serving telemetry: the single place every layer of
//! the server reports into, and the single place `/metrics`,
//! `/healthz` summaries, and `/admin/slow` read from.
//!
//! The handles live in one lazily-initialised [`ServeMetrics`] struct
//! so pool workers, the epoll reactor, and the HTTP router all record
//! without threading references through constructors. Recording is the
//! `uadb_telemetry` hot-path budget — relaxed atomics, monotonic clock
//! reads at state-machine transitions the server already makes, no
//! allocation; only genuinely slow paths (a request over the slowness
//! threshold, an operator scrape) take a lock.
//!
//! Metrics are **process**-scoped: two servers in one test process
//! share one registry, so tests assert presence and monotonicity, not
//! exact counts.

use crate::model::{ScoreError, Variant};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use uadb_telemetry::{
    now_ns, Counter, DecayStat, FloatGauge, Gauge, Histogram, HistogramSnapshot, Registry, SlowRing,
};

/// Stages of a request's life, in order. Each gets its own latency
/// histogram series (`uadb_stage_duration_seconds{stage=...}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First request byte to complete header block.
    HeadRead = 0,
    /// Complete header block to complete body.
    BodyRead = 1,
    /// Routing and request validation (JSON parse, matrix build).
    Parse = 2,
    /// Batch submitted to the pool until the first shard is dequeued.
    QueueWait = 3,
    /// First shard dequeued until the last shard finished.
    Score = 4,
    /// Response serialization.
    Serialize = 5,
    /// Socket write/flush of buffered response bytes.
    WriteFlush = 6,
}

/// Number of [`Stage`] values (array sizing).
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// The `stage` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::HeadRead => "head_read",
            Stage::BodyRead => "body_read",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::Score => "score",
            Stage::Serialize => "serialize",
            Stage::WriteFlush => "write_flush",
        }
    }

    /// All stages, in pipeline order.
    pub fn all() -> [Stage; STAGE_COUNT] {
        [
            Stage::HeadRead,
            Stage::BodyRead,
            Stage::Parse,
            Stage::QueueWait,
            Stage::Score,
            Stage::Serialize,
            Stage::WriteFlush,
        ]
    }
}

/// Why a request or connection was turned away — the `reason` label on
/// `uadb_http_rejected_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// 503: connection budget exhausted at accept time.
    OverBudget = 0,
    /// 400: peer closed mid-request (truncated request).
    EarlyClose = 1,
    /// 408: idle deadline expired mid-request.
    Stalled = 2,
}

impl RejectReason {
    fn name(self) -> &'static str {
        match self {
            RejectReason::OverBudget => "over_budget",
            RejectReason::EarlyClose => "early_close",
            RejectReason::Stalled => "stalled",
        }
    }
}

/// Which variant selection a request asked for (the `variant` label on
/// the per-model counters). Unlike [`Variant`] this includes the paired
/// A/B selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantTag {
    Booster = 0,
    Teacher = 1,
    Both = 2,
}

impl VariantTag {
    pub fn name(self) -> &'static str {
        match self {
            VariantTag::Booster => "booster",
            VariantTag::Teacher => "teacher",
            VariantTag::Both => "both",
        }
    }

    pub fn from_variant(v: Variant) -> Self {
        match v {
            Variant::Booster => VariantTag::Booster,
            Variant::Teacher => VariantTag::Teacher,
        }
    }
}

/// Request/error/row counters for one `(model, variant)` pair.
#[derive(Debug)]
pub struct VariantCounters {
    pub requests: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub rows: Arc<Counter>,
}

/// Per-model counter block: one [`VariantCounters`] per variant tag,
/// plus the model name as a shared `Arc<str>` so hot-path consumers
/// (trace records, slow-ring entries) can carry the name without
/// allocating.
#[derive(Debug)]
pub struct ModelStats {
    pub name: Arc<str>,
    variants: [VariantCounters; 3],
}

impl ModelStats {
    pub fn variant(&self, tag: VariantTag) -> &VariantCounters {
        &self.variants[tag as usize]
    }
}

/// Per-reactor-shard counters, labeled `shard=N`. Each epoll shard
/// caches its own block at construction so the hot accept/event paths
/// touch plain atomic counters, never the registry lock.
#[derive(Debug)]
pub struct ShardStats {
    /// Connections this shard accepted (or received via handoff).
    pub accepted: Arc<Counter>,
    /// Readiness events this shard's `epoll_wait` delivered.
    pub events: Arc<Counter>,
}

/// One captured slow request, served by `GET /admin/slow`.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    pub trace_id: u64,
    /// First request byte to end of serialization.
    pub total_ns: u64,
    /// Per-stage durations, indexed by [`Stage`]. `WriteFlush` is
    /// always zero here: flushes are accounted per-socket-write, after
    /// the request has already been captured.
    pub stages: [u64; STAGE_COUNT],
    /// Scored model, when the request reached scoring.
    pub model: Option<Arc<str>>,
    pub variant: Option<VariantTag>,
    pub rows: usize,
    pub status: u16,
}

/// Accumulates one request's stage timings as it moves through the
/// server; [`RequestTimer::finish`] records everything in one shot.
/// Plain value type — it travels with the request (into pool callbacks
/// and reactor completions) rather than living in shared state.
#[derive(Debug, Clone)]
pub struct RequestTimer {
    pub trace_id: u64,
    /// Timestamp of the request's first byte.
    pub t0: u64,
    stages: [u64; STAGE_COUNT],
    model: Option<Arc<str>>,
    variant: Option<VariantTag>,
    rows: usize,
}

impl RequestTimer {
    /// Starts a timer for a request whose first byte arrived at `t0`
    /// (monotonic ns, from [`now_ns`]).
    pub fn start(t0: u64) -> Self {
        Self {
            trace_id: uadb_telemetry::next_trace_id(),
            t0,
            stages: [0; STAGE_COUNT],
            model: None,
            variant: None,
            rows: 0,
        }
    }

    /// Adds `ns` to a stage (stages touched twice — e.g. the two pool
    /// submissions of a `?variant=both` request — accumulate).
    #[inline]
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.stages[stage as usize] += ns;
    }

    pub fn stage(&self, stage: Stage) -> u64 {
        self.stages[stage as usize]
    }

    /// Tags the timer with what it ended up scoring.
    pub fn set_scored(&mut self, model: Arc<str>, variant: VariantTag, rows: usize) {
        self.model = Some(model);
        self.variant = Some(variant);
        self.rows = rows;
    }

    /// Records the finished request: per-stage histograms, the
    /// end-to-end latency histogram, and — when over the slowness
    /// threshold — a slow-ring entry. `total` spans first byte to end
    /// of serialization (write/flush is accounted separately, per
    /// socket write).
    pub fn finish(self, status: u16) {
        let m = metrics();
        let total = now_ns().saturating_sub(self.t0);
        for stage in Stage::all() {
            let ns = self.stages[stage as usize];
            // Zero means the stage never ran for this request (e.g. no
            // body, or a non-scoring route) — skip, so each stage
            // histogram counts only requests that exercised it.
            if ns > 0 {
                m.stage_hist[stage as usize].record(ns);
            }
        }
        m.request_duration.record(total);
        if total >= m.slow_threshold_ns.load(Ordering::Relaxed) {
            m.slow_ring.push(SlowEntry {
                trace_id: self.trace_id,
                total_ns: total,
                stages: self.stages,
                model: self.model,
                variant: self.variant,
                rows: self.rows,
                status,
            });
        }
    }
}

/// All serving metrics, registered once into one [`Registry`].
pub struct ServeMetrics {
    registry: Registry,
    /// Indexed by [`Stage`].
    stage_hist: [Arc<Histogram>; STAGE_COUNT],
    pub request_duration: Arc<Histogram>,
    pub requests_total: Arc<Counter>,
    /// Indexed by [`RejectReason`].
    rejected: [Arc<Counter>; 3],
    pub connections_opened: Arc<Counter>,
    pub connections_closed: Arc<Counter>,
    pub open_connections: Arc<Gauge>,

    pub pool_queue_depth: Arc<Gauge>,
    pub pool_shards_total: Arc<Counter>,
    pub pool_shard_duration: Arc<Histogram>,
    pub pool_busy_ns: Arc<Counter>,
    pub worker_panics: Arc<Counter>,

    divergence: DecayStat,
    div_mean: Arc<FloatGauge>,
    div_max: Arc<FloatGauge>,
    div_samples: Arc<Counter>,

    model_stats: RwLock<BTreeMap<String, Arc<ModelStats>>>,
    shard_stats: RwLock<BTreeMap<usize, Arc<ShardStats>>>,
    slow_ring: SlowRing<SlowEntry>,
    slow_threshold_ns: AtomicU64,
}

/// Slow-request capture threshold when `--slow-ms` is not given.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 100_000_000; // 100ms

/// Slow-ring capacity: the last N slow requests an operator can pull
/// back out of `/admin/slow`.
pub const SLOW_RING_CAP: usize = 32;

impl ServeMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        let bounds = Histogram::latency_bounds();
        let stage_hist = Stage::all().map(|s| {
            registry.histogram(
                "uadb_stage_duration_seconds",
                "Per-stage request latency.",
                &[("stage", s.name())],
                &bounds,
                9,
            )
        });
        let request_duration = registry.histogram(
            "uadb_request_duration_seconds",
            "End-to-end request latency (first byte to serialized response).",
            &[],
            &bounds,
            9,
        );
        let requests_total =
            registry.counter("uadb_http_requests_total", "HTTP requests routed.", &[]);
        let rejected = [RejectReason::OverBudget, RejectReason::EarlyClose, RejectReason::Stalled]
            .map(|r| {
                registry.counter(
                    "uadb_http_rejected_total",
                    "Requests/connections turned away, by reason.",
                    &[("reason", r.name())],
                )
            });
        let connections_opened =
            registry.counter("uadb_http_connections_opened_total", "Connections accepted.", &[]);
        let connections_closed =
            registry.counter("uadb_http_connections_closed_total", "Connections closed.", &[]);
        let open_connections =
            registry.gauge("uadb_http_open_connections", "Connections currently open.", &[]);

        let pool_queue_depth = registry.gauge(
            "uadb_pool_queue_depth",
            "Scoring shards queued or in flight in the pool.",
            &[],
        );
        let pool_shards_total =
            registry.counter("uadb_pool_shards_total", "Scoring shards executed.", &[]);
        let pool_shard_duration = registry.histogram(
            "uadb_pool_shard_duration_seconds",
            "Per-shard latency from dequeue to scored.",
            &[],
            &bounds,
            9,
        );
        let pool_busy_ns = registry.counter(
            "uadb_pool_worker_busy_nanoseconds_total",
            "Cumulative wall time pool workers spent scoring shards.",
            &[],
        );
        let worker_panics = registry.counter(
            "uadb_pool_worker_panics_total",
            "Scoring shards lost to a worker panic.",
            &[],
        );

        let div_mean = registry.float_gauge(
            "uadb_divergence_mean_abs",
            "Decayed mean |teacher - booster| over paired A/B scores.",
            &[],
        );
        let div_max = registry.float_gauge(
            "uadb_divergence_max_abs",
            "Decayed max |teacher - booster| over paired A/B scores.",
            &[],
        );
        let div_samples = registry.counter(
            "uadb_divergence_samples_total",
            "Paired scores folded into the divergence estimate.",
            &[],
        );

        Self {
            registry,
            stage_hist,
            request_duration,
            requests_total,
            rejected,
            connections_opened,
            connections_closed,
            open_connections,
            pool_queue_depth,
            pool_shards_total,
            pool_shard_duration,
            pool_busy_ns,
            worker_panics,
            // ~1/0.002 = 500-sample effective window: long enough to
            // smooth batch noise, short enough that drift shows within
            // a few requests' worth of rows.
            divergence: DecayStat::new(0.002),
            div_mean,
            div_max,
            div_samples,
            model_stats: RwLock::new(BTreeMap::new()),
            shard_stats: RwLock::new(BTreeMap::new()),
            slow_ring: SlowRing::new(SLOW_RING_CAP),
            slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
        }
    }

    /// Records a per-stage duration outside a [`RequestTimer`] (used
    /// for `WriteFlush`, which is per socket write, not per request).
    #[inline]
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stage_hist[stage as usize].record(ns);
    }

    /// Bumps a rejection counter.
    #[inline]
    pub fn reject(&self, reason: RejectReason) {
        self.rejected[reason as usize].inc();
    }

    /// Sum over all rejection reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().map(|c| c.get()).sum()
    }

    /// The counter block for one model, registering its nine series
    /// (3 variants × requests/errors/rows) on first sight. Steady state
    /// is a read-lock and a map probe.
    pub fn model_stats(&self, name: &str) -> Arc<ModelStats> {
        if let Some(stats) = self.model_stats.read().unwrap().get(name) {
            return Arc::clone(stats);
        }
        let mut map = self.model_stats.write().unwrap();
        // Double-checked: another thread may have registered between
        // the read unlock and the write lock.
        if let Some(stats) = map.get(name) {
            return Arc::clone(stats);
        }
        let variants = [VariantTag::Booster, VariantTag::Teacher, VariantTag::Both].map(|tag| {
            let labels = [("model", name), ("variant", tag.name())];
            VariantCounters {
                requests: self.registry.counter(
                    "uadb_model_requests_total",
                    "Scoring requests, by model and variant.",
                    &labels,
                ),
                errors: self.registry.counter(
                    "uadb_model_errors_total",
                    "Failed scoring requests, by model and variant.",
                    &labels,
                ),
                rows: self.registry.counter(
                    "uadb_model_rows_total",
                    "Rows scored, by model and variant.",
                    &labels,
                ),
            }
        });
        let stats = Arc::new(ModelStats { name: Arc::from(name), variants });
        map.insert(name.to_string(), Arc::clone(&stats));
        stats
    }

    /// The counter block for one reactor shard, registering its two
    /// series (`shard=N` accepted/events) on first sight. Shards call
    /// this once at construction and cache the `Arc`.
    pub fn shard_stats(&self, shard: usize) -> Arc<ShardStats> {
        if let Some(stats) = self.shard_stats.read().unwrap().get(&shard) {
            return Arc::clone(stats);
        }
        let mut map = self.shard_stats.write().unwrap();
        // Double-checked: another thread may have registered between
        // the read unlock and the write lock.
        if let Some(stats) = map.get(&shard) {
            return Arc::clone(stats);
        }
        let label = shard.to_string();
        let labels = [("shard", label.as_str())];
        let stats = Arc::new(ShardStats {
            accepted: self.registry.counter(
                "uadb_reactor_accepted_total",
                "Connections accepted, by reactor shard.",
                &labels,
            ),
            events: self.registry.counter(
                "uadb_reactor_events_total",
                "Epoll readiness events delivered, by reactor shard.",
                &labels,
            ),
        });
        map.insert(shard, Arc::clone(&stats));
        stats
    }

    /// Folds one A/B response's paired scores into the streaming
    /// divergence estimate and refreshes the exported gauges.
    pub fn observe_divergence(&self, booster: &[f64], teacher: &[f64]) {
        let n = booster.len().min(teacher.len());
        if n == 0 {
            return;
        }
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for i in 0..n {
            let d = (booster[i] - teacher[i]).abs();
            sum += d;
            if d > max {
                max = d;
            }
        }
        self.divergence.observe_batch(sum / n as f64, max, n);
        self.div_mean.set(self.divergence.mean());
        self.div_max.set(self.divergence.max());
        self.div_samples.add(n as u64);
    }

    /// Current decayed (mean |Δ|, max |Δ|, samples) divergence view.
    pub fn divergence_summary(&self) -> (f64, f64, u64) {
        (self.divergence.mean(), self.divergence.max(), self.divergence.samples())
    }

    /// End-to-end latency snapshot (drives the `/healthz` quantiles).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.request_duration.snapshot()
    }

    /// Last captured slow requests, oldest first.
    pub fn slow_snapshot(&self) -> Vec<SlowEntry> {
        self.slow_ring.snapshot()
    }

    pub fn set_slow_threshold_ms(&self, ms: u64) {
        self.slow_threshold_ns.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Bumps the per-model error counter and emits the structured error
    /// log every scoring failure gets (worker panics are server bugs
    /// and log at error level; request-shape failures at debug).
    pub fn record_score_error(
        &self,
        stats: &ModelStats,
        tag: VariantTag,
        err: &ScoreError,
        trace_id: u64,
    ) {
        stats.variant(tag).errors.inc();
        let level = match err {
            ScoreError::WorkerPanicked => uadb_telemetry::Level::Error,
            _ => uadb_telemetry::Level::Debug,
        };
        let trace = trace_id.to_string();
        uadb_telemetry::log::logger().log(
            level,
            "score",
            "scoring failed",
            &[
                ("trace", &trace),
                ("model", &stats.name),
                ("variant", tag.name()),
                ("error", err.metric_label()),
            ],
        );
    }

    /// Renders the full exposition: every registered family, then the
    /// GEMM kernel counters (feature-gated in `uadb_linalg`; all-zero
    /// when compiled out) and the logger's suppression counter, which
    /// live outside the registry.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(8192);
        self.registry.render_into(&mut out);

        let ks = uadb_linalg::gemm::stats::snapshot();
        out.push_str("# HELP uadb_gemm_packs_built_total GEMM weight packings built.\n");
        out.push_str("# TYPE uadb_gemm_packs_built_total counter\n");
        out.push_str(&format!("uadb_gemm_packs_built_total {}\n", ks.packs_built));
        out.push_str(
            "# HELP uadb_gemm_packs_reused_total GEMM calls served from a cached packing.\n",
        );
        out.push_str("# TYPE uadb_gemm_packs_reused_total counter\n");
        out.push_str(&format!("uadb_gemm_packs_reused_total {}\n", ks.packs_reused));
        out.push_str("# HELP uadb_gemm_calls_total GEMM kernel invocations, by ISA path.\n");
        out.push_str("# TYPE uadb_gemm_calls_total counter\n");
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"avx512\"}} {}\n", ks.calls_avx512));
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"avx\"}} {}\n", ks.calls_avx));
        out.push_str(&format!("uadb_gemm_calls_total{{isa=\"portable\"}} {}\n", ks.calls_portable));

        out.push_str(
            "# HELP uadb_log_dropped_total Log messages suppressed by the rate limiter.\n",
        );
        out.push_str("# TYPE uadb_log_dropped_total counter\n");
        out.push_str(&format!(
            "uadb_log_dropped_total {}\n",
            uadb_telemetry::log::logger().dropped()
        ));
        out
    }
}

static METRICS: OnceLock<ServeMetrics> = OnceLock::new();

/// The process-global serving metrics.
pub fn metrics() -> &'static ServeMetrics {
    METRICS.get_or_init(ServeMetrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_stats_registered_once_and_shared() {
        let m = metrics();
        let a = m.model_stats("telemetry-test-model");
        let b = m.model_stats("telemetry-test-model");
        assert!(Arc::ptr_eq(&a, &b));
        a.variant(VariantTag::Booster).requests.inc();
        a.variant(VariantTag::Booster).rows.add(5);
        let text = m.render();
        assert!(text.contains(
            "uadb_model_requests_total{model=\"telemetry-test-model\",variant=\"booster\"}"
        ));
        assert!(text.contains(
            "uadb_model_rows_total{model=\"telemetry-test-model\",variant=\"teacher\"} 0"
        ));
    }

    #[test]
    fn render_includes_gemm_and_log_sections() {
        let text = metrics().render();
        assert!(text.contains("# TYPE uadb_gemm_calls_total counter"));
        assert!(text.contains("uadb_gemm_calls_total{isa=\"portable\"}"));
        assert!(text.contains("# TYPE uadb_log_dropped_total counter"));
    }

    #[test]
    fn divergence_updates_gauges() {
        let m = metrics();
        let before = m.divergence_summary().2;
        m.observe_divergence(&[0.5, 0.5], &[0.5, 0.7]);
        let (mean, max, samples) = m.divergence_summary();
        assert!(mean > 0.0);
        assert!(max >= 0.2 - 1e-12);
        assert_eq!(samples, before + 2);
    }

    #[test]
    fn timer_records_slow_entry() {
        let m = metrics();
        // Threshold 0: every finished request is captured.
        m.set_slow_threshold_ms(0);
        let mut t = RequestTimer::start(now_ns());
        t.add(Stage::Parse, 1_000);
        t.add(Stage::Score, 2_000);
        t.set_scored(Arc::from("slow-model"), VariantTag::Both, 3);
        let id = t.trace_id;
        t.finish(200);
        m.set_slow_threshold_ms(DEFAULT_SLOW_THRESHOLD_NS / 1_000_000);
        let snap = m.slow_snapshot();
        let entry = snap.iter().rev().find(|e| e.trace_id == id).expect("captured");
        assert_eq!(entry.rows, 3);
        assert_eq!(entry.status, 200);
        assert_eq!(entry.stages[Stage::Score as usize], 2_000);
        assert_eq!(entry.model.as_deref(), Some("slow-model"));
    }

    #[test]
    fn reject_reasons_accumulate() {
        let m = metrics();
        let before = m.rejected_total();
        m.reject(RejectReason::OverBudget);
        m.reject(RejectReason::Stalled);
        assert_eq!(m.rejected_total(), before + 2);
    }
}
